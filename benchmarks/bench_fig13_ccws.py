"""Figure 13: CCWS with naive and augmented TLBs vs TLB-less CCWS."""

from repro.harness import figures


def test_fig13_ccws(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig13_ccws, iterations=1, rounds=1
    )
    record_figure(figure)
