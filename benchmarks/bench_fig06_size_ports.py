"""Figure 6: TLB size (64-512 entries) and port (3-32) sweep at fixed access times."""

from repro.harness import figures


def test_fig06_size_ports(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig06_size_ports, iterations=1, rounds=1
    )
    record_figure(figure)
