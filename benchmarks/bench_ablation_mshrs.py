"""Ablation: TLB MSHR count sensitivity.

The paper provisions one TLB MSHR per warp thread (32).  This ablation
shrinks the file to show when translation miss tracking starts to
throttle the augmented design.
"""

from dataclasses import replace

from repro.core import presets
from repro.harness.experiment import (
    DEFAULT_WARMUP,
    FigureResult,
    run_matrix,
    speedups_vs_baseline,
)

_KW = dict(warmup_instructions=DEFAULT_WARMUP)
_WORKLOADS = ["bfs", "mummergpu", "memcached"]


def _with_mshrs(entries: int):
    config = presets.augmented_tlb(**_KW)
    return replace(config, tlb=replace(config.tlb, mshr_entries=entries))


def _sweep():
    configs = {"no-tlb": lambda: presets.no_tlb(**_KW)}
    for entries in (4, 8, 16, 32):
        configs[f"aug {entries} MSHRs"] = (
            lambda entries=entries: _with_mshrs(entries)
        )
    results = run_matrix(configs, workloads=_WORKLOADS)
    return FigureResult(
        figure="ablation_mshrs",
        title="Augmented TLB with shrinking MSHR files (vs no-TLB)",
        series=speedups_vs_baseline(results, "no-tlb"),
    )


def test_ablation_mshrs(benchmark, record_figure):
    """TLB MSHR sensitivity on the divergent workloads."""
    figure = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    record_figure(figure)
