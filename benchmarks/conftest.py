"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper via its
:mod:`repro.harness.figures` driver, times it with pytest-benchmark,
prints the figure's series, and archives the rendered table under
``benchmarks/results/`` so the artifacts survive output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory the rendered figure tables are archived into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(results_dir):
    """Return a callable that archives and prints a FigureResult."""

    def _record(figure):
        text = figure.render()
        (results_dir / f"{figure.figure}.txt").write_text(text + "\n")
        print()
        print(text)
        return figure

    return _record
