"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper via its
:mod:`repro.harness.figures` driver, times it with pytest-benchmark
when that plugin is installed, prints the figure's series, and archives
the rendered table under ``benchmarks/results/`` so the artifacts
survive output capture.

When pytest-benchmark is absent (minimal CI images, headless runs) a
fallback ``benchmark`` fixture with the same calling conventions runs
each figure once and reports its wall time, so ``pytest benchmarks/``
works everywhere.
"""

from __future__ import annotations

import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory the rendered figure tables are archived into.

    ``parents=True, exist_ok=True`` makes creation race-free when
    pytest-xdist (or several pytest invocations) start sessions
    concurrently, and works even when ``benchmarks/`` itself was
    checked out bare.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


class _FallbackBenchmark:
    """pytest-benchmark stand-in: same call shapes, single timed run."""

    def __init__(self, name: str):
        self.name = name
        self.last_seconds: float = 0.0

    def _timed(self, fn, *args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.last_seconds = time.perf_counter() - start
        print(f"[bench-fallback] {self.name}: {self.last_seconds:.3f}s")
        return result

    def __call__(self, fn, *args, **kwargs):
        return self._timed(fn, *args, **kwargs)

    def pedantic(
        self, fn, args=(), kwargs=None, iterations=1, rounds=1, **_ignored
    ):
        result = None
        for _ in range(max(1, rounds) * max(1, iterations)):
            result = self._timed(fn, *args, **(kwargs or {}))
        return result


class _FallbackBenchmarkPlugin:
    """Provides the ``benchmark`` fixture when the plugin is inactive."""

    @pytest.fixture
    def benchmark(self, request):
        """Single-run timing fallback when pytest-benchmark is missing."""
        return _FallbackBenchmark(request.node.name)


def pytest_configure(config):
    # hasplugin (not an import check) so `-p no:benchmark` and a missing
    # package both get the fallback fixture.
    if not config.pluginmanager.hasplugin("benchmark"):
        config.pluginmanager.register(
            _FallbackBenchmarkPlugin(), "repro-benchmark-fallback"
        )


@pytest.fixture
def record_figure(results_dir):
    """Return a callable that archives and prints a FigureResult."""

    def _record(figure):
        text = figure.render()
        (results_dir / f"{figure.figure}.txt").write_text(text + "\n")
        print()
        print(text)
        return figure

    return _record
