"""Ablation: the Figure 6 sweep with *realistic* CACTI access latencies.

Figure 6 itself assumes fixed access times; the paper's text explains
that larger/wider TLBs "actually have much higher access times that
degrade performance", making 128 entries / 4 ports the practical knee.
This ablation re-runs the sweep with the latency model enabled so the
knee is visible.
"""

from repro.core import presets
from repro.harness.experiment import (
    DEFAULT_WARMUP,
    FigureResult,
    run_matrix,
    speedups_vs_baseline,
)

_KW = dict(warmup_instructions=DEFAULT_WARMUP)


def _sweep():
    configs = {"no-tlb": lambda: presets.no_tlb(**_KW)}
    for entries in (64, 128, 256, 512):
        configs[f"{entries}e/4p real"] = (
            lambda entries=entries: presets.tlb_with_geometry(
                entries, 4, ideal=False, **_KW
            )
        )
    for ports in (4, 8, 32):
        configs[f"128e/{ports}p real"] = (
            lambda ports=ports: presets.tlb_with_geometry(
                128, ports, ideal=False, **_KW
            )
        )
    results = run_matrix(configs)
    return FigureResult(
        figure="ablation_cacti",
        title="Size/port sweep with realistic access latencies "
        "(128e/4p should be the knee)",
        series=speedups_vs_baseline(results, "no-tlb"),
    )


def test_ablation_cacti(benchmark, record_figure):
    """Realistic-latency size/port sweep."""
    figure = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    record_figure(figure)
