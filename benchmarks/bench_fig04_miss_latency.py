"""Figure 4: average cycles per TLB miss vs per L1 cache miss on the naive design."""

from repro.harness import figures


def test_fig04_miss_latency(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig04_miss_latency, iterations=1, rounds=1
    )
    record_figure(figure)
