"""Figure 18: TCWS LRU-depth weight sweep ((1,2,3,4), (1,2,4,8), (1,3,6,9))."""

from repro.harness import figures


def test_fig18_tcws_lru(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig18_tcws_lru, iterations=1, rounds=1
    )
    record_figure(figure)
