"""Figure 22: TLB-aware TBC (Common Page Matrix), CPM counter bits swept 1-3."""

from repro.harness import figures


def test_fig22_tlb_tbc(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig22_tlb_tbc, iterations=1, rounds=1
    )
    record_figure(figure)
