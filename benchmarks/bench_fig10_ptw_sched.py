"""Figure 10: the coalescing PTW scheduler brings the augmented 128-entry TLB near the ideal; also reports walk-reference elimination and walk cache hit rates."""

from repro.harness import figures


def test_fig10_ptw_sched(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig10_ptw_scheduling, iterations=1, rounds=1
    )
    record_figure(figure)
