"""Ablation: Common Page Matrix flush-interval sensitivity.

The paper flushes the CPM every 500 cycles; at this reproduction's
timescale the counters need longer to saturate (see TBCConfig).  The
sweep shows the CPM degenerating to stack-like conservative compaction
when flushed too often, and approaching unguarded TBC when never
flushed.
"""

from repro.core import presets
from repro.harness.experiment import (
    FigureResult,
    run_matrix,
    speedups_vs_baseline,
)
from dataclasses import replace

_WORKLOADS = ["bfs", "mummergpu", "memcached"]


def _tlb_tbc(flush_interval: int):
    config = presets.with_tbc(
        presets.augmented_tlb(warmup_instructions=0), "tlb-tbc"
    )
    return replace(config, tbc=replace(config.tbc, cpm_flush_interval=flush_interval))


def _sweep():
    configs = {
        "stack-no-tlb": lambda: presets.no_tlb(warmup_instructions=0),
        "tbc+augmented": lambda: presets.with_tbc(
            presets.augmented_tlb(warmup_instructions=0), "tbc"
        ),
    }
    for interval in (500, 2000, 5000, 20000):
        configs[f"tlb-tbc flush={interval}"] = (
            lambda interval=interval: _tlb_tbc(interval)
        )
    results = run_matrix(configs, workloads=_WORKLOADS, form="blocks")
    return FigureResult(
        figure="ablation_cpm_flush",
        title="TLB-aware TBC vs CPM flush interval (vs stack, no TLB)",
        series=speedups_vs_baseline(results, "stack-no-tlb"),
    )


def test_ablation_cpm_flush(benchmark, record_figure):
    """CPM flush interval sweep."""
    figure = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    record_figure(figure)
