"""Figure 11: one augmented PTW vs pools of 2-8 naive serial PTWs."""

from repro.harness import figures


def test_fig11_multi_ptw(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig11_multi_ptw, iterations=1, rounds=1
    )
    record_figure(figure)
