"""Figure 16: TA-CCWS TLB-miss weight sweep (1:1 .. 8:1)."""

from repro.harness import figures


def test_fig16_ta_ccws(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig16_ta_ccws, iterations=1, rounds=1
    )
    record_figure(figure)
