"""Figure 7: non-blocking TLB steps (hit-under-miss, overlapped cache access) vs the ideal TLB."""

from repro.harness import figures


def test_fig07_nonblocking(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig07_nonblocking, iterations=1, rounds=1
    )
    record_figure(figure)
