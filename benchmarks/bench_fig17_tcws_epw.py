"""Figure 17: TCWS victim tag array entries-per-warp sweep (2-16)."""

from repro.harness import figures


def test_fig17_tcws_epw(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig17_tcws_epw, iterations=1, rounds=1
    )
    record_figure(figure)
