"""Figure 3: workload characterization - memory fraction, 128-entry TLB miss rates, page divergence (unscaled characterization stream)."""

from repro.harness import figures


def test_fig03_divergence(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig03_characterization, iterations=1, rounds=1
    )
    record_figure(figure)
