"""Section 9: initial 2 MB large-page results - divergence collapses except for bfs and mummergpu."""

from repro.harness import figures


def test_sec9_large_pages(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.sec9_large_pages, iterations=1, rounds=1
    )
    record_figure(figure)
