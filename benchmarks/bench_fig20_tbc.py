"""Figure 20: TBC with naive and augmented TLBs vs TLB-less TBC, plus page-divergence amplification."""

from repro.harness import figures


def test_fig20_tbc(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig20_tbc, iterations=1, rounds=1
    )
    record_figure(figure)
