"""Figure 2: naive 3-port TLBs degrade performance in every case (alone, under CCWS, and under TBC)."""

from repro.harness import figures


def test_fig02_naive_tlb(benchmark, record_figure):
    """Regenerate and archive the figure (single timed round)."""
    figure = benchmark.pedantic(
        figures.fig02_naive_tlb, iterations=1, rounds=1
    )
    record_figure(figure)
