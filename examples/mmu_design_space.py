"""Design-space walk: from the CPU-style strawman to the augmented MMU.

Reproduces the paper's Section 6 narrative on one workload of your
choice: starting from the naive blocking 3-port TLB, each step adds one
of the paper's augmentations and reports the recovered performance —
ports, hit-under-miss, overlapped cache access, PTW scheduling — ending
at the impractical ideal TLB for reference.

Run:  python examples/mmu_design_space.py [workload]
"""

import sys

from repro.core import presets
from repro.core.simulator import Simulator
from repro.stats.report import ascii_bar_chart, format_table
from repro.workloads import TIMING_MISS_SCALE, get_workload, workload_names


def run(config, workload):
    """Simulate and return the result."""
    work = workload.build(config, miss_scale=TIMING_MISS_SCALE)
    return Simulator(config, work, workload.name).run()


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "memcached"
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; pick from {workload_names()}")
    workload = get_workload(name)
    warm = dict(warmup_instructions=20)

    steps = [
        ("no TLB (baseline)", presets.no_tlb(**warm)),
        ("naive 3-port blocking", presets.naive_tlb(ports=3, **warm)),
        ("4 ports", presets.naive_tlb(ports=4, **warm)),
        ("+ hit under miss", presets.hit_under_miss_tlb(**warm)),
        ("+ overlapped cache access", presets.overlap_tlb(**warm)),
        ("+ PTW scheduling (augmented)", presets.augmented_tlb(**warm)),
        ("ideal 512e/32p (impractical)", presets.ideal_tlb(**warm)),
    ]

    results = {label: run(config, workload) for label, config in steps}
    baseline = results["no TLB (baseline)"]

    print(f"MMU design walk on {name}\n")
    speedups = {
        label: result.speedup_vs(baseline)
        for label, result in results.items()
        if label != "no TLB (baseline)"
    }
    print(ascii_bar_chart(speedups))

    print()
    rows = []
    for label, result in results.items():
        if label == "no TLB (baseline)":
            continue
        stats = result.stats
        rows.append(
            [
                label,
                f"{stats.tlb_miss_rate:.1%}",
                stats.walks,
                f"{result.avg_walk_cycles:.0f}",
                f"{stats.idle_fraction:.1%}",
            ]
        )
    print(
        format_table(
            ["design", "TLB miss", "walks", "avg walk cyc", "idle"], rows
        )
    )


if __name__ == "__main__":
    main()
