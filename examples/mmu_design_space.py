"""Design-space walk: from the CPU-style strawman to the augmented MMU.

Reproduces the paper's Section 6 narrative on one workload of your
choice: starting from the naive blocking 3-port TLB, each step adds one
of the paper's augmentations and reports the recovered performance —
ports, hit-under-miss, overlapped cache access, PTW scheduling — ending
at the impractical ideal TLB for reference.  Every design point is a
named preset run through :func:`repro.api.simulate`.

Run:  python examples/mmu_design_space.py [workload]
"""

import sys

from repro.api import simulate
from repro.core.config import GPUConfig
from repro.stats.report import ascii_bar_chart, format_table
from repro.workloads import workload_names


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "memcached"
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; pick from {workload_names()}")
    warm = dict(warmup_instructions=20)

    steps = [
        ("no TLB (baseline)", GPUConfig.preset("no_tlb", **warm)),
        ("naive 3-port blocking", GPUConfig.preset("naive", ports=3, **warm)),
        ("4 ports", GPUConfig.preset("blocking", **warm)),
        ("+ hit under miss", GPUConfig.preset("hit_under_miss", **warm)),
        ("+ overlapped cache access", GPUConfig.preset("non_blocking", **warm)),
        ("+ PTW scheduling (augmented)", GPUConfig.preset("augmented", **warm)),
        ("ideal 512e/32p (impractical)", GPUConfig.preset("ideal", **warm)),
    ]

    results = {
        label: simulate(config=config, workload=name)
        for label, config in steps
    }
    baseline = results["no TLB (baseline)"]

    print(f"MMU design walk on {name}\n")
    speedups = {
        label: result.speedup_vs(baseline)
        for label, result in results.items()
        if label != "no TLB (baseline)"
    }
    print(ascii_bar_chart(speedups))

    print()
    rows = []
    for label, result in results.items():
        if label == "no TLB (baseline)":
            continue
        stats = result.stats
        rows.append(
            [
                label,
                f"{stats.tlb_miss_rate:.1%}",
                stats.walks,
                f"{result.avg_walk_cycles:.0f}",
                f"{stats.idle_fraction:.1%}",
            ]
        )
    print(
        format_table(
            ["design", "TLB miss", "walks", "avg walk cyc", "idle"], rows
        )
    )


if __name__ == "__main__":
    main()
