"""Warp-scheduler study: CCWS, TA-CCWS and TCWS under address translation.

Reproduces the paper's Section 7 story on a cache-sensitive workload:
CCWS recovers intra-warp locality, naive TLBs erase most of the gain,
and the TLB-aware variants (TA-CCWS weighting, TCWS with page-grain
victim tag arrays) win it back — TCWS with half the VTA hardware.

Run:  python examples/scheduler_study.py [workload]
"""

import sys

from repro.core import presets
from repro.core.simulator import Simulator
from repro.gpu.scheduler.tcws import TCWSScheduler
from repro.stats.report import ascii_bar_chart
from repro.tlb.victim_array import VictimTagArray
from repro.workloads import TIMING_MISS_SCALE, get_workload, workload_names


def run(config, workload):
    work = workload.build(config, miss_scale=TIMING_MISS_SCALE)
    return Simulator(config, work, workload.name).run()


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; pick from {workload_names()}")
    workload = get_workload(name)
    warm = dict(warmup_instructions=20)

    configs = {
        "round-robin (no TLB)": presets.no_tlb(**warm),
        "ccws (no TLB)": presets.with_ccws(presets.no_tlb(**warm)),
        "ccws + naive TLB": presets.with_ccws(presets.naive_tlb(ports=4, **warm)),
        "ccws + augmented TLB": presets.with_ccws(presets.augmented_tlb(**warm)),
        "ta-ccws 4:1 + augmented": presets.with_ta_ccws(
            presets.augmented_tlb(**warm), tlb_miss_weight=4
        ),
        "tcws 8epw + augmented": presets.with_tcws(
            presets.augmented_tlb(**warm), entries_per_warp=8
        ),
    }
    results = {label: run(config, workload) for label, config in configs.items()}
    baseline = results["round-robin (no TLB)"]

    print(f"warp-scheduler study on {name}\n")
    print(
        ascii_bar_chart(
            {
                label: result.speedup_vs(baseline)
                for label, result in results.items()
                if label != "round-robin (no TLB)"
            }
        )
    )

    ccws_tags = VictimTagArray(48, entries_per_warp=16).storage_tags()
    tcws_tags = TCWSScheduler(48).storage_tags()
    print()
    print(
        f"hardware: CCWS victim tag arrays hold {ccws_tags} tags; "
        f"TCWS holds {tcws_tags} ({tcws_tags / ccws_tags:.0%} of CCWS)"
    )


if __name__ == "__main__":
    main()
