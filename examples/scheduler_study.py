"""Warp-scheduler study: CCWS, TA-CCWS and TCWS under address translation.

Reproduces the paper's Section 7 story on a cache-sensitive workload:
CCWS recovers intra-warp locality, naive TLBs erase most of the gain,
and the TLB-aware variants (TA-CCWS weighting, TCWS with page-grain
victim tag arrays) win it back — TCWS with half the VTA hardware.
Machines combine the named presets with the scheduler combinators from
:mod:`repro.core.presets`; each cell runs through
:func:`repro.api.simulate`.

Run:  python examples/scheduler_study.py [workload]
"""

import sys

from repro.api import simulate
from repro.core import presets
from repro.core.config import GPUConfig
from repro.gpu.scheduler.tcws import TCWSScheduler
from repro.stats.report import ascii_bar_chart
from repro.tlb.victim_array import VictimTagArray
from repro.workloads import workload_names


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; pick from {workload_names()}")
    warm = dict(warmup_instructions=20)
    _preset = GPUConfig.preset

    configs = {
        "round-robin (no TLB)": _preset("no_tlb", **warm),
        "ccws (no TLB)": presets.with_ccws(_preset("no_tlb", **warm)),
        "ccws + naive TLB": presets.with_ccws(_preset("blocking", **warm)),
        "ccws + augmented TLB": presets.with_ccws(_preset("augmented", **warm)),
        "ta-ccws 4:1 + augmented": presets.with_ta_ccws(
            _preset("augmented", **warm), tlb_miss_weight=4
        ),
        "tcws 8epw + augmented": presets.with_tcws(
            _preset("augmented", **warm), entries_per_warp=8
        ),
    }
    results = {
        label: simulate(config=config, workload=name)
        for label, config in configs.items()
    }
    baseline = results["round-robin (no TLB)"]

    print(f"warp-scheduler study on {name}\n")
    print(
        ascii_bar_chart(
            {
                label: result.speedup_vs(baseline)
                for label, result in results.items()
                if label != "round-robin (no TLB)"
            }
        )
    )

    ccws_tags = VictimTagArray(48, entries_per_warp=16).storage_tags()
    tcws_tags = TCWSScheduler(48).storage_tags()
    print()
    print(
        f"hardware: CCWS victim tag arrays hold {ccws_tags} tags; "
        f"TCWS holds {tcws_tags} ({tcws_tags / ccws_tags:.0%} of CCWS)"
    )


if __name__ == "__main__":
    main()
