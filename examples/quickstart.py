"""Quickstart: simulate one workload on three MMU designs.

Runs the paper's bfs-like workload on (1) a GPU without address
translation, (2) the naive CPU-style TLB strawman, and (3) the paper's
augmented design — all through the stable :mod:`repro.api` facade and
the named config presets — then prints the speedups and the TLB
statistics behind them.

Run:  python examples/quickstart.py
"""

from repro.api import simulate
from repro.core.config import GPUConfig
from repro.stats.report import ascii_bar_chart


def main():
    warm = dict(warmup_instructions=20)

    baseline = simulate(config=GPUConfig.preset("no_tlb", **warm), workload="bfs")
    naive = simulate(
        config=GPUConfig.preset("naive", ports=3, **warm), workload="bfs"
    )
    augmented = simulate(
        config=GPUConfig.preset("augmented", **warm), workload="bfs"
    )

    print(f"workload: {baseline.workload}")
    print(f"baseline (no TLB): {baseline.cycles} cycles")
    print()
    print("speedup vs no-TLB baseline (1.0 = no overhead):")
    print(
        ascii_bar_chart(
            {
                "naive 128e/3p blocking TLB": naive.speedup_vs(baseline),
                "augmented (4p, non-blocking, PTW sched)": augmented.speedup_vs(
                    baseline
                ),
            }
        )
    )
    print()
    for label, result in (("naive", naive), ("augmented", augmented)):
        stats = result.stats
        print(
            f"{label:9s} TLB miss rate {stats.tlb_miss_rate:5.1%}  "
            f"page divergence {stats.average_page_divergence:4.1f}  "
            f"walks {stats.walks}  avg walk {result.avg_walk_cycles:6.0f} cyc"
        )
    overhead = augmented.overhead_vs(baseline)
    print()
    print(
        f"augmented translation overhead: {overhead:.1%} of runtime "
        "(the paper's acceptability band is 5-15%)"
    )


if __name__ == "__main__":
    main()
