"""Quickstart: simulate one workload on three MMU designs.

Builds the paper's bfs-like workload, runs it on (1) a GPU without
address translation, (2) the naive CPU-style TLB strawman, and (3) the
paper's augmented design, then prints the speedups and the TLB
statistics behind them.

Run:  python examples/quickstart.py
"""

from repro.core import presets
from repro.core.simulator import Simulator
from repro.stats.report import ascii_bar_chart
from repro.workloads import TIMING_MISS_SCALE, get_workload


def run(config, workload):
    """Simulate ``workload`` on ``config`` and return the result."""
    work = workload.build(config, miss_scale=TIMING_MISS_SCALE)
    return Simulator(config, work, workload.name).run()


def main():
    workload = get_workload("bfs")
    warm = dict(warmup_instructions=20)

    baseline = run(presets.no_tlb(**warm), workload)
    naive = run(presets.naive_tlb(ports=3, **warm), workload)
    augmented = run(presets.augmented_tlb(**warm), workload)

    print(f"workload: {workload.name} ({workload.spec.description})")
    print(f"baseline (no TLB): {baseline.cycles} cycles")
    print()
    print("speedup vs no-TLB baseline (1.0 = no overhead):")
    print(
        ascii_bar_chart(
            {
                "naive 128e/3p blocking TLB": naive.speedup_vs(baseline),
                "augmented (4p, non-blocking, PTW sched)": augmented.speedup_vs(
                    baseline
                ),
            }
        )
    )
    print()
    for label, result in (("naive", naive), ("augmented", augmented)):
        stats = result.stats
        print(
            f"{label:9s} TLB miss rate {stats.tlb_miss_rate:5.1%}  "
            f"page divergence {stats.average_page_divergence:4.1f}  "
            f"walks {stats.walks}  avg walk {result.avg_walk_cycles:6.0f} cyc"
        )
    overhead = augmented.overhead_vs(baseline)
    print()
    print(
        f"augmented translation overhead: {overhead:.1%} of runtime "
        "(the paper's acceptability band is 5-15%)"
    )


if __name__ == "__main__":
    main()
