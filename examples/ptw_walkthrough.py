"""The paper's Figure 8 worked example, step by step.

Three warp threads miss the TLB on virtual pages

    (0xb9, 0x0c, 0xac, 0x03)
    (0xb9, 0x0c, 0xac, 0x04)
    (0xb9, 0x0c, 0xad, 0x05)

A conventional serial walker performs three independent four-load walks
(12 loads).  The coalescing PTW scheduler recognizes that all three
share PML4 and PDP entries, that the two PD entries share a cache line,
and that two PT entries share a cache line — and issues 7 loads.

Run:  python examples/ptw_walkthrough.py
"""

from repro.mem.hierarchy import SharedMemory
from repro.ptw.scheduler import ScheduledPageTableWalker, plan_batch
from repro.ptw.walker import PageTableWalker
from repro.vm.address import compose_vpn, split_vpn
from repro.vm.page_table import PageTable

PAGES = [
    compose_vpn(0xB9, 0x0C, 0xAC, 0x03),
    compose_vpn(0xB9, 0x0C, 0xAC, 0x04),
    compose_vpn(0xB9, 0x0C, 0xAD, 0x05),
]
LEVELS = ("PML4", "PDP", "PD", "PT")


def main():
    table = PageTable()
    for vpn in PAGES:
        table.map_page(vpn)

    print("concurrent TLB misses:")
    for vpn in PAGES:
        indices = ", ".join(f"{i:#04x}" for i in split_vpn(vpn))
        print(f"  vpn {vpn:#011x}  = ({indices})")
    print()

    naive = PageTableWalker(table, SharedMemory(num_channels=1))
    serial = naive.walk_many(PAGES, now=0)
    print(
        f"serial walker : {serial.refs} loads, "
        f"batch completes at cycle {serial.ready_time}"
    )

    sched = ScheduledPageTableWalker(table, SharedMemory(num_channels=1))
    plan = plan_batch(sched.steps_for(PAGES))
    batch = sched.walk_many(PAGES, now=0)
    print(
        f"scheduled     : {batch.refs} loads, "
        f"batch completes at cycle {batch.ready_time} "
        f"({plan.refs_eliminated} loads eliminated)"
    )
    print()

    print("scheduled load plan (level by level):")
    for level, loads in enumerate(plan.loads_per_level):
        lines = {}
        for addr in loads:
            lines.setdefault(addr // 128, []).append(addr)
        parts = []
        for line, addrs in lines.items():
            tag = " (same line)" if len(addrs) > 1 else ""
            parts.append(
                " + ".join(f"{a:#x}" for a in addrs) + tag
            )
        print(f"  step {level} {LEVELS[level]:>4}: {' | '.join(parts)}")


if __name__ == "__main__":
    main()
