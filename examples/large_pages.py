"""Section 9's large-page study: when do 2 MB pages solve the problem?

Runs each workload with 4 KB and 2 MB pages on the naive TLB and prints
miss rates and page divergence side by side.  Regular workloads get
near-total relief; bfs and mummergpu keep high divergence because their
accesses span many 2 MB regions — the paper's argument that large pages
are "a natural next step" but not a substitute for TLB-aware design.

Run:  python examples/large_pages.py
"""

from repro.api import simulate
from repro.core.config import GPUConfig
from repro.stats.report import format_table
from repro.workloads import workload_names


def main():
    warm = dict(warmup_instructions=20)
    rows = []
    for name in workload_names():
        # Characterization stream: Section 9 reports trace properties,
        # so run at miss_scale=1.0 rather than the timing default.
        small = simulate(
            config=GPUConfig.preset("blocking", **warm),
            workload=name,
            miss_scale=1.0,
        )
        large = simulate(
            config=GPUConfig.preset("blocking", page_shift=21, **warm),
            workload=name,
            miss_scale=1.0,
        )
        rows.append(
            [
                name,
                f"{small.stats.tlb_miss_rate:.1%}",
                f"{large.stats.tlb_miss_rate:.1%}",
                f"{small.stats.average_page_divergence:.1f}",
                f"{large.stats.average_page_divergence:.1f}",
            ]
        )
    print("large pages (2 MB) vs base pages (4 KB), naive 128-entry TLB\n")
    print(
        format_table(
            ["workload", "miss 4KB", "miss 2MB", "pdiv 4KB", "pdiv 2MB"],
            rows,
        )
    )
    print()
    print(
        "note: bfs and mummergpu retain divergence under 2 MB pages — "
        "their warps gather across tens of megabytes (Section 9)."
    )


if __name__ == "__main__":
    main()
