"""Statistic counters and derived metrics."""

import pytest

from repro.stats.counters import CoreStats


class TestDerived:
    def test_tlb_miss_rate(self):
        stats = CoreStats(tlb_lookups=10, tlb_misses=3)
        assert stats.tlb_miss_rate == 0.3

    def test_empty_rates_are_zero(self):
        stats = CoreStats()
        assert stats.tlb_miss_rate == 0.0
        assert stats.average_page_divergence == 0.0
        assert stats.idle_fraction == 0.0

    def test_page_divergence(self):
        stats = CoreStats(memory_instructions=4, page_divergence_sum=10)
        assert stats.average_page_divergence == 2.5

    def test_memory_fraction(self):
        stats = CoreStats(scalar_instructions=100, memory_instructions=10)
        assert stats.memory_instruction_fraction == 0.1

    def test_walk_elimination(self):
        stats = CoreStats(walk_refs_naive=12, walk_refs_issued=7)
        assert stats.walk_refs_eliminated_fraction == pytest.approx(5 / 12)


class TestMerge:
    def test_cycles_take_max(self):
        a = CoreStats(cycles=100)
        a.merge(CoreStats(cycles=250))
        assert a.cycles == 250

    def test_counters_sum(self):
        a = CoreStats(tlb_misses=3, tlb_lookups=10)
        a.merge(CoreStats(tlb_misses=5, tlb_lookups=10))
        assert a.tlb_misses == 8
        assert a.tlb_lookups == 20

    def test_divergence_max_takes_max(self):
        a = CoreStats(page_divergence_max=4)
        a.merge(CoreStats(page_divergence_max=9))
        assert a.page_divergence_max == 9

    def test_idle_fraction_normalizes_by_cores(self):
        a = CoreStats(cores=0)
        a.merge(CoreStats(cycles=100, idle_cycles=60))
        a.merge(CoreStats(cycles=100, idle_cycles=60))
        assert a.idle_fraction == pytest.approx(0.6)
