"""Statistic counters and derived metrics."""

import dataclasses

import pytest

from repro.stats.counters import CoreStats


class TestDerived:
    def test_tlb_miss_rate(self):
        stats = CoreStats(tlb_lookups=10, tlb_misses=3)
        assert stats.tlb_miss_rate == 0.3

    def test_empty_rates_are_zero(self):
        stats = CoreStats()
        assert stats.tlb_miss_rate == 0.0
        assert stats.average_page_divergence == 0.0
        assert stats.idle_fraction == 0.0

    def test_page_divergence(self):
        stats = CoreStats(memory_instructions=4, page_divergence_sum=10)
        assert stats.average_page_divergence == 2.5

    def test_memory_fraction(self):
        stats = CoreStats(scalar_instructions=100, memory_instructions=10)
        assert stats.memory_instruction_fraction == 0.1

    def test_walk_elimination(self):
        stats = CoreStats(walk_refs_naive=12, walk_refs_issued=7)
        assert stats.walk_refs_eliminated_fraction == pytest.approx(5 / 12)


class TestMerge:
    def test_cycles_take_max(self):
        a = CoreStats(cycles=100)
        a.merge(CoreStats(cycles=250))
        assert a.cycles == 250

    def test_counters_sum(self):
        a = CoreStats(tlb_misses=3, tlb_lookups=10)
        a.merge(CoreStats(tlb_misses=5, tlb_lookups=10))
        assert a.tlb_misses == 8
        assert a.tlb_lookups == 20

    def test_divergence_max_takes_max(self):
        a = CoreStats(page_divergence_max=4)
        a.merge(CoreStats(page_divergence_max=9))
        assert a.page_divergence_max == 9

    def test_idle_fraction_normalizes_by_cores(self):
        a = CoreStats(cores=0)
        a.merge(CoreStats(cycles=100, idle_cycles=60))
        a.merge(CoreStats(cycles=100, idle_cycles=60))
        assert a.idle_fraction == pytest.approx(0.6)

    def test_every_field_is_covered_by_merge(self):
        """Merging two fully-populated stats leaves no field untouched —
        guards against adding a counter and forgetting the merge rule."""
        kwargs = {
            f.name: i + 1
            for i, f in enumerate(dataclasses.fields(CoreStats))
        }
        a = CoreStats(**kwargs)
        before = dataclasses.asdict(a)
        a.merge(CoreStats(**kwargs))
        after = dataclasses.asdict(a)
        unchanged = [k for k, v in after.items() if v == before[k]]
        # cycles and page_divergence_max legitimately keep their value
        # (max of two equal operands); everything else must move.
        assert set(unchanged) <= {"cycles", "page_divergence_max"}

    def test_merge_identity_on_empty(self):
        a = CoreStats(cores=1, cycles=50, tlb_misses=2, instructions=9)
        snapshot = dataclasses.replace(a)
        a.merge(CoreStats(cores=0))
        snapshot.cores += 0  # cores field: 1 + 0
        assert a == snapshot

    def test_merge_is_commutative_on_disjoint_cores(self):
        x = CoreStats(cycles=120, tlb_lookups=10, tlb_misses=4, idle_cycles=30)
        y = CoreStats(cycles=80, tlb_lookups=6, tlb_misses=1, idle_cycles=70)
        ab = CoreStats(cores=0)
        ab.merge(x)
        ab.merge(y)
        ba = CoreStats(cores=0)
        ba.merge(y)
        ba.merge(x)
        assert ab == ba
        assert ab.cycles == 120
        assert ab.tlb_misses == 5

    def test_derived_metrics_consistent_after_merge(self):
        merged = CoreStats(cores=0)
        parts = [
            CoreStats(tlb_lookups=10, tlb_misses=5),
            CoreStats(tlb_lookups=30, tlb_misses=5),
        ]
        for part in parts:
            merged.merge(part)
        total_lookups = sum(p.tlb_lookups for p in parts)
        total_misses = sum(p.tlb_misses for p in parts)
        assert merged.tlb_miss_rate == pytest.approx(total_misses / total_lookups)
