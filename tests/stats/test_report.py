"""Report rendering."""

import pytest

from repro.stats.report import ascii_bar_chart, format_series, format_table


class TestTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "2.500" in lines[3]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])


class TestSeries:
    def test_series_columns(self):
        text = format_series({"s1": {"w": 1.0}, "s2": {"w": 2.0}})
        assert "s1" in text and "s2" in text and "w" in text

    def test_missing_cell_is_nan(self):
        text = format_series({"s1": {"a": 1.0}, "s2": {"b": 2.0}})
        assert "nan" in text

    def test_missing_cell_is_nan_in_integer_columns(self):
        # Integer-valued series must render missing keys as "nan" too,
        # not crash or fall back to a float repr.
        text = format_series({"ints": {"a": 1, "b": 2}, "other": {"a": 3}})
        row_b = next(l for l in text.splitlines() if l.startswith("b"))
        assert "nan" in row_b

    def test_none_cell_renders_nan(self):
        text = format_series({"s": {"a": None}})
        assert "nan" in text


class TestBars:
    def test_reference_tick(self):
        text = ascii_bar_chart({"a": 0.5}, width=20, reference=1.0)
        assert "|" in text

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_values_rendered(self):
        text = ascii_bar_chart({"a": 0.5, "b": 1.5})
        assert "0.500" in text and "1.500" in text

    def test_all_zero_series_renders(self):
        text = ascii_bar_chart({"a": 0, "b": 0}, reference=0.0)
        assert "a" in text and "b" in text

    def test_negative_values_render_without_error(self):
        text = ascii_bar_chart({"a": -2.0, "b": -0.5}, reference=0.0)
        assert "-2.000" in text
