"""Bucketed histograms and their derivation from trace events."""

import pytest

from repro.obs.events import (
    MEM_COALESCE,
    TLB_MISS_BEGIN,
    TLB_MISS_END,
    WALK_QUEUE,
    TraceEvent,
)
from repro.stats.histograms import (
    Histogram,
    histograms_from_events,
    pow2_bucket,
)


def ev(kind, cycle, **args):
    return TraceEvent(kind, cycle, 0, "t", None, args)


class TestPow2Bucket:
    @pytest.mark.parametrize(
        "value,bucket",
        [(0, 0), (1, 1), (2, 2), (3, 2), (4, 4), (7, 4), (8, 8), (1023, 512)],
    )
    def test_floor(self, value, bucket):
        assert pow2_bucket(value) == bucket

    def test_negative_clamps_to_zero(self):
        assert pow2_bucket(-5) == 0


class TestHistogram:
    def test_exact_buckets(self):
        hist = Histogram("h")
        hist.extend([1, 1, 2, 5])
        assert hist.counts == {1: 2, 2: 1, 5: 1}
        assert hist.total == 4
        assert hist.mean == pytest.approx(9 / 4)
        assert (hist.min, hist.max) == (1, 5)

    def test_pow2_buckets(self):
        hist = Histogram("h", pow2=True)
        hist.extend([3, 5, 6, 100])
        assert hist.counts == {2: 1, 4: 2, 64: 1}

    def test_percentiles(self):
        hist = Histogram("h")
        hist.extend(range(1, 101))
        assert hist.percentile(50) == 50
        assert hist.percentile(95) == 95
        assert Histogram("empty").percentile(50) == 0

    def test_dict_round_trip(self):
        hist = Histogram("lat", unit="cycles", pow2=True)
        hist.extend([3, 90, 700])
        back = Histogram.from_dict(hist.to_dict())
        assert back.counts == hist.counts
        assert back.to_dict() == hist.to_dict()

    def test_render_empty_and_populated(self):
        assert "(no samples)" in Histogram("e").render()
        hist = Histogram("lat", unit="cycles", pow2=True)
        hist.extend([5, 5, 9])
        text = hist.render()
        assert "n=3" in text and "[cycles]" in text and "4+" in text


class TestDerivations:
    def test_tlb_latency_from_span_pairs(self):
        events = [
            ev(TLB_MISS_BEGIN, 10, vpn=1),
            ev(TLB_MISS_BEGIN, 12, vpn=2),
            ev(TLB_MISS_END, 50, vpn=2),   # latency 38
            ev(TLB_MISS_END, 110, vpn=1),  # latency 100
            ev(TLB_MISS_END, 999, vpn=3),  # unmatched: dropped
        ]
        hists = histograms_from_events(events)
        hist = hists["tlb_miss_latency"]
        assert hist.total == 2
        assert hist.sum == 138

    def test_divergence_and_queue_depth(self):
        events = [
            ev(MEM_COALESCE, 1, pages=3, lines=8),
            ev(MEM_COALESCE, 2, pages=1, lines=2),
            ev(WALK_QUEUE, 3, depth=4),
        ]
        hists = histograms_from_events(events)
        assert hists["page_divergence"].counts == {3: 1, 1: 1}
        assert hists["walk_queue_depth"].counts == {4: 1}

    def test_empty_histograms_omitted(self):
        assert histograms_from_events([]) == {}
