"""Demand paging: pages fault in at first touch, with paper-style costs."""

from __future__ import annotations

import pytest

from helpers import small_config, small_workload

from repro.core import presets
from repro.core.simulator import Simulator
from repro.faults.config import FaultConfig
from repro.faults.model import FaultModel
from repro.vm.page_table import PageTable, TranslationFault
from repro.vm.physical_memory import PhysicalMemory

GEOM = dict(num_cores=1, warps_per_core=8, warp_width=8)


def _paging_config(**fault_overrides):
    defaults = dict(enabled=True, demand_paging=True, seed=11)
    defaults.update(fault_overrides)
    return presets.augmented_tlb(**GEOM).with_(faults=FaultConfig(**defaults))


def _run(config):
    work = small_workload().build(config)
    return Simulator(config, work, workload_name="tiny").run()


def test_model_maps_page_and_charges_major_penalty(page_table):
    config = FaultConfig(
        enabled=True, demand_paging=True, major_fault_cycles=5000,
        minor_fraction=0.0, seed=1,
    )
    model = FaultModel(page_table, config)
    with pytest.raises(TranslationFault):
        page_table.walk(0x40)
    ready = model.page_fault(0x40, now=100)
    assert ready == 100 + 5000
    # The handler mapped the page: the retried walk now succeeds.
    assert page_table.walk(0x40)
    assert model.major_faults == 1 and model.minor_faults == 0
    assert model.fault_stall_cycles == 5000


def test_concurrent_faults_on_one_page_merge(page_table):
    config = FaultConfig(
        enabled=True, demand_paging=True, major_fault_cycles=5000,
        minor_fraction=0.0, seed=1,
    )
    model = FaultModel(page_table, config)
    first_ready = model.page_fault(0x40, now=0)
    merged_ready = model.page_fault(0x40, now=10)  # handler still running
    assert merged_ready == first_ready
    assert model.faults == 1  # merged fault is not double-counted
    assert model.pending_ready(0x40) == first_ready
    # After the handler completes, a fresh fault on the same page (e.g.
    # after an eviction under memory pressure) counts again.
    later = model.page_fault(0x41, now=first_ready + 1)
    assert later > first_ready


def test_minor_fraction_splits_fault_population():
    config = _paging_config(minor_fraction=0.5, seed=11)
    stats = _run(config).stats
    assert stats.page_faults_minor > 0
    assert stats.page_faults_major > 0
    assert stats.page_fault_stall_cycles > 0


def test_major_faults_stall_the_machine():
    clean = _run(presets.augmented_tlb(**GEOM))
    faulty = _run(_paging_config(minor_fraction=0.0))
    stats = faulty.stats
    assert stats.page_faults_major > 0
    # Every touched page far-faults once; the run must absorb at least
    # one full CPU-assist round trip of extra latency.
    assert faulty.cycles >= clean.cycles + 5000


def test_demand_paging_is_seed_deterministic():
    config = _paging_config(minor_fraction=0.3)
    assert _run(config).to_json() == _run(config).to_json()


def test_demand_paging_requires_a_tlb():
    config = presets.no_tlb(**GEOM).with_(
        faults=FaultConfig(enabled=True, demand_paging=True)
    )
    result = _run(config)
    # The no-TLB baseline models pinned, pre-mapped memory: paging is
    # inert there and the run completes fault-free.
    assert result.stats.page_faults_minor == 0
    assert result.stats.page_faults_major == 0


def test_tracing_does_not_perturb_a_faulting_run():
    from repro.core.config import TraceConfig
    from repro.obs import events as _ev

    config = _paging_config(minor_fraction=0.3)
    plain = _run(config)
    traced_config = config.with_(
        trace=TraceConfig(enabled=True, ring_capacity=1 << 14)
    )
    from repro.obs import tracer as obs_tracer
    from repro.obs.sinks import RingBufferSink

    sink = RingBufferSink(capacity=1 << 14)
    obs_tracer.install(obs_tracer.Tracer(sinks=[sink]))
    try:
        traced = _run(config)
    finally:
        obs_tracer.uninstall()
    assert traced.to_json() == plain.to_json()
    # The fault path emitted its events.
    assert sink.events(kind=_ev.PAGE_FAULT)


def test_faulted_pages_translate_identically_to_premapped():
    clean = _run(presets.augmented_tlb(**GEOM))
    faulty = _run(_paging_config(minor_fraction=0.0))
    # Paging changes timing, never functional behaviour: same work, same
    # translation structure, same instruction count.
    assert faulty.stats.instructions == clean.stats.instructions
    assert faulty.stats.memory_instructions == clean.stats.memory_instructions
