"""The forward-progress watchdog turns livelock into a structured error."""

from __future__ import annotations

import pytest

from helpers import small_config, small_workload

from repro.core.simulator import Simulator
from repro.faults.config import FaultConfig
from repro.faults.errors import SimulationHang
from repro.faults.watchdog import Watchdog
from repro.obs import tracer as obs_tracer
from repro.obs.sinks import RingBufferSink


class _NeverScheduler:
    """A broken scheduler that refuses every candidate (artificial livelock)."""

    def __init__(self, inner):
        self._inner = inner

    def select(self, candidates, now, inflight):
        return None

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _livelocked_simulator(watchdog_cycles=500):
    config = small_config(faults=FaultConfig(watchdog_cycles=watchdog_cycles))
    work = small_workload().build(config)
    sim = Simulator(config, work, workload_name="tiny")
    sim.cores[0].scheduler = _NeverScheduler(sim.cores[0].scheduler)
    return sim


def test_watchdog_unit_fires_past_limit():
    dog = Watchdog(100, core_id=0)
    dog.check(100, None)  # exactly at the limit: still fine
    dog.progress(100)
    dog.check(200, None)
    with pytest.raises(SimulationHang):
        dog.check(201, None)


def test_livelocked_simulation_terminates_with_structured_hang():
    sim = _livelocked_simulator(watchdog_cycles=500)
    with pytest.raises(SimulationHang) as excinfo:
        sim.run()
    diag = excinfo.value.diagnostics
    # The dump names the stuck core, the stall span, and enough machine
    # state to debug the hang without re-running.
    assert diag["core"] == 0
    assert diag["stalled_cycles"] > 500
    assert diag["live_warps"] > 0
    assert diag["warp_states"]
    # The simulator layered on run context before re-raising.
    assert diag["workload"] == "tiny"
    assert "config" in diag


def test_watchdog_dump_reaches_the_tracer():
    sim = _livelocked_simulator(watchdog_cycles=500)
    sink = RingBufferSink(capacity=1 << 12)
    obs_tracer.install(obs_tracer.Tracer(sinks=[sink]))
    try:
        with pytest.raises(SimulationHang):
            sim.run()
    finally:
        obs_tracer.uninstall()
    dumps = sink.events(kind="hang_dump")
    assert len(dumps) == 1


def test_healthy_run_never_trips_the_watchdog():
    config = small_config(faults=FaultConfig(watchdog_cycles=200))
    work = small_workload().build(config)
    result = Simulator(config, work, workload_name="tiny").run()
    assert result.cycles > 0


def test_watchdog_disabled_with_zero_cycles():
    config = small_config(faults=FaultConfig(watchdog_cycles=0))
    assert not config.faults.enabled
    work = small_workload().build(config)
    assert Simulator(config, work, workload_name="tiny").run().cycles > 0
