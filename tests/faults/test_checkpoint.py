"""Resumable sweeps: checkpointed cells are skipped, failures retried."""

from __future__ import annotations

import json

import pytest

from helpers import small_config

from repro.core.results import SimulationResult
from repro.faults.errors import SimulationHang
from repro.harness.checkpoint import SweepCheckpoint, cell_key
from repro.harness.experiment import run_cell, run_matrix, sweep_session
from repro.parallel import cells
from repro.stats.counters import CoreStats

WORKLOAD = "bfs"


def _configs():
    return {"tiny": lambda: small_config()}


def test_resumed_sweep_is_byte_identical_and_skips_simulation(tmp_path, monkeypatch):
    path = str(tmp_path / "sweep.jsonl")
    with sweep_session(checkpoint_path=path):
        first = run_matrix(_configs(), workloads=[WORKLOAD])
    # Sabotage the simulator: a resume that re-simulated would explode.
    def _boom(*args, **kwargs):
        raise AssertionError("cell was re-simulated despite checkpoint")

    monkeypatch.setattr(cells, "simulate_cell", _boom)
    with sweep_session(checkpoint_path=path):
        second = run_matrix(_configs(), workloads=[WORKLOAD])
    a = first["tiny"][WORKLOAD]
    b = second["tiny"][WORKLOAD]
    assert a.to_json() == b.to_json()


def test_checkpoint_survives_a_torn_final_line(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    with sweep_session(checkpoint_path=path):
        run_matrix(_configs(), workloads=[WORKLOAD])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "half-written')  # crash mid-append
    with SweepCheckpoint(path) as checkpoint:
        assert checkpoint.completed == 1


def test_distinct_configs_do_not_collide_under_one_label():
    a = cell_key("naive", "bfs", small_config(), None, 1.0)
    b = cell_key(
        "naive", "bfs", small_config(warmup_instructions=7), None, 1.0
    )
    assert a != b


def test_failed_cells_retry_then_record_failure(tmp_path, monkeypatch):
    path = str(tmp_path / "sweep.jsonl")
    calls = {"n": 0}

    def _always_hangs(*args, **kwargs):
        calls["n"] += 1
        raise SimulationHang("stuck", diagnostics={"cycle": 123})

    monkeypatch.setattr(cells, "simulate_cell", _always_hangs)
    with SweepCheckpoint(path) as checkpoint:
        with pytest.raises(SimulationHang) as excinfo:
            run_cell(
                "tiny",
                lambda: small_config(),
                WORKLOAD,
                checkpoint=checkpoint,
                cell_retries=2,
            )
        assert calls["n"] == 3  # 1 attempt + 2 retries
        assert excinfo.value.diagnostics["attempts"] == 3
        failures = checkpoint.failures
    assert len(failures) == 1
    assert failures[0]["error_type"] == "SimulationHang"
    assert failures[0]["attempts"] == 3
    # The failure is persisted for post-mortem...
    lines = [json.loads(l) for l in open(path, encoding="utf-8")]
    assert lines[-1]["status"] == "error"
    # ...but is not treated as completed: a resume retries the cell.
    with SweepCheckpoint(path) as resumed:
        assert resumed.completed == 0
        assert len(resumed.failures) == 1


def test_transient_failures_recover_within_retry_budget(tmp_path, monkeypatch):
    calls = {"n": 0}
    healthy = SimulationResult(
        workload=WORKLOAD, config_description="x", cycles=10,
        stats=CoreStats(),
    )

    def _flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] < 3:
            raise SimulationHang("stuck")
        return healthy

    monkeypatch.setattr(cells, "simulate_cell", _flaky)
    with SweepCheckpoint(str(tmp_path / "sweep.jsonl")) as checkpoint:
        result = run_cell(
            "tiny",
            lambda: small_config(),
            WORKLOAD,
            checkpoint=checkpoint,
            cell_retries=2,
        )
        assert result.cycles == 10
        assert checkpoint.completed == 1


def test_retries_perturb_the_fault_seed():
    from repro.faults.config import FaultConfig

    config = small_config(
        faults=FaultConfig(enabled=True, ptw_error_rate=0.1, seed=5)
    )
    assert cells.reseeded(config, 0).faults.seed == 5
    assert cells.reseeded(config, 1).faults.seed == 6
    # Fault-free configs are never touched.
    clean = small_config()
    assert cells.reseeded(clean, 1) is clean


def test_torn_final_line_is_dropped_with_a_warning(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    with sweep_session(checkpoint_path=path):
        run_matrix(_configs(), workloads=[WORKLOAD])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "half-written')  # crash mid-append
    with pytest.warns(RuntimeWarning, match="truncated"):
        checkpoint = SweepCheckpoint(path)
    try:
        # The torn line is dropped, not fatal, and costs only itself.
        assert checkpoint.completed == 1
    finally:
        checkpoint.close()
