"""Config validation fails fast with messages naming the bad field."""

from __future__ import annotations

import pytest

from helpers import small_config

from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    TLBConfig,
)
from repro.faults.config import FaultConfig
from repro.vm.page_table import PageTable, TranslationFault
from repro.vm.physical_memory import PhysicalMemory


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        (dict(entries=0), "entries"),
        (dict(entries=-128), "entries"),
        (dict(ports=0), "ports"),
        (dict(associativity=0), "associativity"),
        (dict(entries=100, associativity=8), "divide"),
        (dict(mshr_entries=0), "(?i)mshr"),
    ],
)
def test_tlb_config_rejects_bad_geometry(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        TLBConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        (dict(l1_bytes=0), "l1_bytes"),
        (dict(line_bytes=-1), "line_bytes"),
        (dict(l1_mshr_entries=0), "(?i)mshr"),
        (dict(l2_latency=-3), "(?i)latenc"),
        (dict(l2_service_interval=0), "service_interval"),
    ],
)
def test_cache_config_rejects_bad_values(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        CacheConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        (dict(num_channels=0), "channel"),
        (dict(access_latency=-1), "(?i)latenc"),
        (dict(service_interval=0), "service_interval"),
    ],
)
def test_dram_config_rejects_bad_values(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        DRAMConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        (dict(num_cores=0), "num_cores"),
        (dict(warps_per_core=-1), "warps_per_core"),
        (dict(warp_width=0), "warp_width"),
        (dict(warmup_instructions=-5), "warmup"),
    ],
)
def test_gpu_config_rejects_bad_geometry(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        GPUConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        (dict(ptw_error_rate=1.5), "ptw_error_rate"),
        (dict(tlb_shootdown_rate=-0.1), "tlb_shootdown_rate"),
        (dict(minor_fraction=2.0), "minor_fraction"),
        (dict(major_fault_cycles=-1), "major_fault_cycles"),
        (dict(major_fault_cycles=10, minor_fault_cycles=100), "minor"),
        (dict(ptw_max_retries=-1), "ptw_max_retries"),
        (dict(watchdog_cycles=-1), "watchdog_cycles"),
    ],
)
def test_fault_config_rejects_bad_values(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        FaultConfig(**kwargs)


def test_warmup_longer_than_trace_is_rejected():
    from helpers import small_workload
    from repro.core.simulator import Simulator

    # 20 instructions/warp of warmup exactly consumes the 20-instruction
    # traces: nothing would be measured.
    config = small_config(warmup_instructions=20)
    work = small_workload().build(config)
    with pytest.raises(ValueError, match="warmup"):
        Simulator(config, work, workload_name="tiny").run()


def test_fault_config_activity_properties():
    assert not FaultConfig().injection_active
    assert not FaultConfig(ptw_error_rate=0.5).injection_active  # not enabled
    assert FaultConfig(enabled=True, ptw_error_rate=0.5).injection_active
    assert FaultConfig(enabled=True, demand_paging=True).paging_active
    assert not FaultConfig(demand_paging=True).paging_active


def test_describe_mentions_faults_only_when_enabled():
    assert "faults" not in small_config().describe()
    noisy = small_config(
        faults=FaultConfig(enabled=True, demand_paging=True, seed=9)
    )
    assert "faults" in noisy.describe()
    assert "9" in noisy.describe()


def test_translation_fault_names_address_and_level():
    table = PageTable(PhysicalMemory())
    with pytest.raises(TranslationFault) as excinfo:
        table.walk(0x123)
    message = str(excinfo.value)
    assert "0x123" in message  # the vpn
    assert hex(0x123 << 12) in message  # the vaddr
    assert "level" in message.lower()
    assert excinfo.value.vpn == 0x123
    assert excinfo.value.level is not None
    assert excinfo.value.level_name
