"""Seeded fault injection: deterministic, survivable, and accounted."""

from __future__ import annotations

import dataclasses

import pytest

from helpers import small_config, small_workload

from repro.core.simulator import Simulator
from repro.faults.config import FaultConfig
from repro.faults.errors import PTWError
from repro.faults.injection import FaultInjector
from repro.mem.hierarchy import SharedMemory
from repro.ptw.walker import PageTableWalker
from repro.vm.page_table import PageTable
from repro.vm.physical_memory import PhysicalMemory


def _run(fault_config, **config_overrides):
    config = small_config(faults=fault_config, **config_overrides)
    work = small_workload().build(config)
    return Simulator(config, work, workload_name="tiny").run()


def test_injector_draws_are_seed_deterministic():
    config = FaultConfig(enabled=True, ptw_error_rate=0.3, seed=42)
    a = FaultInjector(config)
    b = FaultInjector(config)
    draws_a = [a.ptw_transient_error(paddr) for paddr in range(200)]
    draws_b = [b.ptw_transient_error(paddr) for paddr in range(200)]
    assert draws_a == draws_b
    assert a.ptw_errors_injected == b.ptw_errors_injected > 0
    assert a.log == b.log


class _ScriptedInjector:
    """Errors the first ``n`` times, then heals (deterministic retry test)."""

    def __init__(self, n):
        self.remaining = n
        self.ptw_errors_injected = 0

    def ptw_transient_error(self, paddr):
        if self.remaining > 0:
            self.remaining -= 1
            self.ptw_errors_injected += 1
            return True
        return False


def _walker_with(injector, max_retries=3, backoff=20):
    memory = PhysicalMemory()
    page_table = PageTable(memory)
    page_table.ensure_mapped(0x40)
    walker = PageTableWalker(page_table, SharedMemory(num_channels=1))
    walker._injector = injector
    walker._max_retries = max_retries
    walker._retry_backoff = backoff
    return walker


def test_transient_errors_within_budget_retry_and_succeed():
    walker = _walker_with(_ScriptedInjector(2), max_retries=3, backoff=20)
    clean = _walker_with(_ScriptedInjector(0), max_retries=3, backoff=20)
    result = walker.walk(0x40, now=0)
    baseline = clean.walk(0x40, now=0)
    assert result.pfn == baseline.pfn
    assert walker.transient_errors == 2
    assert walker.load_retries == 2
    # Each retry re-issues the load after the backoff, so the walk takes
    # strictly longer than the clean one.
    assert result.ready_time > baseline.ready_time


def test_errors_past_retry_budget_raise_structured_ptw_error():
    walker = _walker_with(_ScriptedInjector(10), max_retries=3)
    with pytest.raises(PTWError) as excinfo:
        walker.walk(0x40, now=0)
    diag = excinfo.value.diagnostics
    assert diag["max_retries"] == 3
    assert "paddr" in diag and "cycle" in diag


def test_end_to_end_injection_is_deterministic_and_counted():
    fc = FaultConfig(
        enabled=True,
        ptw_error_rate=0.02,
        tlb_shootdown_rate=0.01,
        tlb_invalidate_rate=0.05,
        seed=3,
    )
    first = _run(fc)
    second = _run(fc)
    assert first.to_json() == second.to_json()
    stats = first.stats
    assert stats.ptw_transient_errors > 0
    assert stats.ptw_retries == stats.ptw_transient_errors
    assert stats.tlb_shootdowns > 0
    assert stats.tlb_injected_invalidations > 0


def test_different_seed_changes_fault_sites():
    base = dict(
        enabled=True, ptw_error_rate=0.02, tlb_invalidate_rate=0.05
    )
    first = _run(FaultConfig(seed=3, **base))
    second = _run(FaultConfig(seed=4, **base))
    assert first.to_json() != second.to_json()


def test_injection_only_slows_never_speeds_the_machine():
    fc = FaultConfig(enabled=True, ptw_error_rate=0.02, seed=3)
    clean = _run(FaultConfig())
    faulty = _run(fc)
    assert faulty.cycles >= clean.cycles


def test_counters_survive_serialization_round_trip():
    fc = FaultConfig(enabled=True, ptw_error_rate=0.02, seed=3)
    result = _run(fc)
    from repro.core.results import SimulationResult

    restored = SimulationResult.from_json(result.to_json())
    assert restored.to_json() == result.to_json()
    assert restored.stats.ptw_transient_errors == result.stats.ptw_transient_errors


def test_injected_shootdown_forces_rewalks():
    fc = FaultConfig(enabled=True, tlb_shootdown_rate=0.05, seed=9)
    clean = _run(FaultConfig())
    faulty = _run(fc)
    assert faulty.stats.tlb_shootdowns > 0
    assert faulty.stats.tlb_misses > clean.stats.tlb_misses
