"""Smoke tests for the figure drivers (restricted workload sets).

The benchmarks run every driver on all six workloads; here each driver
runs on one or two to verify plumbing, series structure, and the
figure's central assertion where it is cheap to check.
"""

import pytest

from repro.harness import figures


@pytest.fixture(scope="module")
def fig07():
    return figures.fig07_nonblocking(workloads=["kmeans"])


class TestDrivers:
    def test_fig07_series_structure(self, fig07):
        assert set(fig07.series) == {
            "naive 128e/4p",
            "+hit-under-miss",
            "+cache-overlap",
            "ideal 512e/32p",
        }
        assert "kmeans" in fig07.series["ideal 512e/32p"]

    def test_fig07_ideal_dominates_naive(self, fig07):
        assert (
            fig07.series["ideal 512e/32p"]["kmeans"]
            > fig07.series["naive 128e/4p"]["kmeans"]
        )

    def test_fig04_reports_latencies(self):
        figure = figures.fig04_miss_latency(workloads=["kmeans"])
        assert figure.series["avg TLB miss cycles"]["kmeans"] > 0
        assert figure.series["avg L1 miss cycles"]["kmeans"] > 0

    def test_fig11_augmented_beats_naive_pools(self):
        figure = figures.fig11_multi_ptw(workloads=["mummergpu"])
        assert (
            figure.series["augmented x1 PTW"]["mummergpu"]
            > figure.series["naive x8 PTW"]["mummergpu"]
        )

    def test_all_drivers_registered(self):
        assert len(figures.ALL_FIGURES) == 14
        for key, fn in figures.ALL_FIGURES.items():
            assert callable(fn), key

    def test_render_roundtrip(self, fig07):
        text = fig07.render()
        assert "fig07" in text and "kmeans" in text
