"""The ``python -m repro.harness explain`` subcommand."""

import json

from repro.harness.__main__ import main


class TestExplainCommand:
    def run_quick(self, args):
        return main(["explain", "fig02", "--quick"] + args)

    def test_text_report_decomposes_latency(self, capsys):
        assert self.run_quick(["--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "== critical path: fig02/bfs (quick) ==" in out
        assert "(exact; 0 per-request mismatches)" in out
        assert "ptw_queue" in out and "memory" in out
        assert "-- top 2 slowest translations --" in out

    def test_out_dir_created_and_artifacts_valid(self, tmp_path, capsys):
        out = tmp_path / "nested" / "explain"  # parent does not exist
        assert self.run_quick(["--out", str(out)]) == 0
        payload = json.loads((out / "explain.json").read_text())
        assert payload["mismatches"] == 0
        assert payload["requests"] == payload["run"]["tlb_misses"]
        comp = sum(r["cycles"] for r in payload["components"])
        assert comp == payload["total_cycles"]
        chrome = json.loads((out / "spans.chrome.json").read_text())
        assert isinstance(chrome, list) and chrome
        for entry in chrome:
            assert "name" in entry and "ph" in entry and "ts" in entry
        assert (out / "spans.jsonl").read_text().splitlines()

    def test_json_output_parses(self, capsys):
        assert self.run_quick(["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["label"] == "fig02/bfs (quick)"
        assert payload["mismatches"] == 0

    def test_unknown_target_fails(self, capsys):
        assert main(["explain", "nope", "--quick"]) == 2
        assert "unknown trace target" in capsys.readouterr().err

    def test_workload_figure_conflict_fails(self, capsys):
        assert main(["explain", "bfs", "--workloads", "kmeans"]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_registry_receives_breakdown(self, capsys):
        from repro.prof.registry import REGISTRY

        assert self.run_quick([]) == 0
        counter = REGISTRY.counter("span_requests_total")
        assert counter.value(target="fig02", workload="tiny") > 0


class TestTraceOutDir:
    def test_out_parent_created_if_missing(self, tmp_path, capsys):
        out = tmp_path / "deep" / "traces"  # parent does not exist
        rc = main(["trace", "fig02", "--tiny", "--out", str(out)])
        assert rc == 0
        assert (out / "trace.jsonl").exists()
        assert (out / "trace.chrome.json").exists()
