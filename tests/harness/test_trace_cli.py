"""The ``python -m repro.harness trace`` subcommand."""

import json

from repro.harness.__main__ import main
from repro.harness.trace import resolve_target


class TestResolveTarget:
    def test_figure_target(self):
        config, workload, label = resolve_target("fig04", None)
        assert workload.name == "bfs"
        assert label == "fig04/bfs"

    def test_figure_target_with_workload(self):
        _, workload, label = resolve_target("fig07", "kmeans")
        assert workload.name == "kmeans"
        assert label == "fig07/kmeans"

    def test_workload_target(self):
        _, workload, label = resolve_target("memcached", None)
        assert workload.name == "memcached"
        assert label == "memcached"

    def test_unknown_target(self):
        try:
            resolve_target("nope", None)
        except KeyError as exc:
            assert "nope" in str(exc)
        else:
            raise AssertionError("expected KeyError")


class TestTraceCommand:
    def run_tiny(self, tmp_path, target="fig04"):
        rc = main(
            ["trace", target, "--tiny", "--out", str(tmp_path), "--interval", "500"]
        )
        assert rc == 0
        return tmp_path

    def test_writes_valid_jsonl(self, tmp_path, capsys):
        out = self.run_tiny(tmp_path)
        lines = (out / "trace.jsonl").read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert all("kind" in e and "cycle" in e for e in events)
        kinds = {e["kind"] for e in events}
        assert "tlb_lookup" in kinds and "walk_begin" in kinds

    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = self.run_tiny(tmp_path)
        data = json.loads((out / "trace.chrome.json").read_text())
        assert isinstance(data, list) and data
        for entry in data:
            assert "name" in entry and "ph" in entry and "ts" in entry
        # at least one named track per simulated core
        thread_names = [e for e in data if e["ph"] == "M" and e["name"] == "thread_name"]
        pids = {e["pid"] for e in data if e["ph"] != "M"}
        assert pids  # every core present
        assert {e["pid"] for e in thread_names} >= pids

    def test_report_summarizes_run(self, tmp_path, capsys):
        self.run_tiny(tmp_path)
        out = capsys.readouterr().out
        assert "fig04/bfs (tiny)" in out
        assert "tlb_miss_latency" in out
        assert "interval metrics" in out

    def test_workload_target(self, tmp_path, capsys):
        self.run_tiny(tmp_path, target="bfs")
        out = capsys.readouterr().out
        assert "bfs (tiny)" in out

    def test_unknown_target_fails(self, tmp_path, capsys):
        assert main(["trace", "nope", "--out", str(tmp_path)]) == 2
        assert "unknown trace target" in capsys.readouterr().err
