"""The repro.api facade: resolution rules, keyword-only surface, shims."""

from __future__ import annotations

import warnings

import pytest

from helpers import small_config

import repro
from repro.api import figure, simulate, sweep
from repro.core.config import GPUConfig
from repro.core.presets import preset_names


class TestSimulate:
    def test_accepts_config_object_name_and_factory(self):
        by_object = simulate(config=small_config(), workload="bfs")
        by_factory = simulate(config=lambda: small_config(), workload="bfs")
        assert by_object.canonical_json() == by_factory.canonical_json()
        named = simulate(
            config="no_tlb", workload="kmeans"
        )
        assert named.cycles > 0

    def test_is_keyword_only(self):
        with pytest.raises(TypeError):
            simulate(small_config(), "bfs")  # positional forbidden

    def test_unknown_preset_names_the_choices(self):
        with pytest.raises(ValueError, match="augmented"):
            simulate(config="no-such-machine", workload="bfs")

    def test_factory_must_return_a_config(self):
        with pytest.raises(TypeError, match="GPUConfig"):
            simulate(config=lambda: 42, workload="bfs")

    def test_rejects_non_config_values(self):
        with pytest.raises(TypeError, match="preset name"):
            simulate(config=3.14, workload="bfs")


class TestPresets:
    def test_paper_design_points_exist(self):
        names = preset_names()
        for required in ("no_tlb", "blocking", "augmented", "ideal"):
            assert required in names

    def test_aliases_resolve(self):
        assert isinstance(GPUConfig.preset("no-tlb"), GPUConfig)
        assert isinstance(GPUConfig.preset("baseline"), GPUConfig)

    def test_unknown_preset_raises_with_choices(self):
        with pytest.raises(ValueError, match="ideal"):
            GPUConfig.preset("bogus")


class TestSweep:
    def test_returns_one_result_per_label_with_speedups(self):
        rows = sweep(
            configs={
                "base": lambda: small_config(),
                "warm": lambda: small_config(warmup_instructions=5),
            },
            workloads=["bfs"],
            baseline="base",
        )
        assert [r.figure for r in rows] == ["base", "warm"]
        assert "cycles" in rows[0].series
        assert "speedup vs base" in rows[1].series
        assert "speedup vs base" not in rows[0].series

    def test_unknown_baseline_is_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            sweep(
                configs={"only": lambda: small_config()},
                workloads=["bfs"],
                baseline="missing",
            )


class TestFigure:
    def test_unknown_figure_lists_valid_ids(self):
        with pytest.raises(ValueError, match="fig07"):
            figure(name="fig99")


class TestPackageSurface:
    def test_facade_is_reexported_from_the_package_root(self):
        assert repro.simulate is simulate
        assert repro.sweep is sweep
        assert repro.figure is figure

    def test_deprecated_run_config_shim_warns_and_delegates(self):
        from repro.harness.experiment import run_config
        from repro.workloads.registry import get_workload

        with pytest.warns(DeprecationWarning):
            old = run_config(small_config(), get_workload("bfs"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the facade itself is clean
            new = simulate(config=small_config(), workload="bfs")
        assert old.canonical_json() == new.canonical_json()
