"""Harness plumbing."""

import pytest

from repro.core import presets
from repro.harness.experiment import (
    FigureResult,
    run_config,
    run_matrix,
    speedups_vs_baseline,
)
from repro.workloads.registry import get_workload


class TestFigureResult:
    def test_render_contains_series(self):
        figure = FigureResult(
            figure="figX",
            title="demo",
            series={"s": {"bfs": 0.5}},
            notes=["caveat"],
        )
        text = figure.render()
        assert "figX" in text and "bfs" in text and "caveat" in text


class TestRunners:
    def test_run_config_still_works_but_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api.simulate"):
            result = run_config(
                presets.no_tlb(warmup_instructions=20),
                get_workload("kmeans"),
            )
        assert result.cycles > 0
        assert result.workload == "kmeans"

    def test_matrix_and_speedups(self):
        results = run_matrix(
            {
                "base": lambda: presets.no_tlb(warmup_instructions=20),
                "naive": lambda: presets.naive_tlb(
                    ports=4, warmup_instructions=20
                ),
            },
            workloads=["kmeans"],
        )
        series = speedups_vs_baseline(results, "base")
        assert set(series) == {"naive"}
        assert 0 < series["naive"]["kmeans"] < 1.5
