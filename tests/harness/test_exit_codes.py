"""Unknown figure/workload names exit 2 uniformly across subcommands."""

from __future__ import annotations

import pytest

from repro.harness.__main__ import main


@pytest.mark.parametrize(
    "argv",
    [
        pytest.param(["fig99"], id="figures-unknown-figure"),
        pytest.param(
            ["fig04", "--workloads", "nosuchthing"],
            id="figures-unknown-workload",
        ),
        pytest.param(["trace", "fig99"], id="trace-unknown-target"),
        pytest.param(["trace", "nosuchthing"], id="trace-unknown-workload"),
        pytest.param(["explain", "fig99"], id="explain-unknown-target"),
        pytest.param(["faults", "nosuchthing"], id="faults-unknown-workload"),
        pytest.param(
            ["bench", "--figures", "fig99"], id="bench-unknown-figure"
        ),
        pytest.param(
            ["bench", "--workloads", "nosuchthing"],
            id="bench-unknown-workload",
        ),
        pytest.param(
            ["chaos", "--workloads", "nosuchthing"],
            id="chaos-unknown-workload",
        ),
        pytest.param(
            ["chaos", "--server", "--workloads", "nosuchthing"],
            id="chaos-server-unknown-workload",
        ),
    ],
)
def test_unknown_names_exit_2(argv, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    # The message names the offending input, not just a usage dump.
    needle = "fig99" if "fig99" in " ".join(argv) else "nosuchthing"
    assert needle in err


def test_chaos_rejects_serial_jobs(capsys):
    assert main(["chaos", "--jobs", "1"]) == 2
    assert "jobs" in capsys.readouterr().err
