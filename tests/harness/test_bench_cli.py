"""End-to-end ``python -m repro.harness bench`` acceptance flow."""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import main as bench_main
from repro.prof import benchfile

ARGS = ["--figures", "fig04", "--workloads", "kmeans"]


class TestBenchCli:
    def test_two_runs_write_sequence_and_compare(self, tmp_path, capsys):
        assert bench_main(ARGS + ["--dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert "wrote" in first and "BENCH_1.json" in first
        assert "bench compare" not in first  # no baseline yet

        assert bench_main(ARGS + ["--dir", str(tmp_path)]) == 0
        second = capsys.readouterr().out
        assert "BENCH_2.json" in second
        assert "bench compare vs BENCH_1.json" in second
        assert "overall:" in second

        report = benchfile.load(tmp_path / "BENCH_1.json")
        assert benchfile.validate(report) == []
        figure = report["figures"]["fig04"]
        assert figure["cells"] == 1
        assert figure["wall_s"] > 0
        assert figure["cells_per_s"] > 0
        assert figure["sim_cycles"] > 0
        assert "simulate" in figure["phases"]
        assert "tlb_lookup" in figure["phases"]
        assert report["totals"]["peak_rss_kb"] > 0
        assert report["metrics"]  # registry snapshot is populated

    def test_observed_column_records_overhead(self, tmp_path, capsys):
        code = bench_main(
            ARGS + ["--dir", str(tmp_path), "--observed", "--compare", "none"]
        )
        assert code == 0
        capsys.readouterr()
        report = benchfile.load(tmp_path / "BENCH_1.json")
        assert benchfile.validate(report) == []  # extra keys stay valid
        figure = report["figures"]["fig04"]
        assert figure["observed_wall_s"] > 0
        # Tracing costs something but the observed loop stays the same
        # order of magnitude; an absurd ratio means the instrumentation
        # broke (noisy CI hosts get generous slack).
        assert 0.2 < figure["observed_overhead"] < 10
        totals = report["totals"]
        assert totals["observed_wall_s"] > 0
        assert totals["observed_overhead"] > 0

    def test_without_observed_flag_no_observed_keys(self, tmp_path, capsys):
        assert bench_main(ARGS + ["--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        report = benchfile.load(tmp_path / "BENCH_1.json")
        assert "observed_wall_s" not in report["figures"]["fig04"]
        assert "observed_wall_s" not in report["totals"]

    def test_strict_fails_on_synthetic_regression(self, tmp_path, capsys):
        assert bench_main(ARGS + ["--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        # Forge a baseline the real run can never beat: the comparison
        # sees a >35% wall-time growth and --strict makes that exit 1.
        baseline = json.loads((tmp_path / "BENCH_1.json").read_text())
        baseline["figures"]["fig04"]["wall_s"] = 1e-6
        baseline["figures"]["fig04"]["cells_per_s"] = 1e6
        (tmp_path / "BENCH_1.json").write_text(json.dumps(baseline))
        assert bench_main(ARGS + ["--dir", str(tmp_path), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "regression" in out

    def test_compare_none_skips_comparison(self, tmp_path, capsys):
        assert bench_main(ARGS + ["--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        code = bench_main(
            ARGS + ["--dir", str(tmp_path), "--compare", "none"]
        )
        assert code == 0
        assert "bench compare" not in capsys.readouterr().out

    def test_unknown_figure_exits_2(self, capsys):
        assert bench_main(["--figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_unknown_workload_exits_2(self, capsys):
        assert bench_main(["--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_missing_compare_baseline_exits_2(self, tmp_path, capsys):
        code = bench_main(
            ARGS + ["--dir", str(tmp_path), "--compare", "missing.json"]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err
