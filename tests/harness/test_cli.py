"""The python -m repro.harness command line."""

from repro.harness.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "fig22" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2

    def test_single_figure_restricted_workloads(self, capsys):
        assert main(["fig04", "--workloads", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "kmeans" in out
