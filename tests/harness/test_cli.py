"""The python -m repro.harness command line."""

import json

from repro.harness.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "fig22" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "list" in err

    def test_unknown_workload(self, capsys):
        assert main(["fig04", "--workloads", "nosuchthing"]) == 2
        err = capsys.readouterr().err
        assert "nosuchthing" in err
        assert "bfs" in err  # the message names the valid choices

    def test_single_figure_restricted_workloads(self, capsys):
        assert main(["fig04", "--workloads", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "kmeans" in out

    def test_figure_with_checkpoint_resumes(self, capsys, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        args = ["fig10", "--workloads", "kmeans", "--checkpoint", path]
        assert main(args) == 0
        first = capsys.readouterr().out
        entries = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert entries and all(e["status"] == "ok" for e in entries)
        recorded = len(entries)
        # Rerun: all cells come from the checkpoint, output identical,
        # no new lines appended.
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert len(open(path, encoding="utf-8").readlines()) == recorded


class TestFaultsCLI:
    def test_tiny_smoke_reports_fault_counters(self, capsys):
        assert main(["faults", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "page faults" in out
        assert "ptw" in out

    def test_tiny_smoke_is_deterministic(self, capsys):
        assert main(["faults", "--tiny", "--check-determinism"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["faults", "nosuchthing"]) == 2
        err = capsys.readouterr().err
        assert "nosuchthing" in err and "bfs" in err
