"""``python -m repro.harness top``: frames from metrics scrapes."""

from __future__ import annotations

import pytest

from repro.harness.__main__ import main as harness_main
from repro.harness.top import TopView, main as top_main
from repro.prof.export import parse_prometheus, to_prometheus
from repro.prof.registry import MetricsRegistry


def _serve_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.gauge("serve_queue_depth").set(3)
    registry.gauge("serve_in_flight").set(2)
    registry.gauge("serve_slots").set(4)
    registry.gauge("serve_ready").set(1)
    registry.counter("serve_jobs_terminal_total").inc(7, state="done")
    registry.counter("serve_jobs_terminal_total").inc(1, state="failed")
    registry.counter("serve_admission_rejections_total").inc(2, reason="busy")
    registry.counter("sim_cycles").inc(100_000, engine="event")
    registry.counter("sim_cycles").inc(40_000, engine="cycle")
    registry.counter("sim_instructions").inc(5_000, engine="event")
    registry.counter("sweep_cells_total").inc(6, source="simulated")
    registry.counter("sweep_cells_total").inc(4, source="cache")
    registry.gauge("sweep_in_flight").set(2)
    registry.histogram("sweep_cell_seconds").observe(1.5)
    registry.histogram("sweep_cell_seconds").observe(2.5)
    return registry


class TestTopView:
    def test_frame_carries_every_section(self):
        samples = parse_prometheus(to_prometheus(_serve_registry()))
        frame = TopView("test").render(samples, now=10.0)
        assert "queue 3" in frame
        assert "in-flight 2" in frame
        assert "slots 4" in frame
        assert "done 7" in frame
        assert "failed 1" in frame
        assert "reused 4" in frame
        assert "event" in frame and "cycle" in frame
        assert "100,000" in frame
        # mean cell 2s over 2 in-flight cells → eta 4s
        assert "mean cell 2s" in frame
        assert "eta 4s" in frame

    def test_rate_is_scrape_to_scrape(self):
        view = TopView("test")
        registry = _serve_registry()
        view.render(parse_prometheus(to_prometheus(registry)), now=10.0)
        registry.counter("sim_cycles").inc(50_000, engine="event")
        frame = view.render(
            parse_prometheus(to_prometheus(registry)), now=12.0
        )
        assert "25,000" not in frame  # rate column is unformatted int
        assert "25000" in frame  # 50k cycles / 2s

    def test_first_frame_has_no_rate(self):
        samples = parse_prometheus(to_prometheus(_serve_registry()))
        view = TopView("test")
        built = view.build(samples, now=10.0)
        assert all(r["cycles_per_s"] is None for r in built["engines"])

    def test_no_serve_section_without_serve_metrics(self):
        registry = MetricsRegistry()
        registry.counter("sim_cycles").inc(10, engine="event")
        samples = parse_prometheus(to_prometheus(registry))
        view = TopView("test").build(samples, now=1.0)
        assert view["serve"] is None


class TestTopCLI:
    def test_once_from_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(to_prometheus(_serve_registry()))
        assert top_main(["--file", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "queue 3" in out

    def test_dispatched_from_harness(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(to_prometheus(_serve_registry()))
        assert harness_main(["top", "--file", str(path), "--once"]) == 0
        assert "repro top" in capsys.readouterr().out

    def test_once_with_missing_file_exits_1(self, tmp_path, capsys):
        missing = tmp_path / "nope.prom"
        assert top_main(["--file", str(missing), "--once"]) == 1
        out = capsys.readouterr().out
        assert "DISCONNECTED" in out
        assert "no frame ever received" in out

    def test_url_or_file_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            top_main(["--once"])
        assert excinfo.value.code == 2
