"""SweepExecutor: ordering, resume, legacy checkpoints, failures."""

from __future__ import annotations

import pytest

from helpers import small_config

from repro.faults.config import FaultConfig
from repro.faults.errors import PTWError, SimulationError, SimulationHang
from repro.harness.checkpoint import SweepCheckpoint, legacy_cell_key
from repro.harness.experiment import run_matrix, sweep_session
from repro.parallel import cells
from repro.parallel.cells import Cell
from repro.parallel.pool import SweepExecutor

WORKLOADS = ["bfs", "kmeans"]


def _cell(label="tiny", workload="bfs", **config_overrides) -> Cell:
    return Cell(
        label=label,
        workload=workload,
        config=small_config(**config_overrides),
        miss_scale=1.0,
    )


def _faulty_config():
    """A machine whose every page walk dies: fails on any seed."""
    return small_config(
        faults=FaultConfig(
            enabled=True, ptw_error_rate=1.0, ptw_max_retries=1, seed=3
        )
    )


def test_parallel_results_align_with_cell_order():
    matrix = [
        _cell("a", "bfs"),
        _cell("b", "kmeans"),
        _cell("c", "bfs", warmup_instructions=5),
    ]
    serial = SweepExecutor(jobs=1).run(matrix)
    parallel = SweepExecutor(jobs=2).run(matrix)
    assert len(parallel) == len(matrix)
    for want, got in zip(serial, parallel):
        assert want.canonical_json() == got.canonical_json()


def test_parallel_sweep_populates_checkpoint_and_cache(tmp_path):
    checkpoint_path = str(tmp_path / "sweep.jsonl")
    matrix = [_cell("a", "bfs"), _cell("a", "kmeans")]
    with SweepCheckpoint(checkpoint_path) as checkpoint:
        SweepExecutor(jobs=2, checkpoint=checkpoint).run(matrix)
        assert checkpoint.completed == 2
    # A fresh executor resolves everything from the checkpoint alone.
    with SweepCheckpoint(checkpoint_path) as resumed:
        executor = SweepExecutor(jobs=2, checkpoint=resumed)
        results = executor.run(matrix)
    assert all(r is not None for r in results)


def test_killed_sweep_resumes_without_resimulating(tmp_path, monkeypatch):
    """A sweep dying mid-matrix resumes from the checkpoint."""
    path = str(tmp_path / "sweep.jsonl")
    configs = {"tiny": lambda: small_config()}
    real = cells.simulate_cell
    seen = []

    def _dies_on_second(cell, attempt=0):
        seen.append(cell.workload)
        if len(seen) == 2:
            raise SimulationHang("killed mid-sweep")
        return real(cell, attempt)

    monkeypatch.setattr(cells, "simulate_cell", _dies_on_second)
    with pytest.raises(SimulationHang):
        with sweep_session(checkpoint_path=path):
            run_matrix(configs, workloads=WORKLOADS)
    assert seen == WORKLOADS  # first cell completed, second died

    # Resume: the completed cell must come from the checkpoint.
    resumed_calls = []

    def _counts(cell, attempt=0):
        resumed_calls.append(cell.workload)
        return real(cell, attempt)

    monkeypatch.setattr(cells, "simulate_cell", _counts)
    with sweep_session(checkpoint_path=path):
        results = run_matrix(configs, workloads=WORKLOADS)
    assert resumed_calls == [WORKLOADS[1]]
    assert set(results["tiny"]) == set(WORKLOADS)


def test_old_format_checkpoints_still_resolve(tmp_path, monkeypatch):
    """Pre-hash checkpoint files (description keys) remain readable."""
    cell = _cell()
    baseline = cells.simulate_cell(cell)
    path = str(tmp_path / "old.jsonl")
    with SweepCheckpoint(path) as checkpoint:
        legacy = legacy_cell_key(
            cell.label,
            cell.workload,
            cell.config.describe(),
            cell.form,
            cell.miss_scale,
        )
        checkpoint.record(legacy, baseline)

    def _boom(*args, **kwargs):
        raise AssertionError("legacy checkpoint entry was ignored")

    monkeypatch.setattr(cells, "simulate_cell", _boom)
    with SweepCheckpoint(path) as checkpoint:
        results = SweepExecutor(jobs=1, checkpoint=checkpoint).run([cell])
    assert results[0].canonical_json() == baseline.canonical_json()


def test_parallel_failure_reports_earliest_cell(tmp_path):
    """Workers finish, failures are recorded, earliest error raised."""
    matrix = [
        Cell(label="bad-a", workload="bfs", config=_faulty_config()),
        _cell("good", "kmeans"),
        Cell(label="bad-b", workload="kmeans", config=_faulty_config()),
    ]
    path = str(tmp_path / "sweep.jsonl")
    with SweepCheckpoint(path) as checkpoint:
        with pytest.raises(SimulationError) as excinfo:
            SweepExecutor(jobs=2, checkpoint=checkpoint, retries=1).run(
                matrix
            )
        # The raised error is the earliest failed *index*, not whichever
        # worker happened to finish first.
        assert excinfo.value.diagnostics["series"] == "bad-a"
        assert isinstance(excinfo.value, PTWError)
        failing = {f["error_type"] for f in checkpoint.failures}
        assert failing == {"PTWError"}
        assert len(checkpoint.failures) == 2
        # The healthy cell was not lost to its neighbors' failures.
        assert checkpoint.completed == 1


def test_serial_failure_aborts_at_first_failing_cell(tmp_path):
    matrix = [
        Cell(label="bad", workload="bfs", config=_faulty_config()),
        _cell("good", "kmeans"),
    ]
    path = str(tmp_path / "sweep.jsonl")
    with SweepCheckpoint(path) as checkpoint:
        with pytest.raises(PTWError):
            SweepExecutor(jobs=1, checkpoint=checkpoint).run(matrix)
        assert checkpoint.completed == 0  # aborted before the good cell
        assert len(checkpoint.failures) == 1
