"""Decorrelated-jitter backoff: bounds, determinism, sharing."""

from __future__ import annotations

from repro.parallel.backoff import Backoff, for_cell_retries


def test_delays_stay_within_base_and_cap():
    backoff = Backoff(base=0.1, cap=1.0, seed=1)
    delays = [backoff.next() for _ in range(50)]
    assert all(0.1 <= d <= 1.0 for d in delays)
    assert backoff.attempts == 50


def test_sequence_is_seed_deterministic():
    first, second, other = Backoff(seed=7), Backoff(seed=7), Backoff(seed=8)
    a = [first.next() for _ in range(5)]
    assert a == [second.next() for _ in range(5)]
    assert a != [other.next() for _ in range(5)]


def test_delays_grow_toward_the_cap():
    # Decorrelated jitter: next ~ uniform(base, prev*3), so the
    # sequence trends upward until the cap pins it.
    backoff = Backoff(base=0.05, cap=10.0, seed=0)
    delays = [backoff.next() for _ in range(64)]
    assert max(delays[32:]) > max(delays[:4])


def test_zero_base_disables_sleeping():
    slept = []
    backoff = Backoff(base=0.0, sleep=slept.append)
    assert backoff.next() == 0.0
    backoff.sleep()
    assert slept == []  # never blocks, never even calls the sleeper


def test_sleep_uses_the_injected_sleeper():
    slept = []
    backoff = Backoff(base=0.1, cap=1.0, seed=3, sleep=slept.append)
    backoff.sleep()
    backoff.sleep()
    assert len(slept) == 2
    assert all(0.1 <= s <= 1.0 for s in slept)


def test_reset_forgets_accumulated_growth():
    backoff = Backoff(base=0.1, cap=100.0, seed=5)
    for _ in range(20):  # grow well past the first rung
        backoff.next()
    backoff.reset()
    assert backoff.attempts == 0
    # The next delay restarts from base: uniform(base, base * 3).
    assert 0.1 <= backoff.next() <= 0.3


def test_cell_retry_policy_is_seeded_per_cell():
    # The per-cell retry path seeds from the cell's fault seed so two
    # runs of the same sweep sleep identically (reproducible wall
    # clock) while distinct cells stay decorrelated.
    assert for_cell_retries(seed=1).next() == for_cell_retries(seed=1).next()
    assert for_cell_retries(seed=1).next() != for_cell_retries(seed=2).next()
