"""Content-addressed result cache: round trips and short-circuiting."""

from __future__ import annotations

import os

from helpers import small_config

from repro.harness.experiment import run_matrix, sweep_session
from repro.parallel import cells
from repro.parallel.cache import ResultCache, cache_key
from repro.parallel.cells import Cell

WORKLOAD = "bfs"


def _cell(**overrides) -> Cell:
    defaults = dict(
        label="tiny", workload=WORKLOAD, config=small_config(), miss_scale=1.0
    )
    defaults.update(overrides)
    return Cell(**defaults)


def test_cache_key_is_content_addressed_not_label_addressed():
    # Two series labels over the identical machine share one entry;
    # any config difference splits them.
    assert cache_key(_cell(label="a")) == cache_key(_cell(label="b"))
    assert cache_key(_cell()) != cache_key(
        _cell(config=small_config(warmup_instructions=7))
    )
    assert cache_key(_cell()) != cache_key(_cell(workload="kmeans"))
    assert cache_key(_cell()) != cache_key(_cell(miss_scale=2.0))


def test_round_trip_is_byte_identical(tmp_path):
    cache = ResultCache(str(tmp_path))
    cell = _cell()
    result = cells.simulate_cell(cell)
    cache.put(cell, result)
    restored = cache.get(cell)
    assert restored is not None
    assert restored.canonical_json() == result.canonical_json()
    assert cache.hits == 1 and cache.stores == 1 and len(cache) == 1


def test_corrupt_entry_degrades_to_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cell = _cell()
    cache.put(cell, cells.simulate_cell(cell))
    key = cache_key(cell)
    path = os.path.join(cache.root, key[:2], f"{key}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{torn")
    assert cache.get(cell) is None
    assert cache.misses == 1


def test_cache_hit_short_circuits_simulation(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    configs = {"tiny": lambda: small_config()}
    with sweep_session(cache_dir=cache_dir):
        first = run_matrix(configs, workloads=[WORKLOAD])

    def _boom(*args, **kwargs):
        raise AssertionError("cell was re-simulated despite cache entry")

    monkeypatch.setattr(cells, "simulate_cell", _boom)
    with sweep_session(cache_dir=cache_dir):
        second = run_matrix(configs, workloads=[WORKLOAD])
    a = first["tiny"][WORKLOAD]
    b = second["tiny"][WORKLOAD]
    assert a.canonical_json() == b.canonical_json()


def test_cache_is_shared_across_series_labels(tmp_path, monkeypatch):
    # A second sweep running the same machine under a different label
    # reuses the entry: content addressing, not label addressing.
    cache_dir = str(tmp_path / "cache")
    with sweep_session(cache_dir=cache_dir):
        run_matrix({"first": lambda: small_config()}, workloads=[WORKLOAD])

    def _boom(*args, **kwargs):
        raise AssertionError("identical machine re-simulated")

    monkeypatch.setattr(cells, "simulate_cell", _boom)
    with sweep_session(cache_dir=cache_dir):
        renamed = run_matrix(
            {"second": lambda: small_config()}, workloads=[WORKLOAD]
        )
    assert renamed["second"][WORKLOAD].cycles > 0
