"""The supervised pool: SIGKILL survival, restart budgets, health."""

from __future__ import annotations

import os
import signal

import pytest

from helpers import small_config

from repro.core.config import config_hash
from repro.faults.config import FaultConfig
from repro.faults.errors import PTWError, SimulationError, WorkerCrashed
from repro.harness.checkpoint import SweepCheckpoint, cell_key
from repro.parallel.cells import Cell
from repro.parallel.pool import SweepExecutor
from repro.parallel.supervisor import PoolHealth


def _cells():
    return [
        Cell("naive", "bfs", small_config()),
        Cell("aug", "kmeans", small_config(warps_per_core=16)),
    ]


class _KillFirstSnapshotted:
    """SIGKILL the first worker observed with an on-disk snapshot.

    Waiting for the snapshot guarantees (a) the heartbeat happened, so
    the parent classifies the death as a crash rather than an
    environment failure, and (b) the restart genuinely resumes
    mid-cell state rather than recomputing from scratch.
    """

    def __init__(self):
        self.kills = 0

    def __call__(self, pool) -> None:
        if self.kills:
            return
        for index, worker in list(pool.active.items()):
            if worker.pid is None:
                continue
            if not os.path.exists(pool.snapshot_path(index)):
                continue
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except ProcessLookupError:
                continue
            self.kills += 1
            return


class _DoomCell:
    """SIGKILL one cell's worker on every spawn, as soon as it beats."""

    def __init__(self, target: int):
        self.target = target
        self.kills = 0

    def __call__(self, pool) -> None:
        worker = pool.active.get(self.target)
        if worker is None or worker.pid is None:
            return
        if not os.path.exists(pool.heartbeat_path(self.target)):
            return
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except ProcessLookupError:
            return
        self.kills += 1


def test_pool_survives_a_sigkilled_worker_mid_sweep():
    cells = _cells()
    serial = [r.canonical_json() for r in SweepExecutor(jobs=1).run(cells)]
    killer = _KillFirstSnapshotted()
    recovered = SweepExecutor(
        jobs=2, chaos=killer, snapshot_every=200, restart_budget=3
    ).run(cells)
    assert killer.kills == 1, "chaos hook never landed a kill"
    assert [r.canonical_json() for r in recovered] == serial


def test_restart_budget_exhaustion_fails_the_cell_not_the_sweep(tmp_path):
    cells = [
        Cell("doomed", "bfs", small_config()),
        Cell("healthy", "kmeans", small_config()),
    ]
    doom = _DoomCell(0)
    path = str(tmp_path / "sweep.jsonl")
    with SweepCheckpoint(path) as checkpoint:
        with pytest.raises(WorkerCrashed) as excinfo:
            SweepExecutor(
                jobs=2,
                chaos=doom,
                restart_budget=1,
                snapshot_every=200,
                checkpoint=checkpoint,
            ).run(cells)
    error = excinfo.value
    assert isinstance(error, SimulationError)
    assert error.diagnostics["series"] == "doomed"
    assert error.diagnostics["spawns"] == 2  # initial + 1 restart
    assert error.diagnostics["exit_code"] == -signal.SIGKILL
    assert error.diagnostics["cell_key"] == cell_key(
        "doomed", "bfs", cells[0].config, None, 1.0
    )
    # The sweep itself survived: the healthy cell completed and was
    # recorded, and the crash was recorded as a structured failure.
    with SweepCheckpoint(path) as reloaded:
        assert reloaded.completed == 1
        assert any(
            entry["error_type"] == "WorkerCrashed"
            for entry in reloaded.failures
        )


def test_poisoned_cell_reports_its_config_hash():
    poisoned = Cell(
        "poison",
        "bfs",
        small_config(
            faults=FaultConfig(
                enabled=True, ptw_error_rate=1.0, ptw_max_retries=1, seed=3
            )
        ),
    )
    cells = [Cell("healthy", "kmeans", small_config()), poisoned]
    with pytest.raises(PTWError) as excinfo:
        SweepExecutor(jobs=2).run(cells)
    diagnostics = excinfo.value.diagnostics
    assert diagnostics["series"] == "poison"
    assert diagnostics["cell_key"] == cell_key(
        "poison", "bfs", poisoned.config, None, 1.0
    )
    assert "cfg:" + config_hash(poisoned.config)[:24] in diagnostics["cell_key"]
    # The original worker-side traceback survives the process boundary.
    assert "PTWError" in diagnostics.get("worker_traceback", "")


def test_pool_health_shrinks_after_consecutive_crashes():
    health = PoolHealth(4, shrink_after=2)
    health.on_crash()
    assert health.slots == 4
    health.on_crash()
    assert health.slots == 3
    assert health.shrinks == 1
    # A success resets the streak.
    health.on_success()
    health.on_crash()
    assert health.slots == 3
    health.on_crash()
    assert health.slots == 2


def test_pool_health_never_shrinks_below_one_slot():
    health = PoolHealth(2, shrink_after=1)
    for _ in range(5):
        health.on_crash()
    assert health.slots == 1
