"""Canonical config hashing: the identity under checkpoint/cache keys."""

from __future__ import annotations

import dataclasses
import json

from helpers import small_config

from repro.core.config import GPUConfig, canonical_config_json, config_hash
from repro.harness.checkpoint import cell_key, legacy_cell_key


def test_hash_ignores_field_order():
    # Two dicts with the same content in different insertion order must
    # hash identically — this is what makes the key survive dataclass
    # field reordering across refactors.
    config = small_config()
    data = dataclasses.asdict(config)
    reordered = dict(reversed(list(data.items())))
    assert canonical_config_json(data) == canonical_config_json(reordered)
    assert config_hash(data) == config_hash(reordered)


def test_hash_matches_dataclass_and_its_dict_form():
    config = small_config()
    assert config_hash(config) == config_hash(dataclasses.asdict(config))


def test_hash_covers_every_field():
    base = small_config()
    changed = small_config(warmup_instructions=base.warmup_instructions + 1)
    assert config_hash(base) != config_hash(changed)
    # Nested fields (the fault seed lives two levels deep) count too.
    from repro.faults.config import FaultConfig

    reseeded = small_config(faults=FaultConfig(seed=99))
    assert config_hash(base) != config_hash(reseeded)


def test_canonical_json_is_deterministic_and_compact():
    config = small_config()
    text = canonical_config_json(config)
    assert text == canonical_config_json(small_config())
    assert ": " not in text and ", " not in text  # compact separators
    assert json.loads(text)["num_cores"] == 1


def test_stable_hash_method_matches_module_function():
    config = small_config()
    assert config.stable_hash() == config_hash(config)
    assert config.canonical_dict() == dataclasses.asdict(config)


def test_cell_key_uses_the_hash_not_the_description():
    config = small_config()
    key = cell_key("naive", "bfs", config, None, 1.0)
    assert "cfg:" + config_hash(config)[:24] in key
    assert config.describe() not in key


def test_cell_key_distinguishes_labels_and_workloads():
    config = small_config()
    assert cell_key("a", "bfs", config) != cell_key("b", "bfs", config)
    assert cell_key("a", "bfs", config) != cell_key("a", "kmeans", config)


def test_legacy_key_preserves_the_old_format():
    # Old checkpoints keyed cells on the config *description*; the
    # fallback key must reproduce that format byte-for-byte.
    key = legacy_cell_key("naive", "bfs", "TLB 64e/1p", None, 1.0)
    assert key == "naive|bfs|TLB 64e/1p|-|1.0"


def test_preset_builds_named_design_points():
    augmented = GPUConfig.preset("augmented")
    assert isinstance(augmented, GPUConfig)
    # Overrides flow through to the factory.
    warm = GPUConfig.preset("augmented", warmup_instructions=20)
    assert warm.warmup_instructions == 20
    assert config_hash(warm) != config_hash(augmented)
