"""Wall-clock cell timeouts: the sweep twin of the PR 2 watchdog."""

from __future__ import annotations

import time

import pytest

from helpers import small_config

from repro.faults.errors import CellTimeout, SimulationError
from repro.faults.watchdog import wall_clock_guard
from repro.parallel import cells
from repro.parallel.cells import Cell


def test_guard_is_a_noop_when_disabled():
    with wall_clock_guard(0.0):
        time.sleep(0.01)
    with wall_clock_guard(-1.0):
        pass


def test_guard_interrupts_a_stuck_body():
    with pytest.raises(CellTimeout) as excinfo:
        with wall_clock_guard(0.05, label="stuck-cell"):
            time.sleep(5.0)
    assert "stuck-cell" in str(excinfo.value)
    assert excinfo.value.diagnostics["wall_clock_limit_s"] == 0.05


def test_guard_restores_the_previous_alarm_handler():
    import signal

    before = signal.getsignal(signal.SIGALRM)
    with wall_clock_guard(1.0):
        assert signal.getsignal(signal.SIGALRM) is not before
    assert signal.getsignal(signal.SIGALRM) is before


def test_cell_timeout_is_a_structured_simulation_error():
    # Retry/record plumbing treats CellTimeout exactly like a hang.
    assert issubclass(CellTimeout, SimulationError)


def test_execute_cell_times_out_and_attaches_context(monkeypatch):
    def _stuck(cell, attempt=0):
        time.sleep(5.0)

    monkeypatch.setattr(cells, "simulate_cell", _stuck)
    cell = Cell(label="tiny", workload="bfs", config=small_config())
    started = time.monotonic()
    with pytest.raises(CellTimeout) as excinfo:
        cells.execute_cell(cell, retries=0, timeout=0.05)
    assert time.monotonic() - started < 2.0
    assert excinfo.value.diagnostics["series"] == "tiny"
    assert excinfo.value.diagnostics["attempts"] == 1


def test_timeout_applies_per_attempt(monkeypatch):
    calls = {"n": 0}

    def _stuck(cell, attempt=0):
        calls["n"] += 1
        time.sleep(5.0)

    monkeypatch.setattr(cells, "simulate_cell", _stuck)
    cell = Cell(label="tiny", workload="bfs", config=small_config())
    with pytest.raises(CellTimeout) as excinfo:
        cells.execute_cell(cell, retries=2, timeout=0.05)
    assert calls["n"] == 3
    assert excinfo.value.diagnostics["attempts"] == 3


# -- the portable (timer-thread) guard path ---------------------------


def test_guard_fires_off_the_main_thread():
    # SIGALRM cannot be armed off the main thread; the guard must fall
    # back to the timer-thread path and still enforce the bound.
    import threading

    captured = {}

    def body():
        try:
            with wall_clock_guard(0.1, label="threaded-cell"):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pass
            captured["error"] = None
        except CellTimeout as exc:
            captured["error"] = exc

    worker = threading.Thread(target=body)
    worker.start()
    worker.join(timeout=10.0)
    assert not worker.is_alive()
    error = captured.get("error")
    assert isinstance(error, CellTimeout)
    assert "threaded-cell" in str(error)
    assert error.diagnostics["wall_clock_limit_s"] == 0.1


def test_timer_thread_guard_fires_on_the_main_thread_too():
    from repro.faults.watchdog import _timer_thread_guard

    with pytest.raises(CellTimeout) as excinfo:
        with _timer_thread_guard(0.05, label="forced-thread-path"):
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                pass
    assert "forced-thread-path" in str(excinfo.value)


def test_timer_thread_guard_clean_exit_leaves_no_pending_timeout():
    from repro.faults.watchdog import _timer_thread_guard

    with _timer_thread_guard(30.0, label="clean"):
        total = sum(range(1000))
    # Give any stray async exception bytecode boundaries to surface at.
    for _ in range(10000):
        total += 1
    assert total == 499500 + 10000
