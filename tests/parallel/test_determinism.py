"""The determinism contract: parallel figures are byte-identical to serial.

These run real figure drivers end to end (restricted to one workload to
stay fast), once inline and once across a spawned two-worker pool, and
compare the canonical JSON of the resulting :class:`FigureResult`s.
"""

from __future__ import annotations

import pytest

from helpers import small_config

from repro.api import figure, sweep

WORKLOADS = ["kmeans"]


@pytest.mark.parametrize("name", ["fig02", "fig11"])
def test_figure_is_byte_identical_serial_vs_parallel(name):
    serial = figure(name=name, workloads=WORKLOADS, jobs=1)
    parallel = figure(name=name, workloads=WORKLOADS, jobs=2)
    assert serial.to_json() == parallel.to_json()


def test_sweep_is_byte_identical_serial_vs_parallel():
    kwargs = dict(
        configs={"base": "no_tlb", "tiny": lambda: small_config()},
        workloads=WORKLOADS,
        baseline="base",
    )
    serial = sweep(jobs=1, **kwargs)
    parallel = sweep(jobs=2, **kwargs)
    assert [r.to_json() for r in serial] == [r.to_json() for r in parallel]
