"""Size-bounded cache eviction and concurrent-writer safety."""

from __future__ import annotations

import multiprocessing
import os

from helpers import small_config

from repro.parallel import cells
from repro.parallel.cache import ResultCache, cache_key
from repro.parallel.cells import Cell

WORKLOAD = "bfs"


def _cell(warmup=0) -> Cell:
    # warmup_instructions varies the config hash, giving distinct
    # cache keys without changing simulation cost.
    return Cell(
        label="tiny",
        workload=WORKLOAD,
        config=small_config(warmup_instructions=warmup),
        miss_scale=1.0,
    )


def _entry_bytes(cache: ResultCache, cell: Cell) -> int:
    key = cache_key(cell)
    return os.path.getsize(os.path.join(cache.root, key[:2], f"{key}.json"))


class TestEviction:
    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = cells.simulate_cell(_cell())
        for warmup in range(5):
            cache.put(_cell(warmup), result)
        assert len(cache) == 5 and cache.evictions == 0

    def test_stores_past_the_bound_evict_oldest_first(self, tmp_path):
        probe = ResultCache(str(tmp_path / "probe"))
        result = cells.simulate_cell(_cell())
        probe.put(_cell(), result)
        entry_size = _entry_bytes(probe, _cell())

        # Room for exactly two entries; insert three.
        cache = ResultCache(str(tmp_path / "lru"), max_bytes=2 * entry_size)
        now = 1_000_000_000
        for index, warmup in enumerate((1, 2, 3)):
            cache.put(_cell(warmup), result)
            key = cache_key(_cell(warmup))
            path = os.path.join(cache.root, key[:2], f"{key}.json")
            # Deterministic LRU order regardless of filesystem mtime
            # granularity.
            os.utime(path, (now + index, now + index))
        cache.put(_cell(4), result)
        assert cache.evictions >= 1
        assert cache.get(_cell(1)) is None  # oldest went first
        assert cache.get(_cell(4)) is not None  # newest never evicted
        assert cache.total_bytes() <= 2 * entry_size

    def test_get_touches_entries_so_hot_ones_survive(self, tmp_path):
        probe = ResultCache(str(tmp_path / "probe"))
        result = cells.simulate_cell(_cell())
        probe.put(_cell(), result)
        entry_size = _entry_bytes(probe, _cell())

        cache = ResultCache(str(tmp_path / "lru"), max_bytes=2 * entry_size)
        old = 1_000_000_000
        for index, warmup in enumerate((1, 2)):
            cache.put(_cell(warmup), result)
            key = cache_key(_cell(warmup))
            path = os.path.join(cache.root, key[:2], f"{key}.json")
            os.utime(path, (old + index, old + index))
        # Hit entry 1 (the older by mtime): the touch must promote it
        # past entry 2, so the next eviction takes 2 instead.
        assert cache.get(_cell(1)) is not None
        cache.put(_cell(3), result)
        assert cache.get(_cell(1)) is not None
        assert cache.get(_cell(2)) is None

    def test_single_oversized_entry_is_kept(self, tmp_path):
        # A bound smaller than one result degrades to holding exactly
        # the latest entry, never to thrashing an empty directory.
        cache = ResultCache(str(tmp_path), max_bytes=1)
        result = cells.simulate_cell(_cell())
        cache.put(_cell(1), result)
        assert cache.get(_cell(1)) is not None
        cache.put(_cell(2), result)
        assert cache.get(_cell(2)) is not None
        assert len(cache) == 1  # entry 1 was evicted, 2 kept


# -- concurrent writers ------------------------------------------------


def _hammer(root, max_bytes, result_json, lane, rounds, failures):
    """One writer process: interleaved puts/gets under a tight bound."""
    try:
        from repro.core.results import SimulationResult

        cache = ResultCache(root, max_bytes=max_bytes)
        result = SimulationResult.from_json(result_json)
        for round_index in range(rounds):
            for warmup in range(4):
                cell = _cell(warmup)
                cache.put(cell, result)
                # Reads must only ever see a complete entry or a miss —
                # never a torn file (atomic temp+rename) — no matter
                # what the other writers/evictors are doing.
                restored = cache.get(cell)
                if restored is not None:
                    if restored.canonical_json() != result_json:
                        failures.put(
                            f"lane {lane}: torn read at round {round_index}"
                        )
                        return
            cache.get(_cell(lane % 4))
    except BaseException as exc:  # noqa: BLE001 — report, don't hang
        failures.put(f"lane {lane}: {type(exc).__name__}: {exc}")


class TestConcurrentWriters:
    def test_parallel_processes_race_harmlessly(self, tmp_path):
        result = cells.simulate_cell(_cell())
        result_json = result.canonical_json()
        probe = ResultCache(str(tmp_path / "probe"))
        probe.put(_cell(), result)
        entry_size = _entry_bytes(probe, _cell())

        root = str(tmp_path / "shared")
        max_bytes = 2 * entry_size  # tight: forces concurrent eviction
        context = multiprocessing.get_context("spawn")
        failures = context.Queue()
        workers = [
            context.Process(
                target=_hammer,
                args=(root, max_bytes, result_json, lane, 6, failures),
            )
            for lane in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)
        problems = []
        while not failures.empty():
            problems.append(failures.get())
        assert problems == []

        # No temp droppings survive, every remaining entry is whole,
        # and one final bounded put (no concurrency) restores the
        # advisory bound exactly.
        leftovers = [
            name
            for _dir, _subdirs, names in os.walk(root)
            for name in names
            if not name.endswith(".json")
        ]
        assert leftovers == []
        cache = ResultCache(root, max_bytes=max_bytes)
        for warmup in range(4):
            restored = cache.get(_cell(warmup))
            assert restored is None or (
                restored.canonical_json() == result_json
            )
        cache.put(_cell(9), result)
        assert cache.total_bytes() <= max_bytes
