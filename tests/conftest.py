"""Shared fixtures: small machines and workloads that run in milliseconds."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from helpers import small_config, small_workload  # noqa: E402

from repro.mem.hierarchy import SharedMemory
from repro.vm.page_table import PageTable
from repro.vm.physical_memory import PhysicalMemory


@pytest.fixture
def memory():
    """A fresh physical memory."""
    return PhysicalMemory()


@pytest.fixture
def page_table(memory):
    """A fresh page table backed by ``memory``."""
    return PageTable(memory)


@pytest.fixture
def shared_memory():
    """A small shared memory system."""
    return SharedMemory(num_channels=1)


@pytest.fixture
def tiny_workload():
    """Fixture wrapper around :func:`helpers.small_workload`."""
    return small_workload()
