"""Named configurations used by the figures."""

from repro.core import presets


class TestPresets:
    def test_no_tlb(self):
        assert not presets.no_tlb().tlb.enabled

    def test_naive_matches_paper_strawman(self):
        config = presets.naive_tlb(ports=3)
        assert config.tlb.entries == 128
        assert config.tlb.ports == 3
        assert config.tlb.blocking
        assert config.ptw.count == 1 and not config.ptw.scheduled

    def test_augmented_design(self):
        config = presets.augmented_tlb()
        assert config.tlb.ports == 4
        assert config.tlb.hit_under_miss
        assert config.tlb.cache_overlap
        assert config.ptw.scheduled

    def test_ideal_is_impractical(self):
        from repro.tlb.cacti import is_practical

        config = presets.ideal_tlb()
        assert config.tlb.entries == 512
        assert config.tlb.ports == 32
        assert config.tlb.ideal_latency
        assert not is_practical(config.tlb.entries, config.tlb.ports)

    def test_multi_ptw(self):
        assert presets.multi_ptw_tlb(8).ptw.count == 8

    def test_scheduler_combinators(self):
        assert presets.with_ccws(presets.no_tlb()).scheduler.kind == "ccws"
        ta = presets.with_ta_ccws(presets.augmented_tlb(), tlb_miss_weight=8)
        assert ta.scheduler.kind == "ta-ccws"
        assert ta.scheduler.tlb_miss_weight == 8
        tcws = presets.with_tcws(presets.augmented_tlb(), entries_per_warp=4)
        assert tcws.scheduler.vta_entries_per_warp == 4

    def test_tbc_combinator(self):
        config = presets.with_tbc(presets.augmented_tlb(), "tlb-tbc", counter_bits=2)
        assert config.tbc.mode == "tlb-tbc"
        assert config.tbc.cpm_counter_bits == 2

    def test_combinators_preserve_mmu(self):
        config = presets.with_ccws(presets.augmented_tlb())
        assert config.ptw.scheduled
