"""Top-level Simulator behaviour."""

import pytest

from helpers import small_config, small_workload

from repro.core.config import TLBConfig
from repro.core.simulator import Simulator
from repro.vm.address import PAGE_SHIFT_2M


class TestConstruction:
    def test_work_must_match_core_count(self):
        config = small_config(num_cores=2)
        work = small_workload().build(small_config(num_cores=1))
        with pytest.raises(ValueError):
            Simulator(config, work, "tiny")

    def test_pages_premapped(self):
        config = small_config()
        wl = small_workload()
        sim = Simulator(config, wl.build(config), "tiny")
        assert sim.page_table.pages_mapped > 0
        assert len(sim.frame_map) == sim.page_table.pages_mapped

    def test_large_page_mode_maps_2mb(self):
        config = small_config(page_shift=PAGE_SHIFT_2M)
        wl = small_workload()
        sim = Simulator(config, wl.build(config), "tiny")
        # Far fewer 2 MB mappings than 4 KB pages touched.
        small_sim = Simulator(
            small_config(), wl.build(small_config()), "tiny"
        )
        assert sim.page_table.pages_mapped < small_sim.page_table.pages_mapped

    def test_per_core_memory_systems(self):
        config = small_config(num_cores=2)
        wl = small_workload()
        sim = Simulator(config, wl.build(config), "tiny")
        assert len(sim.shared_per_core) == 2
        assert sim.shared_per_core[0] is not sim.shared_per_core[1]


class TestResults:
    def test_result_carries_labels(self):
        config = small_config()
        wl = small_workload()
        result = Simulator(config, wl.build(config), "tiny").run()
        assert result.workload == "tiny"
        assert "TLB" in result.config_description

    def test_multicore_aggregation(self):
        one = small_config(num_cores=1)
        two = small_config(num_cores=2)
        wl = small_workload()
        r1 = Simulator(one, wl.build(one), "tiny").run()
        r2 = Simulator(two, wl.build(two), "tiny").run()
        # Twice the work across independent cores: instruction counts
        # double, cycles stay in the same ballpark.
        assert r2.stats.instructions == 2 * r1.stats.instructions
        assert r2.cycles < 3 * r1.cycles

    def test_no_tlb_has_no_walks(self):
        config = small_config(tlb=TLBConfig(enabled=False))
        wl = small_workload()
        result = Simulator(config, wl.build(config), "tiny").run()
        assert result.stats.walks == 0
        assert result.stats.tlb_lookups == 0
        assert result.ptw_refs == 0

    def test_identical_l1_traffic_with_and_without_tlb(self):
        # The no-TLB baseline uses the same physical frames, so cache
        # set behaviour matches the translated runs.
        wl = small_workload()
        base_cfg = small_config(tlb=TLBConfig(enabled=False))
        base = Simulator(base_cfg, wl.build(base_cfg), "tiny").run()
        tlb_cfg = small_config()
        tlb = Simulator(tlb_cfg, wl.build(tlb_cfg), "tiny").run()
        total_base = base.l1_hits + base.l1_misses
        total_tlb = tlb.l1_hits + tlb.l1_misses
        assert total_base == total_tlb
