"""Speedup arithmetic and result serialization."""

import json

import pytest

from repro.core.results import RESULT_SCHEMA_VERSION, SimulationResult, speedup
from repro.stats.counters import CoreStats


def result(cycles):
    return SimulationResult(
        workload="w", config_description="c", cycles=cycles, stats=CoreStats()
    )


class TestSpeedup:
    def test_faster_is_above_one(self):
        assert speedup(result(200), result(100)) == 2.0

    def test_slower_is_below_one(self):
        assert speedup(result(100), result(200)) == 0.5

    def test_method_form(self):
        assert result(100).speedup_vs(result(200)) == 2.0

    def test_overhead(self):
        assert result(115).overhead_vs(result(100)) == pytest.approx(0.15)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            speedup(result(100), result(0))

    def test_miss_rates(self):
        r = result(10)
        r.l1_hits, r.l1_misses = 3, 1
        assert r.l1_miss_rate == 0.25


class TestSerialization:
    def full_result(self):
        r = SimulationResult(
            workload="bfs",
            config_description="TLB 128e/4p",
            cycles=1234,
            stats=CoreStats(cores=2, cycles=1234, tlb_lookups=10, tlb_misses=3),
            l1_hits=40,
            l1_misses=8,
            avg_l1_miss_cycles=182.5,
            avg_walk_cycles=96.25,
            l2_hits=5,
            l2_misses=3,
            ptw_refs=12,
            ptw_l2_hit_rate=0.75,
            dram_requests=11,
            extra={"walks_per_kinstr": 4.5},
        )
        r.interval_series = [{"core": 0, "cycle": 100, "instructions": 9}]
        r.histograms = {
            "tlb_miss_latency": {
                "name": "tlb_miss_latency",
                "unit": "cycles",
                "pow2": True,
                "total": 1,
                "sum": 80,
                "min": 80,
                "max": 80,
                "counts": {"64": 1},
            }
        }
        return r

    def test_json_round_trip_is_identity(self):
        original = self.full_result()
        restored = SimulationResult.from_json(original.to_json())
        assert restored == original
        # and serializing again is byte-identical
        assert restored.to_json() == original.to_json()

    def test_to_json_is_valid_sorted_json(self):
        data = json.loads(self.full_result().to_json(indent=2))
        assert data["schema_version"] == RESULT_SCHEMA_VERSION
        assert data["stats"]["tlb_misses"] == 3
        assert data["workload"] == "bfs"

    def test_from_dict_ignores_unknown_keys(self):
        data = self.full_result().to_dict()
        data["from_the_future"] = 7
        restored = SimulationResult.from_dict(data)
        assert restored.cycles == 1234

    def test_from_dict_defaults_missing_stats(self):
        restored = SimulationResult.from_dict(
            {"workload": "w", "config_description": "c", "cycles": 10}
        )
        assert restored.stats == CoreStats()
