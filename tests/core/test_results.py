"""Speedup arithmetic."""

import pytest

from repro.core.results import SimulationResult, speedup
from repro.stats.counters import CoreStats


def result(cycles):
    return SimulationResult(
        workload="w", config_description="c", cycles=cycles, stats=CoreStats()
    )


class TestSpeedup:
    def test_faster_is_above_one(self):
        assert speedup(result(200), result(100)) == 2.0

    def test_slower_is_below_one(self):
        assert speedup(result(100), result(200)) == 0.5

    def test_method_form(self):
        assert result(100).speedup_vs(result(200)) == 2.0

    def test_overhead(self):
        assert result(115).overhead_vs(result(100)) == pytest.approx(0.15)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            speedup(result(100), result(0))

    def test_miss_rates(self):
        r = result(10)
        r.l1_hits, r.l1_misses = 3, 1
        assert r.l1_miss_rate == 0.25
