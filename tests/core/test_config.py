"""Configuration validation and presets."""

import pytest

from repro.core.config import (
    GPUConfig,
    PTWConfig,
    SchedulerConfig,
    TBCConfig,
    TLBConfig,
)


class TestTLBConfig:
    def test_defaults_match_paper(self):
        tlb = TLBConfig()
        assert tlb.entries == 128
        assert tlb.mshr_entries == 32  # one per warp thread

    def test_overlap_requires_nonblocking(self):
        with pytest.raises(ValueError):
            TLBConfig(cache_overlap=True, blocking=True)

    def test_entries_must_divide_sets(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=10, associativity=4)

    def test_disabled_tlb_skips_validation(self):
        TLBConfig(enabled=False, entries=0)  # no error


class TestPTWConfig:
    def test_scheduled_is_single_walker(self):
        with pytest.raises(ValueError):
            PTWConfig(count=2, scheduled=True)

    def test_positive_count(self):
        with pytest.raises(ValueError):
            PTWConfig(count=0)


class TestSchedulerConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(kind="magic")

    def test_valid_kinds(self):
        for kind in ("rr", "gto", "ccws", "ta-ccws", "tcws"):
            SchedulerConfig(kind=kind)

    def test_weight_validated(self):
        with pytest.raises(ValueError):
            SchedulerConfig(tlb_miss_weight=0)


class TestTBCConfig:
    def test_modes(self):
        for mode in ("stack", "tbc", "tlb-tbc"):
            TBCConfig(mode=mode)
        with pytest.raises(ValueError):
            TBCConfig(mode="dynamic")

    def test_counter_bits_range(self):
        with pytest.raises(ValueError):
            TBCConfig(cpm_counter_bits=9)


class TestGPUConfig:
    def test_paper_methodology_defaults(self):
        config = GPUConfig()
        assert config.warps_per_core == 48
        assert config.warp_width == 32
        assert config.cache.l1_bytes == 32 * 1024
        assert config.cache.line_bytes == 128

    def test_page_shift_validated(self):
        with pytest.raises(ValueError):
            GPUConfig(page_shift=13)
        GPUConfig(page_shift=21)  # 2 MB pages allowed

    def test_with_helper(self):
        config = GPUConfig().with_(num_cores=2)
        assert config.num_cores == 2

    def test_describe_mentions_key_features(self):
        from repro.core import presets

        assert "no-TLB" in presets.no_tlb().describe()
        assert "ptw-sched" in presets.augmented_tlb().describe()
        assert "ideal" in presets.ideal_tlb().describe()
