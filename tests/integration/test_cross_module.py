"""Cross-module invariants checked on full small simulations."""

import pytest

from helpers import small_config, small_workload

from repro.core.config import PTWConfig, TLBConfig
from repro.core.simulator import Simulator


def run_sim(config, wl=None, form=None):
    wl = wl or small_workload()
    sim = Simulator(config, wl.build(config, form=form), wl.name)
    return sim, sim.run()


class TestAccountingInvariants:
    def test_tlb_lookups_equal_hits_plus_misses(self):
        _, result = run_sim(small_config())
        stats = result.stats
        assert stats.tlb_hits + stats.tlb_misses == stats.tlb_lookups

    def test_walks_bounded_by_misses(self):
        _, result = run_sim(small_config())
        assert result.stats.walks <= result.stats.tlb_misses

    def test_walk_refs_bounded_by_four_per_walk(self):
        _, result = run_sim(small_config())
        assert result.stats.walk_refs_issued <= 4 * result.stats.walks

    def test_scheduled_walker_never_issues_more_than_naive(self):
        wl = small_workload()
        cfg_naive = small_config()
        _, naive = run_sim(cfg_naive, wl)
        cfg_sched = small_config(
            tlb=TLBConfig(blocking=False, hit_under_miss=True,
                          cache_overlap=True),
            ptw=PTWConfig(count=1, scheduled=True),
        )
        _, sched = run_sim(cfg_sched, wl)
        assert (
            sched.stats.walk_refs_issued
            <= sched.stats.walk_refs_naive
        )

    def test_page_divergence_sum_consistent(self):
        _, result = run_sim(small_config())
        stats = result.stats
        assert stats.page_divergence_sum >= stats.memory_instructions
        assert (
            stats.page_divergence_sum
            <= stats.memory_instructions * stats.page_divergence_max
        )

    def test_tlb_lookups_match_page_divergence(self):
        _, result = run_sim(small_config())
        stats = result.stats
        assert stats.tlb_lookups == stats.page_divergence_sum


class TestWalkerConfigurations:
    @pytest.mark.parametrize("count", [1, 2, 4])
    def test_walker_pools_complete(self, count):
        config = small_config(ptw=PTWConfig(count=count))
        _, result = run_sim(config)
        assert result.stats.instructions == 8 * 20

    def test_pool_translations_match_page_table(self):
        config = small_config(ptw=PTWConfig(count=2))
        sim, _ = run_sim(config)
        for vpn, pfn in sim.frame_map.items():
            assert sim.page_table.translate_vpn(vpn) == pfn


class TestTBCInvariants:
    def test_all_thread_work_executes_in_every_mode(self):
        from repro.core.config import TBCConfig

        wl = small_workload()
        mems = {}
        for mode in ("stack", "tbc", "tlb-tbc"):
            config = small_config(tbc=TBCConfig(mode=mode))
            _, result = run_sim(config, wl, form="blocks")
            stats = result.stats
            # Lane-level memory work is identical across formation
            # modes; only its packaging into warps differs.
            mems[mode] = stats.coalesced_lines
        assert mems["stack"] > 0
        # TBC repacks threads; total unique line accesses may differ
        # slightly through intra-warp coalescing, but not wildly.
        assert abs(mems["tbc"] - mems["stack"]) / mems["stack"] < 0.5
