"""Integration tests asserting the paper's directional claims.

These run full six-workload-scale simulations on single workloads and
are the slowest tests in the suite (tens of seconds total).  Each test
pins one qualitative conclusion of the paper to the reproduction.
"""

import pytest

from repro.core import presets
from repro.core.simulator import Simulator
from repro.workloads.base import TIMING_MISS_SCALE
from repro.workloads.registry import get_workload

KW = dict(warmup_instructions=20)


def run(config, name, form=None):
    workload = get_workload(name)
    work = workload.build(config, form=form, miss_scale=TIMING_MISS_SCALE)
    return Simulator(config, work, name).run()


@pytest.fixture(scope="module")
def bfs_runs():
    return {
        "no_tlb": run(presets.no_tlb(**KW), "bfs"),
        "naive": run(presets.naive_tlb(ports=3, **KW), "bfs"),
        "augmented": run(presets.augmented_tlb(**KW), "bfs"),
        "ideal": run(presets.ideal_tlb(**KW), "bfs"),
    }


class TestSection4And6:
    def test_naive_tlbs_degrade_performance(self, bfs_runs):
        # Figure 2's headline.
        assert bfs_runs["naive"].cycles > bfs_runs["no_tlb"].cycles * 1.2

    def test_augmentation_recovers_most_loss(self, bfs_runs):
        assert bfs_runs["augmented"].cycles < bfs_runs["naive"].cycles / 2

    def test_augmented_close_to_ideal(self, bfs_runs):
        # Figure 10: within a few percent of the impractical ideal.
        assert bfs_runs["augmented"].cycles <= bfs_runs["ideal"].cycles * 1.15

    def test_tlb_misses_cost_more_than_l1_misses_unloaded(self):
        # Figure 4's structural claim: a walk makes 4 dependent
        # references where a data miss makes 1.
        from repro.mem.hierarchy import SharedMemory
        from repro.ptw.walker import PageTableWalker
        from repro.vm.page_table import PageTable

        table = PageTable()
        table.map_page(42)
        shared = SharedMemory(num_channels=1)
        walker = PageTableWalker(table, shared)
        walk = walker.walk(42, now=0)
        warm = walker.walk(42, now=walk.ready_time)  # all-L2 walk
        walk_latency = warm.ready_time - walk.ready_time
        data = shared.access_line(1 << 20, walk.ready_time)
        fill = shared.access_line(
            1 << 20, data.ready_time
        )  # L2-hit data access
        data_latency = fill.ready_time - data.ready_time
        assert walk_latency >= 2 * data_latency

    def test_one_augmented_walker_beats_eight_naive(self):
        eight = run(presets.multi_ptw_tlb(8, **KW), "mummergpu")
        one = run(presets.augmented_tlb(**KW), "mummergpu")
        assert one.cycles < eight.cycles


class TestSection7:
    @pytest.fixture(scope="class")
    def ccws_runs(self):
        return {
            "rr": run(presets.no_tlb(**KW), "memcached"),
            "ccws": run(presets.with_ccws(presets.no_tlb(**KW)), "memcached"),
            "ccws_naive": run(
                presets.with_ccws(presets.naive_tlb(ports=4, **KW)), "memcached"
            ),
            "ccws_aug": run(
                presets.with_ccws(presets.augmented_tlb(**KW)), "memcached"
            ),
            "tcws": run(presets.with_tcws(presets.augmented_tlb(**KW)), "memcached"),
        }

    def test_ccws_improves_baseline(self, ccws_runs):
        assert ccws_runs["ccws"].cycles < ccws_runs["rr"].cycles

    def test_naive_tlbs_erase_ccws_gain(self, ccws_runs):
        assert ccws_runs["ccws_naive"].cycles > ccws_runs["ccws"].cycles * 1.5

    def test_augmented_recovers_much_of_ccws(self, ccws_runs):
        assert ccws_runs["ccws_aug"].cycles < ccws_runs["ccws_naive"].cycles

    def test_tcws_competitive_with_ccws_aug(self, ccws_runs):
        assert ccws_runs["tcws"].cycles <= ccws_runs["ccws_aug"].cycles * 1.3


class TestSection8:
    @pytest.fixture(scope="class")
    def tbc_runs(self):
        return {
            "stack": run(presets.no_tlb(warmup_instructions=0), "bfs", form="blocks"),
            "tbc": run(
                presets.with_tbc(presets.no_tlb(warmup_instructions=0), "tbc"),
                "bfs",
                form="blocks",
            ),
            "tbc_naive": run(
                presets.with_tbc(
                    presets.naive_tlb(ports=4, warmup_instructions=0), "tbc"
                ),
                "bfs",
                form="blocks",
            ),
            "tlb_tbc": run(
                presets.with_tbc(
                    presets.augmented_tlb(warmup_instructions=0), "tlb-tbc"
                ),
                "bfs",
                form="blocks",
            ),
        }

    def test_tbc_improves_divergent_workload(self, tbc_runs):
        assert tbc_runs["tbc"].cycles < tbc_runs["stack"].cycles

    def test_tbc_amplifies_page_divergence(self, tbc_runs):
        assert (
            tbc_runs["tbc"].stats.average_page_divergence
            > tbc_runs["stack"].stats.average_page_divergence * 1.3
        )

    def test_naive_tlbs_erase_tbc_gain(self, tbc_runs):
        assert tbc_runs["tbc_naive"].cycles > tbc_runs["tbc"].cycles * 1.2

    def test_cpm_removes_divergence_amplification(self, tbc_runs):
        assert (
            tbc_runs["tlb_tbc"].stats.average_page_divergence
            < tbc_runs["tbc"].stats.average_page_divergence
        )


class TestSection9:
    def test_large_pages_relieve_regular_workloads(self):
        small = run(presets.naive_tlb(ports=4, **KW), "kmeans")
        large = run(
            presets.naive_tlb(ports=4, page_shift=21, **KW), "kmeans"
        )
        assert large.stats.tlb_miss_rate < small.stats.tlb_miss_rate / 2

    def test_mummer_keeps_divergence_under_large_pages(self):
        # Characterization stream (Section 9 reports trace properties).
        config = presets.naive_tlb(ports=4, page_shift=21, **KW)
        workload = get_workload("mummergpu")
        result = Simulator(
            config, workload.build(config, miss_scale=1.0), "mummergpu"
        ).run()
        assert result.stats.average_page_divergence > 3
