"""ServeApp end to end: submit, dedup, drain, restart, degrade.

Most tests drive the app object directly with an injected executor (no
sockets, no real simulations) so they run in milliseconds; one test
goes through the real HTTP stack with a real tiny simulation to pin
the full path.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.prof.registry import MetricsRegistry
from repro.serve.app import ServeApp, ServeConfig, make_server
from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.journal import JobJournal

FIG_REQUEST = {"kind": "figure", "params": {"name": "fig02"}}


def _request(num_cores=1):
    return {
        "kind": "simulate",
        "params": {
            "config": {
                "preset": "naive",
                "overrides": {
                    "num_cores": num_cores,
                    "warps_per_core": 8,
                    "warp_width": 8,
                },
            },
            "workload": "bfs",
        },
    }


def _app(tmp_path, run_job, **overrides):
    defaults = dict(
        journal=str(tmp_path / "journal.jsonl"),
        tick_s=0.005,
        slots=2,
    )
    defaults.update(overrides)
    return ServeApp(
        ServeConfig(**defaults),
        registry=MetricsRegistry(),
        run_job=run_job,
    )


def _wait_terminal(app, job_id, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        view = app.job_view(job_id)
        if view["state"] in ("done", "failed"):
            return view
        time.sleep(0.005)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestSubmit:
    def test_submit_runs_to_done(self, tmp_path):
        app = _app(tmp_path, lambda job: {"answer": 42})
        app.start()
        try:
            status, body = app.submit(_request())
            assert status == 201
            view = _wait_terminal(app, body["id"])
            assert view["state"] == "done"
            assert view["result"] == {"answer": 42}
            assert view["attempts"] == 1
        finally:
            app.close()

    def test_duplicate_submit_returns_the_existing_job(self, tmp_path):
        calls = []

        def run(job):
            calls.append(job.id)
            return {"ok": True}

        app = _app(tmp_path, run)
        app.start()
        try:
            status1, body1 = app.submit(_request())
            _wait_terminal(app, body1["id"])
            status2, body2 = app.submit(_request())
            assert (status1, status2) == (201, 200)
            assert body1["id"] == body2["id"]
            assert calls == [body1["id"]]  # executed exactly once
        finally:
            app.close()

    def test_invalid_request_is_400_and_never_journaled(self, tmp_path):
        app = _app(tmp_path, lambda job: None)
        app.start()
        try:
            status, body = app.submit({"kind": "simulate", "params": {}})
            assert status == 400 and "error" in body
        finally:
            app.close()
        assert JobJournal(app.config.journal).replayed.jobs == {}

    def test_high_water_sheds_with_429(self, tmp_path):
        gate = threading.Event()
        app = _app(
            tmp_path, lambda job: gate.wait(10) and {}, high_water=2, slots=1
        )
        app.start()
        try:
            statuses = [app.submit(_request(n))[0] for n in range(1, 5)]
            assert statuses == [201, 201, 429, 429]
        finally:
            gate.set()
            app.close()


class TestFailure:
    def test_structured_error_fails_terminally(self, tmp_path):
        def run(job):
            raise ValueError("the machine caught fire")

        app = _app(tmp_path, run)
        app.start()
        try:
            _status, body = app.submit(_request())
            view = _wait_terminal(app, body["id"])
            assert view["state"] == "failed"
            assert view["error"]["type"] == "ValueError"
            assert "fire" in view["error"]["message"]
        finally:
            app.close()
        counts = JobJournal.terminal_counts(app.config.journal)
        assert counts == {body["id"]: 1}


class TestLeaseExpiry:
    def test_wedged_executor_exhausts_attempts_and_fails(self, tmp_path):
        release = threading.Event()
        app = _app(
            tmp_path,
            lambda job: release.wait(30),
            lease_ttl_s=0.03,
            max_attempts=2,
        )
        app.start()
        try:
            _status, body = app.submit(_request())
            view = _wait_terminal(app, body["id"])
            assert view["state"] == "failed"
            assert view["error"]["type"] == "LeaseExpired"
            assert view["attempts"] == 2
        finally:
            release.set()
            app.close()
        assert JobJournal.terminal_counts(app.config.journal) == {
            body["id"]: 1
        }

    def test_expiry_requeues_and_the_retry_wins(self, tmp_path):
        release = threading.Event()
        attempts = []

        def run(job):
            attempts.append(len(attempts) + 1)
            if len(attempts) == 1:
                release.wait(30)  # wedge attempt 1 past the TTL
                return {"from": "wedged"}
            return {"from": "retry"}

        app = _app(tmp_path, run, lease_ttl_s=0.03, max_attempts=3)
        app.start()
        try:
            _status, body = app.submit(_request())
            view = _wait_terminal(app, body["id"])
            release.set()  # the late wedged result must be fenced off
            time.sleep(0.05)
            final = app.job_view(body["id"])
            assert view["state"] == "done"
            assert final["result"] == {"from": "retry"}
        finally:
            release.set()
            app.close()
        assert JobJournal.terminal_counts(app.config.journal) == {
            body["id"]: 1
        }


class TestDrain:
    def test_drain_requeues_in_flight_and_restart_finishes(self, tmp_path):
        # Lease held past the drain grace: the job must be re-queued
        # into the journal and the next incarnation must finish it —
        # terminal exactly once across both lifetimes.
        wedge = threading.Event()
        app = _app(tmp_path, lambda job: wedge.wait(30) and {}, slots=1)
        app.start()
        _status, body = app.submit(_request())
        deadline = time.monotonic() + 10
        while app.job_view(body["id"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        requeued = app.drain(grace_s=0.05)
        wedge.set()
        assert requeued == 1
        replayed = JobJournal(app.config.journal).replayed
        assert replayed.jobs[body["id"]].state == "queued"

        app2 = _app(tmp_path, lambda job: {"finished": "second-life"})
        app2.start()
        try:
            view = _wait_terminal(app2, body["id"])
            assert view["state"] == "done"
            assert view["result"] == {"finished": "second-life"}
        finally:
            app2.close()
        assert JobJournal.terminal_counts(app2.config.journal) == {
            body["id"]: 1
        }

    def test_drain_refuses_new_submissions(self, tmp_path):
        app = _app(tmp_path, lambda job: {})
        app.start()
        app.begin_drain()
        status, body = app.submit(_request())
        assert status == 503
        app.drain(grace_s=0.01)

    def test_drain_with_idle_queue_requeues_nothing(self, tmp_path):
        app = _app(tmp_path, lambda job: {"ok": 1})
        app.start()
        _status, body = app.submit(_request())
        _wait_terminal(app, body["id"])
        assert app.drain(grace_s=0.5) == 0


class TestRestartReplay:
    def test_done_jobs_are_served_without_re_execution(self, tmp_path):
        app = _app(tmp_path, lambda job: {"cycles": 1234})
        app.start()
        _status, body = app.submit(_request())
        done = _wait_terminal(app, body["id"])
        app.drain(grace_s=1.0)

        def boom(job):
            raise AssertionError("terminal job was re-executed on replay")

        app2 = _app(tmp_path, boom)
        app2.start()
        try:
            view = app2.job_view(body["id"])
            assert view["state"] == "done"
            assert json.dumps(view["result"], sort_keys=True) == json.dumps(
                done["result"], sort_keys=True
            )
            # Dedup also holds across the restart.
            status, dup = app2.submit(_request())
            assert status == 200 and dup["id"] == body["id"]
            time.sleep(0.05)  # give a buggy dispatcher time to misfire
        finally:
            app2.close()

    def test_interrupted_job_is_recovered_on_restart(self, tmp_path):
        # Simulate a SIGKILL mid-lease: journal a submit + lease with
        # no terminal event, then boot an app on that journal.
        journal_path = str(tmp_path / "journal.jsonl")
        from repro.serve.jobs import Job, normalize_request

        job = Job.from_request(normalize_request(_request()))
        with JobJournal(journal_path) as journal:
            journal.record_submit(job)
            journal.record_lease(job.id, 1, expires_unix=0.0)
        app = _app(tmp_path, lambda j: {"recovered": True})
        app.start()
        try:
            view = _wait_terminal(app, job.id)
            assert view["state"] == "done"
            assert view["result"] == {"recovered": True}
        finally:
            app.close()
        assert JobJournal.terminal_counts(journal_path) == {job.id: 1}


class TestReadyz:
    def test_flips_to_degraded_under_slot_shrink(self, tmp_path):
        app = _app(tmp_path, lambda job: {}, slots=3)
        app.start()
        try:
            code, body = app.readyz_view()
            assert (code, body["state"]) == (200, "ready")
            # Two consecutive infrastructure failures shrink one slot.
            app.health.on_crash()
            app.health.on_crash()
            code, body = app.readyz_view()
            assert code == 200  # degraded is still routable
            assert body["state"] == "degraded"
            assert body["slots"] == 2
            # A success resets the streak; shrink floor is 1 slot.
            for _ in range(10):
                app.health.on_crash()
            code, body = app.readyz_view()
            assert body["slots"] == 1
            assert body["state"] == "degraded"
        finally:
            app.close()

    def test_draining_is_not_ready(self, tmp_path):
        app = _app(tmp_path, lambda job: {})
        app.start()
        app.begin_drain()
        code, body = app.readyz_view()
        assert code == 503 and body["state"] == "draining"
        app.drain(grace_s=0.01)


class TestHTTP:
    def test_full_stack_with_a_real_simulation(self, tmp_path):
        app = ServeApp(
            ServeConfig(
                journal=str(tmp_path / "journal.jsonl"),
                cache=str(tmp_path / "cache"),
                tick_s=0.005,
            ),
            registry=MetricsRegistry(),
        )
        app.start()
        httpd = make_server(app)
        thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        client = ServeClient(
            f"http://127.0.0.1:{httpd.server_address[1]}"
        )
        try:
            assert client.healthz() == {"status": "alive"}
            assert client.readyz()["ready"] is True
            request = _request()
            job = client.submit(request["kind"], request["params"])
            done = client.wait(job["id"], timeout_s=60)
            assert done["state"] == "done"
            assert done["result"]["workload"] == "bfs"
            assert done["result"]["cycles"] > 0
            with pytest.raises(ServeHTTPError) as excinfo:
                client.job("jdoesnotexist")
            assert excinfo.value.status == 404
            metrics = client.metrics_text()
            assert 'serve_jobs_terminal_total{state="done"} 1' in metrics
            assert "serve_http_requests_total" in metrics
            assert [j["id"] for j in client.jobs()] == [job["id"]]
        finally:
            httpd.shutdown()
            httpd.server_close()
            app.drain(grace_s=1.0)


class TestDashboard:
    def _blocked_app(self, tmp_path):
        release = threading.Event()

        def run_job(job):
            release.wait(timeout=30)
            return {"ok": True}

        app = _app(tmp_path, run_job)
        return app, release

    def test_view_reflects_queue_and_leases(self, tmp_path):
        app, release = self._blocked_app(tmp_path)
        app.start()
        try:
            for cores in (1, 2, 3):
                code, _ = app.submit(_request(num_cores=cores))
                assert code == 201
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                view = app.dashboard_view()
                if view["in_flight"] == 2:
                    break
                time.sleep(0.005)
            assert view["in_flight"] == 2  # both slots busy
            assert view["queue_depth"] == 1
            assert view["jobs"]["running"] == 2
            assert len(view["leases"]) == 2
            lease = view["leases"][0]
            assert lease["kind"] == "simulate"
            assert lease["attempt"] == 1
            assert lease["expires_in_s"] > 0
        finally:
            release.set()
            app.drain(grace_s=2.0)

    def test_view_engine_throughput_and_sweep_eta(self, tmp_path):
        app = _app(tmp_path, lambda job: {"ok": True})
        reg = app.registry
        reg.counter("sim_cycles").inc(5000, engine="event")
        reg.counter("sim_cycles").inc(5000, engine="cycle")
        reg.counter("sim_instructions").inc(100, engine="event")
        reg.counter("sweep_cells_total").inc(3, source="cache")
        reg.counter("sweep_cells_total").inc(2, source="simulated")
        reg.gauge("sweep_in_flight").set(4)
        reg.histogram("sweep_cell_seconds").observe(2.0)
        view = app.dashboard_view()
        engines = {row["engine"]: row for row in view["engines"]}
        assert set(engines) == {"event", "cycle"}
        assert engines["event"]["cycles"] == 5000
        assert engines["event"]["instructions"] == 100
        assert view["cells"]["reused"] == 3
        assert view["cells"]["completed"] == 5
        assert view["sweep"]["in_flight_cells"] == 4
        assert view["sweep"]["eta_s"] == pytest.approx(8.0)

    def test_html_renders_and_escapes(self, tmp_path):
        app = _app(tmp_path, lambda job: {"ok": True})
        app.registry.counter("sim_cycles").inc(
            10, engine='<script>"x"</script>'
        )
        html = app.dashboard_html(refresh_s=3)
        assert "<title>repro.serve dashboard</title>" in html
        assert 'http-equiv="refresh" content="3"' in html
        assert "<script>" not in html  # label is escaped
        assert "&lt;script&gt;" in html

    def test_http_route(self, tmp_path):
        import urllib.request

        app = _app(tmp_path, lambda job: {"ok": True})
        app.start()
        httpd = make_server(app)
        thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            url = (
                f"http://127.0.0.1:{httpd.server_address[1]}/dashboard"
            )
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/html"
                )
                body = response.read().decode("utf-8")
            assert "repro.serve" in body
            assert "Leases" in body
        finally:
            httpd.shutdown()
            httpd.server_close()
            app.drain(grace_s=1.0)


class TestMetricsEngineLabel:
    def test_sim_series_carry_engine_label(self, tmp_path):
        """A production app (default registry) exposes the mirrored
        sim_* counters on /metrics with an engine label attached."""
        from repro.prof.registry import REGISTRY

        app = ServeApp(
            ServeConfig(
                journal=str(tmp_path / "journal.jsonl"), tick_s=0.005
            )
        )
        assert app.registry is REGISTRY
        app.start()
        try:
            before = REGISTRY.counter("sim_cycles").value(engine="event")
            code, body = app.submit(_request())
            assert code == 201
            done = _wait_terminal(app, body["id"])
            assert done["state"] == "done"
            after = REGISTRY.counter("sim_cycles").value(engine="event")
            assert after > before
            assert 'sim_cycles{engine="event"}' in app.metrics_text()
        finally:
            app.drain(grace_s=1.0)
