"""Journal replay edge cases: torn lines, duplicates, interruptions."""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.jobs import Job, normalize_request
from repro.serve.journal import JobJournal


def _job(workload="bfs", config="naive") -> Job:
    return Job.from_request(
        normalize_request(
            {
                "kind": "simulate",
                "params": {"config": config, "workload": workload},
            }
        )
    )


def test_full_lifecycle_replays_to_done(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    with JobJournal(path) as journal:
        journal.record_submit(job)
        journal.record_lease(job.id, 1, expires_unix=0.0)
        journal.record_done(job.id, {"cycles": 42})
    replayed = JobJournal(path).replayed
    restored = replayed.jobs[job.id]
    assert restored.state == "done"
    assert restored.result == {"cycles": 42}
    assert replayed.interrupted == []
    assert replayed.terminal_counts == {job.id: 1}


def test_leased_but_not_terminal_is_interrupted(tmp_path):
    # The crash-recovery contract: a job mid-lease when the process
    # died must come back for re-dispatch, not be lost.
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    with JobJournal(path) as journal:
        journal.record_submit(job)
        journal.record_lease(job.id, 1, expires_unix=0.0)
    replayed = JobJournal(path).replayed
    assert replayed.interrupted == [job.id]
    assert replayed.jobs[job.id].attempts == 1


def test_torn_final_line_is_dropped_with_a_warning(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    with JobJournal(path) as journal:
        journal.record_submit(job)
        journal.record_done(job.id, {"cycles": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"ev": "submit", "job": {"id": "torn-mid-app')
    with pytest.warns(RuntimeWarning, match="truncated"):
        replayed = JobJournal(path).replayed
    assert replayed.dropped_lines == 1
    assert replayed.jobs[job.id].state == "done"
    assert "torn-mid-app" not in replayed.jobs


def test_append_after_torn_line_starts_clean(tmp_path):
    # A restarted server appends to the torn journal; its new events
    # must parse on the *next* replay even though a partial line
    # precedes them (the open in append mode starts a fresh line).
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    with JobJournal(path) as journal:
        journal.record_submit(job)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"ev": "lease", "id": "' + job.id)  # torn, no \n
    with pytest.warns(RuntimeWarning, match="truncated"):
        journal = JobJournal(path)
    with journal:
        journal.record_done(job.id, {"cycles": 2})
    with pytest.warns(RuntimeWarning, match="truncated"):
        replayed = JobJournal(path).replayed
    assert replayed.jobs[job.id].state == "done"
    assert replayed.terminal_counts == {job.id: 1}


def test_duplicate_submit_replays_to_one_job(tmp_path):
    # A client retrying across a lost response journals the same
    # content-derived id twice; replay must keep exactly one job.
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    with JobJournal(path) as journal:
        journal.record_submit(job)
        journal.record_submit(job)
        journal.record_done(job.id, {"cycles": 7})
    replayed = JobJournal(path).replayed
    assert len(replayed.jobs) == 1
    assert replayed.duplicate_submits == 1
    assert replayed.jobs[job.id].state == "done"
    assert replayed.terminal_counts == {job.id: 1}


def test_requeue_then_done_counts_terminal_once(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    with JobJournal(path) as journal:
        journal.record_submit(job)
        journal.record_lease(job.id, 1, expires_unix=0.0)
        journal.record_requeue(job.id, 1, reason="lease-expired", delay_s=0.1)
        journal.record_lease(job.id, 2, expires_unix=0.0)
        journal.record_done(job.id, {"cycles": 9})
    counts = JobJournal.terminal_counts(path)
    assert counts == {job.id: 1}


def test_failed_job_replays_with_structured_error(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    with JobJournal(path) as journal:
        journal.record_submit(job)
        journal.record_lease(job.id, 1, expires_unix=0.0)
        journal.record_fail(job.id, "PTWError", "walk failed", 1)
    restored = JobJournal(path).replayed.jobs[job.id]
    assert restored.state == "failed"
    assert restored.error["type"] == "PTWError"
    assert restored.error["attempts"] == 1


def test_orphaned_event_is_ignored(tmp_path):
    # A done/lease line whose submit was the torn line must not crash
    # replay (the job is simply unknown until resubmitted).
    path = str(tmp_path / "journal.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"ev": "done", "id": "jdeadbeef", "result": 1}) + "\n"
        )
    replayed = JobJournal(path).replayed
    assert replayed.jobs == {}
    assert replayed.terminal_counts == {}


def test_every_append_is_flushed_to_disk(tmp_path):
    # The WAL property: the line is on disk before the call returns,
    # visible to an independent reader with the writer still open.
    path = str(tmp_path / "journal.jsonl")
    job = _job()
    journal = JobJournal(path)
    journal.record_submit(job)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    assert len(lines) == 1 and lines[0].endswith("\n")
    assert json.loads(lines[0])["ev"] == "submit"
    journal.close()


def test_journal_creates_parent_directory(tmp_path):
    path = str(tmp_path / "nested" / "dir" / "journal.jsonl")
    with JobJournal(path) as journal:
        journal.record_submit(_job())
    assert os.path.exists(path)
