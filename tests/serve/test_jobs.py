"""Request normalization: validation, canonical form, content ids."""

from __future__ import annotations

import pytest

from repro.serve.jobs import (
    Job,
    RequestError,
    job_id_for,
    normalize_request,
)


def _simulate(config="naive", workload="bfs", **extra):
    params = {"config": config, "workload": workload}
    params.update(extra)
    return {"kind": "simulate", "params": params}


class TestValidation:
    @pytest.mark.parametrize(
        "body",
        [
            None,
            [],
            {},
            {"kind": "simulate"},
            {"kind": "teleport", "params": {}},
            {"kind": "simulate", "params": {}, "bogus": 1},
            {"kind": "simulate", "params": {}, "deadline_s": -1},
        ],
    )
    def test_malformed_envelope_is_a_request_error(self, body):
        with pytest.raises(RequestError):
            normalize_request(body)

    def test_unknown_workload(self):
        with pytest.raises(RequestError, match="nosuchthing"):
            normalize_request(_simulate(workload="nosuchthing"))

    def test_unknown_preset(self):
        with pytest.raises(RequestError, match="warp9"):
            normalize_request(_simulate(config="warp9"))

    def test_unknown_override_field(self):
        with pytest.raises(RequestError, match="override"):
            normalize_request(
                _simulate(
                    config={"preset": "naive", "overrides": {"nope": 1}}
                )
            )

    def test_nested_override_rejected(self):
        with pytest.raises(RequestError, match="scalar"):
            normalize_request(
                _simulate(
                    config={"preset": "naive", "overrides": {"tlb": {}}}
                )
            )

    def test_unknown_figure(self):
        with pytest.raises(RequestError, match="fig99"):
            normalize_request(
                {"kind": "figure", "params": {"name": "fig99"}}
            )

    def test_sweep_baseline_must_name_a_label(self):
        with pytest.raises(RequestError, match="baseline"):
            normalize_request(
                {
                    "kind": "sweep",
                    "params": {
                        "configs": {"a": "naive"},
                        "baseline": "b",
                    },
                }
            )

    def test_bad_miss_scale(self):
        with pytest.raises(RequestError, match="miss_scale"):
            normalize_request(_simulate(miss_scale=0))

    def test_bad_form(self):
        with pytest.raises(RequestError, match="form"):
            normalize_request(_simulate(form="spiral"))


class TestContentIds:
    def test_spelling_differences_collapse_to_one_job(self):
        # Alias name, explicit default override, key order — same id.
        a = normalize_request(_simulate(config="no_tlb"))
        b = normalize_request(_simulate(config="baseline"))
        c = normalize_request(
            _simulate(config={"preset": "no_tlb", "overrides": {}})
        )
        assert job_id_for(a) == job_id_for(b) == job_id_for(c)

    def test_different_machines_are_different_jobs(self):
        a = normalize_request(_simulate(config="naive"))
        b = normalize_request(
            _simulate(config={"preset": "naive", "overrides": {"num_cores": 2}})
        )
        assert job_id_for(a) != job_id_for(b)

    def test_sweep_config_order_is_canonical(self):
        # The journal stores events with sorted keys; normalization must
        # produce the same label order a replay will, or recovered runs
        # would reorder their rows.
        ab = normalize_request(
            {"kind": "sweep", "params": {"configs": {"a": "naive", "b": "ideal"}}}
        )
        ba = normalize_request(
            {"kind": "sweep", "params": {"configs": {"b": "ideal", "a": "naive"}}}
        )
        assert list(ab["params"]["configs"]) == ["a", "b"]
        assert list(ba["params"]["configs"]) == ["a", "b"]
        assert job_id_for(ab) == job_id_for(ba)

    def test_config_is_embedded_canonically(self):
        normalized = normalize_request(_simulate(config="naive"))
        config = normalized["params"]["config"]
        assert isinstance(config, dict) and "tlb" in config


class TestJobRoundTrip:
    def test_journal_dict_round_trips(self):
        job = Job.from_request(
            normalize_request(_simulate()), max_attempts=5
        )
        restored = Job.from_journal_dict(job.journal_dict())
        assert restored.id == job.id
        assert restored.kind == job.kind
        assert restored.params == job.params
        assert restored.max_attempts == 5
        assert restored.state == "queued"

    def test_not_before_is_never_persisted(self):
        job = Job.from_request(normalize_request(_simulate()))
        job.not_before = 123.0
        assert "not_before" not in job.journal_dict()
        assert Job.from_journal_dict(job.journal_dict()).not_before == 0.0
