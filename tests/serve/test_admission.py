"""Admission decisions and the /readyz state machine."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController, Readiness


class TestAdmission:
    def test_admits_below_high_water(self):
        controller = AdmissionController(high_water=3)
        verdict = controller.decide(
            queue_depth=2, draining=False, duplicate=False
        )
        assert verdict.accepted and verdict.http_status == 201

    def test_sheds_at_high_water_with_retry_hint(self):
        controller = AdmissionController(high_water=3, retry_after_s=5.0)
        verdict = controller.decide(
            queue_depth=3, draining=False, duplicate=False
        )
        assert not verdict.accepted
        assert verdict.http_status == 429
        assert verdict.retry_after_s == 5.0
        assert controller.rejected_busy == 1

    def test_duplicates_bypass_the_depth_check(self):
        # Refusing a dedup hit would punish exactly the clients the
        # content-derived ids serve.
        controller = AdmissionController(high_water=1)
        verdict = controller.decide(
            queue_depth=10, draining=False, duplicate=True
        )
        assert verdict.accepted and verdict.http_status == 200

    def test_draining_refuses_everything(self):
        controller = AdmissionController(high_water=100)
        for duplicate in (False, True):
            verdict = controller.decide(
                queue_depth=0, draining=True, duplicate=duplicate
            )
            assert not verdict.accepted
            assert verdict.http_status == 503
        assert controller.rejected_draining == 2

    def test_high_water_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(high_water=0)


class TestReadiness:
    def test_starting_until_started(self):
        readiness = Readiness(configured_slots=4)
        assert readiness.state == Readiness.STARTING
        assert readiness.http_status == 503
        readiness.started = True
        assert readiness.state == Readiness.READY
        assert readiness.http_status == 200

    def test_slot_shrink_flips_to_degraded_but_stays_ready(self):
        # Serial fallback is a limp, not an outage: /readyz keeps
        # returning 200 so the replica stays routable, with the
        # degradation spelled out in the body.
        readiness = Readiness(configured_slots=4)
        readiness.started = True
        readiness.current_slots = 1
        assert readiness.state == Readiness.DEGRADED
        assert readiness.http_status == 200
        assert "degraded" in readiness.describe()["note"]

    def test_slot_recovery_flips_back_to_ready(self):
        readiness = Readiness(configured_slots=4)
        readiness.started = True
        readiness.current_slots = 1
        assert readiness.state == Readiness.DEGRADED
        readiness.current_slots = 4
        assert readiness.state == Readiness.READY
        assert "note" not in readiness.describe()

    def test_draining_wins_over_everything(self):
        readiness = Readiness(configured_slots=4)
        readiness.started = True
        readiness.current_slots = 1
        readiness.draining = True
        assert readiness.state == Readiness.DRAINING
        assert readiness.http_status == 503

    def test_describe_carries_extras(self):
        readiness = Readiness(configured_slots=2)
        readiness.started = True
        body = readiness.describe(queue_depth=7)
        assert body["queue_depth"] == 7
        assert body["ready"] is True
