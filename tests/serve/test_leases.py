"""Lease table semantics: expiry, fencing, re-queue backoff."""

from __future__ import annotations

from repro.serve.leases import LeaseTable


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _table(ttl=10.0):
    clock = FakeClock()
    return LeaseTable(ttl=ttl, clock=clock), clock


def test_grant_release_round_trip():
    table, _clock = _table()
    lease = table.grant("j1", attempt=1)
    assert table.is_current(lease)
    assert table.live_count == 1
    assert table.release(lease) is True
    assert table.live_count == 0


def test_lease_expires_after_ttl():
    table, clock = _table(ttl=10.0)
    lease = table.grant("j1", attempt=1)
    assert table.expired() == []
    clock.advance(10.0)
    assert table.expired() == [lease]


def test_renew_extends_a_current_lease():
    table, clock = _table(ttl=10.0)
    lease = table.grant("j1", attempt=1)
    clock.advance(9.0)
    renewed = table.renew(lease)
    assert renewed is not None
    clock.advance(9.0)  # 18s after grant, 9s after renew
    assert table.expired() == []


def test_stale_lease_is_fenced_off():
    # The exactly-once mechanism: an executor whose lease expired and
    # whose job was re-granted must not be able to commit.
    table, _clock = _table()
    stale = table.grant("j1", attempt=1)
    table.revoke("j1")
    fresh = table.grant("j1", attempt=2)
    assert not table.is_current(stale)
    assert table.release(stale) is False
    assert table.renew(stale) is None
    assert table.is_current(fresh)
    assert table.release(fresh) is True


def test_requeue_delay_grows_per_job():
    table, _clock = _table()
    first = table.requeue_delay("j1")
    second = table.requeue_delay("j1")
    third = table.requeue_delay("j1")
    assert 0 < first <= 2.0
    # Decorrelated jitter is random but monotone in expectation from a
    # small base; the implementation caps every delay.
    assert all(0 < d <= 2.0 for d in (second, third))
    assert table.expired_total == 3


def test_requeue_delay_is_deterministic_across_tables():
    # Seeded per job id (not via process-salted hash()): two tables —
    # two server incarnations — see the same sequence.
    a, _ = _table()
    b, _ = _table()
    assert [a.requeue_delay("j1") for _ in range(3)] == [
        b.requeue_delay("j1") for _ in range(3)
    ]


def test_requeue_delays_differ_between_jobs():
    table, _clock = _table()
    assert table.requeue_delay("j1") != table.requeue_delay("j2")


def test_revoke_keeps_backoff_growing_but_release_resets_it():
    # The dispatcher revokes before asking for the next delay, so the
    # streak must survive revocation; a successful commit ends it.
    table, _clock = _table()
    first = table.requeue_delay("j1")
    table.revoke("j1")
    second = table.requeue_delay("j1")
    assert second != first  # the sequence advanced across the revoke
    lease = table.grant("j1", attempt=3)
    assert table.release(lease) is True
    assert table.requeue_delay("j1") == first  # streak reset on commit
