"""Journal compaction: size-triggered rotation keeps replay exact.

The write-ahead job journal grows with every lease/requeue/terminal
transition; compaction rewrites the *live* state to a fresh segment
atomically once the file outgrows ``max_bytes``.  These tests pin the
contract: replay after compaction reconstructs every job identically
(state, attempts, results, terminal counts), a torn tail across the
rotation boundary is dropped exactly like one on an uncompacted file,
and a crash mid-compaction leaves the original segment authoritative.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.serve.jobs import Job, normalize_request
from repro.serve.journal import JobJournal


def _job(n: int) -> Job:
    request = normalize_request(
        {
            "kind": "simulate",
            "params": {
                "config": {"preset": "naive", "overrides": {"num_cores": n}},
                "workload": "bfs",
            },
        }
    )
    return Job.from_request(request)


def _snapshot(path: str):
    """Replay → comparable {id: (state, attempts, result, error)}."""
    state = JobJournal._load(path)
    return {
        job_id: (job.state, job.attempts, job.result, job.error)
        for job_id, job in state.jobs.items()
    }


class TestCompaction:
    def test_compaction_shrinks_and_preserves_replay(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        # Live state (3 submits with canonical configs + transitions)
        # is ~5 KB; the bound must sit above it or every append after
        # the first crossing re-compacts without ever shrinking below.
        max_bytes = 16384
        journal = JobJournal(path, max_bytes=max_bytes)
        done, failed, queued = _job(1), _job(2), _job(3)
        for job in (done, failed, queued):
            journal.record_submit(job)
        journal.record_lease(done.id, 1, expires_unix=0.0)
        journal.record_done(done.id, {"answer": 42}, elapsed_s=0.5)
        journal.record_lease(failed.id, 1, expires_unix=0.0)
        journal.record_fail(failed.id, "PTWError", "poisoned", 1)
        # Churn: enough expired-lease requeues to cross max_bytes.
        attempt = 0
        while journal.compactions == 0:
            attempt += 1
            journal.record_lease(queued.id, attempt, expires_unix=0.0)
            journal.record_requeue(queued.id, attempt, reason="lease-expired")
            assert attempt < 1000, "compaction never triggered"
        before = _snapshot(path)
        journal.close()

        assert os.path.getsize(path) < max_bytes
        assert _snapshot(path) == before
        state = JobJournal._load(path)
        assert state.jobs[done.id].result == {"answer": 42}
        assert state.jobs[queued.id].attempts == attempt
        # Exactly-once still pins across the rotation.
        assert JobJournal.terminal_counts(path) == {done.id: 1, failed.id: 1}

    def test_running_job_still_replays_as_interrupted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path, max_bytes=1)  # compact on every append
        job = _job(1)
        journal.record_submit(job)
        journal.record_lease(job.id, 1, expires_unix=0.0)
        assert journal.compactions >= 1
        journal.close()
        replayed = JobJournal(path)
        assert replayed.replayed.interrupted == [job.id]
        assert replayed.replayed.jobs[job.id].attempts == 1
        replayed.close()

    def test_appends_after_rotation_stay_parseable(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path, max_bytes=1)
        first, second = _job(1), _job(2)
        journal.record_submit(first)   # rotates immediately
        journal.record_submit(second)  # appended to the fresh segment
        journal.record_done(second.id, {"ok": True})
        journal.close()
        snapshot = _snapshot(path)
        assert set(snapshot) == {first.id, second.id}
        assert snapshot[second.id][0] == "done"


class TestTornTailAcrossRotation:
    def test_torn_tail_after_compaction_is_dropped_with_warning(
        self, tmp_path
    ):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path, max_bytes=1)
        job = _job(1)
        journal.record_submit(job)
        journal.record_done(job.id, {"answer": 1})
        assert journal.compactions >= 1
        journal.close()
        # Crash mid-append on the *compacted* segment.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ev": "fail", "id": "torn-mid')
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reopened = JobJournal(path)
        assert any("truncated" in str(w.message) for w in caught)
        assert reopened.replayed.jobs[job.id].state == "done"
        assert reopened.replayed.terminal_counts == {job.id: 1}
        # The repaired tail must keep later appends parseable.
        reopened.record_requeue(job.id, 1, reason="recovered")
        reopened.close()
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            assert JobJournal.terminal_counts(path) == {job.id: 1}

    def test_torn_line_present_at_compaction_time_is_purged(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first, second = _job(1), _job(2)
        journal = JobJournal(path)
        journal.record_submit(first)
        journal.record_done(first.id, {"answer": 1})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ev": "submit", "job": {"id": "to')
        # Reopen with a bound tight enough that the next append
        # compacts across the torn line.
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            journal = JobJournal(path, max_bytes=1)
            journal.record_submit(second)
        assert journal.compactions >= 1
        journal.close()
        # The compacted segment is clean: replay emits no warnings.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error")
            snapshot = _snapshot(path)
        assert snapshot[first.id][0] == "done"
        assert snapshot[second.id][0] == "queued"
        assert not caught


class TestCrashMidCompaction:
    def test_stale_tmp_segment_is_discarded_at_open(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        job = _job(1)
        journal = JobJournal(path)
        journal.record_submit(job)
        journal.record_done(job.id, {"answer": 1})
        journal.close()
        # A compaction that died before its os.replace commit point.
        tmp = path + ".compact.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write('{"ev": "submit", "job": {"id": "half-writ')
        reopened = JobJournal(path)
        assert not os.path.exists(tmp)
        assert reopened.replayed.jobs[job.id].state == "done"
        reopened.close()


class TestReplayCompat:
    def test_requeue_event_restores_attempts(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        job = _job(1)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"ev": "submit", "job": job.journal_dict()}) + "\n"
            )
            handle.write(
                json.dumps(
                    {"ev": "requeue", "id": job.id, "attempt": 2,
                     "reason": "compacted", "delay_s": 0.0}
                )
                + "\n"
            )
        state = JobJournal._load(path)
        assert state.jobs[job.id].state == "queued"
        assert state.jobs[job.id].attempts == 2


@pytest.mark.parametrize("max_bytes", [None, 1])
def test_cli_flag_threads_through_serve_config(tmp_path, max_bytes):
    from repro.serve.app import ServeConfig

    config = ServeConfig(
        journal=str(tmp_path / "j.jsonl"),
        journal_max_mb=(max_bytes if max_bytes is None else 0.000001),
    )
    assert (config.journal_max_mb is None) == (max_bytes is None)
