"""Lease fencing under races: exactly one terminal state, ever.

The serve dispatcher's exactly-once guarantee rests on one gate: an
executor may only commit its outcome while it still holds the lease it
was granted.  These tests race that gate the two ways real
infrastructure does —

- **concurrent duplicate completions**: the wedged first attempt and
  its healthy retry finish at the same instant and race into the
  commit path; and
- **stale-attempt push**: the wedged first attempt finishes *after*
  the retry already committed.

In both cases exactly one outcome must land (the one holding the live
lease), the loser must be discarded and counted in
``serve_stale_results_total``, and the journal must show exactly one
terminal event for the job.
"""

from __future__ import annotations

import threading
import time

from repro.prof.registry import MetricsRegistry
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.journal import JobJournal

FIG_REQUEST = {"kind": "figure", "params": {"name": "fig02"}}


def _app(tmp_path, run_job, **overrides):
    defaults = dict(
        journal=str(tmp_path / "journal.jsonl"),
        tick_s=0.005,
        slots=2,
        lease_ttl_s=0.15,
        max_attempts=3,
    )
    defaults.update(overrides)
    return ServeApp(
        ServeConfig(**defaults),
        registry=MetricsRegistry(),
        run_job=run_job,
    )


def _wait(predicate, timeout_s=20.0, message="condition never held"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(message)


def _stale_total(app):
    return app.registry.counter("serve_stale_results_total").value()


class TestConcurrentDuplicateCompletions:
    def test_racing_attempts_commit_exactly_once(self, tmp_path):
        """Attempt 1 (lease lost) and attempt 2 (lease live) finish at
        the same instant; only the live lease's outcome lands."""
        attempts = []
        second_running = threading.Event()
        release = threading.Event()

        def run_job(job):
            attempt = len(attempts) + 1
            attempts.append(attempt)
            if attempt == 2:
                second_running.set()
            # Both attempts block here: attempt 1 wedges past the TTL
            # (losing its lease to expiry), attempt 2 joins it, and
            # then both are released into the commit path together.
            release.wait(timeout=10.0)
            return {"attempt": attempt}

        app = _app(tmp_path, run_job)
        app.start()
        try:
            status, body = app.submit(FIG_REQUEST)
            assert status == 201
            job_id = body["id"]
            _wait(
                second_running.is_set,
                message="the lease never expired onto a second attempt",
            )
            release.set()
            _wait(
                lambda: app.job_view(job_id)["state"]
                in ("done", "failed"),
                message="job never reached a terminal state",
            )
            # Give the losing executor time to run into the fence.
            _wait(
                lambda: _stale_total(app) >= 1,
                timeout_s=5.0,
                message="the fenced attempt was never counted stale",
            )
            view = app.job_view(job_id)
            assert view["state"] == "done"
            assert view["result"] == {"attempt": 2}, (
                "the expired lease's result leaked through the fence"
            )
            assert view["attempts"] == 2
            assert _stale_total(app) == 1
        finally:
            app.close()
        counts = JobJournal.terminal_counts(app.config.journal)
        assert counts.get(job_id) == 1, (
            f"job terminal {counts.get(job_id, 0)} times (want exactly 1)"
        )


class TestStaleAttemptPush:
    def test_late_result_after_terminal_is_discarded(self, tmp_path):
        """The wedged attempt finishes long after the retry committed;
        its push must bounce off the fence, not overwrite the result."""
        first_blocked = threading.Event()

        def run_job(job):
            if len(calls) == 0:
                calls.append(1)
                first_blocked.wait(timeout=10.0)
                return {"from": "wedged"}
            calls.append(2)
            return {"from": "retry"}

        calls = []
        app = _app(tmp_path, run_job)
        app.start()
        try:
            status, body = app.submit(FIG_REQUEST)
            job_id = body["id"]
            _wait(
                lambda: app.job_view(job_id)["state"] == "done",
                message="the retry never completed",
            )
            before = app.job_view(job_id)
            assert before["result"] == {"from": "retry"}
            assert _stale_total(app) == 0
            # Unwedge attempt 1: its (stale) outcome arrives after the
            # job is already terminal.
            first_blocked.set()
            _wait(
                lambda: _stale_total(app) >= 1,
                timeout_s=5.0,
                message="the late push was never counted stale",
            )
            after = app.job_view(job_id)
            assert after["state"] == "done"
            assert after["result"] == {"from": "retry"}, (
                "a stale push overwrote the committed result"
            )
            assert _stale_total(app) == 1
        finally:
            app.close()
        counts = JobJournal.terminal_counts(app.config.journal)
        assert counts.get(job_id) == 1
