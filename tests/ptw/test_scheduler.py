"""The coalescing PTW scheduler, including the paper's worked example."""

import pytest

from repro.mem.hierarchy import SharedMemory
from repro.ptw.scheduler import ScheduledPageTableWalker, plan_batch
from repro.ptw.walker import PageTableWalker
from repro.vm.address import compose_vpn
from repro.vm.page_table import PageTable

#: The three pages of Figure 8.
FIG8_PAGES = [
    compose_vpn(0xB9, 0x0C, 0xAC, 0x03),
    compose_vpn(0xB9, 0x0C, 0xAC, 0x04),
    compose_vpn(0xB9, 0x0C, 0xAD, 0x05),
]


def make(walker_cls):
    table = PageTable()
    shared = SharedMemory(num_channels=1)
    return table, walker_cls(table, shared)


class TestPaperWorkedExample:
    """Figure 8: three concurrent walks; naive = 12 loads, scheduled = 7."""

    def test_naive_issues_twelve_loads(self):
        table, walker = make(PageTableWalker)
        for vpn in FIG8_PAGES:
            table.map_page(vpn)
        batch = walker.walk_many(FIG8_PAGES, now=0)
        assert batch.refs == 12

    def test_scheduled_issues_seven_loads(self):
        table, walker = make(ScheduledPageTableWalker)
        for vpn in FIG8_PAGES:
            table.map_page(vpn)
        batch = walker.walk_many(FIG8_PAGES, now=0)
        assert batch.refs == 7

    def test_plan_structure_matches_figure(self):
        table, walker = make(ScheduledPageTableWalker)
        for vpn in FIG8_PAGES:
            table.map_page(vpn)
        plan = plan_batch(walker.steps_for(FIG8_PAGES))
        loads = [len(level) for level in plan.loads_per_level]
        # 1 PML4 load, 1 PDP load, 2 PD loads, 3 PT loads (two of which
        # share a cache line with each other).
        assert loads == [1, 1, 2, 3]
        assert plan.naive_refs == 12
        assert plan.scheduled_refs == 7
        assert plan.refs_eliminated == 5
        # The two same-table PT entries (0x03, 0x04) share a line and
        # are scheduled adjacently.
        pt_loads = plan.loads_per_level[3]
        lines = [addr // 128 for addr in pt_loads]
        assert lines[0] == lines[1] or lines[1] == lines[2]

    def test_scheduled_faster_than_naive(self):
        table_a, naive = make(PageTableWalker)
        table_b, sched = make(ScheduledPageTableWalker)
        for vpn in FIG8_PAGES:
            table_a.map_page(vpn)
            table_b.map_page(vpn)
        slow = naive.walk_many(FIG8_PAGES, now=0)
        fast = sched.walk_many(FIG8_PAGES, now=0)
        assert fast.ready_time < slow.ready_time

    def test_translations_agree_with_page_table(self):
        table, walker = make(ScheduledPageTableWalker)
        expected = {vpn: table.map_page(vpn) for vpn in FIG8_PAGES}
        batch = walker.walk_many(FIG8_PAGES, now=0)
        assert batch.translations == expected


class TestSchedulerProperties:
    def test_single_walk_matches_serial_refs(self):
        table, walker = make(ScheduledPageTableWalker)
        table.map_page(42)
        batch = walker.walk_many([42], now=0)
        assert batch.refs == 4

    def test_empty_batch(self):
        _, walker = make(ScheduledPageTableWalker)
        batch = walker.walk_many([], now=5)
        assert batch.ready_time == 5 and batch.refs == 0

    def test_issue_occupancy_shorter_than_data_chain(self):
        # The scheduled walker frees once its refs are injected.
        table, walker = make(ScheduledPageTableWalker)
        for vpn in FIG8_PAGES:
            table.map_page(vpn)
        batch = walker.walk_many(FIG8_PAGES, now=0)
        assert walker.busy_until <= 0 + batch.refs
        assert batch.ready_time > walker.busy_until

    def test_refs_eliminated_fraction(self):
        table, walker = make(ScheduledPageTableWalker)
        for vpn in FIG8_PAGES:
            table.map_page(vpn)
        walker.walk_many(FIG8_PAGES, now=0)
        assert walker.refs_eliminated_fraction == pytest.approx(5 / 12)

    def test_mixed_page_sizes_in_batch(self):
        table, walker = make(ScheduledPageTableWalker)
        table.map_page(compose_vpn(1, 2, 3, 4))
        base = table.map_large_page(9)
        batch = walker.walk_many([compose_vpn(1, 2, 3, 4), 9 << 9], now=0)
        assert batch.translations[9 << 9] == base
