"""Walker pools (Figure 11's multiple-PTW design)."""

import pytest

from repro.mem.hierarchy import SharedMemory
from repro.ptw.multi import WalkerPool
from repro.vm.address import compose_vpn
from repro.vm.page_table import PageTable


def make_pool(count):
    table = PageTable()
    shared = SharedMemory(num_channels=1)
    return table, WalkerPool(table, shared, count)


class TestPool:
    def test_walks_overlap_across_walkers(self):
        vpns = [compose_vpn(1, 2, 3, i) for i in range(2)]
        finishes = {}
        for count in (1, 2):
            table, pool = make_pool(count)
            for vpn in vpns:
                table.map_page(vpn)
            finishes[count] = pool.walk_many(vpns, now=0).ready_time
        # Two walkers start both walks immediately, so the batch
        # completes no later than the serialized single walker.
        assert finishes[2] < finishes[1]

    def test_more_walkers_never_slower(self):
        vpns = [compose_vpn(1, 2, 3, i) for i in range(8)]
        results = {}
        for count in (1, 4):
            table, pool = make_pool(count)
            for vpn in vpns:
                table.map_page(vpn)
            results[count] = pool.walk_many(vpns, now=0).ready_time
        assert results[4] <= results[1]

    def test_pool_statistics_aggregate(self):
        table, pool = make_pool(2)
        for vpn in (1, 2, 3):
            table.map_page(vpn)
        pool.walk_many([1, 2, 3], now=0)
        assert pool.walks == 3
        assert pool.refs_issued == 12
        assert pool.average_walk_cycles > 0

    def test_zero_walkers_rejected(self):
        table = PageTable()
        with pytest.raises(ValueError):
            WalkerPool(table, SharedMemory(), 0)
