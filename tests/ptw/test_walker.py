"""Serial page table walker."""

from repro.mem.hierarchy import SharedMemory
from repro.ptw.walker import PageTableWalker
from repro.vm.address import compose_vpn
from repro.vm.page_table import PageTable


def make_walker():
    table = PageTable()
    shared = SharedMemory(num_channels=1)
    return table, PageTableWalker(table, shared)


class TestSingleWalk:
    def test_walk_returns_translation(self):
        table, walker = make_walker()
        pfn = table.map_page(0x123)
        result = walker.walk(0x123, now=0)
        assert result.pfn == pfn
        assert result.refs == 4
        assert result.ready_time > 0

    def test_walk_is_serialized_by_busy_time(self):
        table, walker = make_walker()
        table.map_page(1)
        table.map_page(100000)
        first = walker.walk(1, now=0)
        second = walker.walk(100000, now=0)
        assert second.ready_time > first.ready_time

    def test_walk_counts(self):
        table, walker = make_walker()
        table.map_page(1)
        walker.walk(1, 0)
        assert walker.walks == 1
        assert walker.refs_issued == 4
        assert walker.refs_naive == 4
        assert walker.average_walk_cycles > 0

    def test_large_page_walk_is_three_refs(self):
        table, walker = make_walker()
        base = table.map_large_page(7)
        result = walker.walk(7 << 9, now=0)
        assert result.refs == 3
        assert result.pfn == base

    def test_large_page_interior_vpn(self):
        table, walker = make_walker()
        base = table.map_large_page(7)
        result = walker.walk((7 << 9) + 13, now=0)
        assert result.pfn == base + 13


class TestBatch:
    def test_walk_many_serializes(self):
        table, walker = make_walker()
        vpns = [compose_vpn(1, 2, 3, i) for i in range(3)]
        for vpn in vpns:
            table.map_page(vpn)
        batch = walker.walk_many(vpns, now=0)
        assert batch.refs == 12
        assert set(batch.translations) == set(vpns)
        # Serial: per-walk ready times strictly increase.
        times = [batch.ready_times[v] for v in vpns]
        assert times == sorted(times) and len(set(times)) == 3

    def test_walk_many_dedupes_input(self):
        table, walker = make_walker()
        table.map_page(5)
        batch = walker.walk_many([5, 5, 5], now=0)
        assert batch.refs == 4

    def test_steps_for(self):
        table, walker = make_walker()
        table.map_page(5)
        plan = walker.steps_for([5])
        assert [level for level, _ in plan[5]] == [0, 1, 2, 3]
