"""Property-based tests on the virtual-memory substrate."""

from hypothesis import given, settings, strategies as st

from repro.vm.address import compose_vpn, split_vpn
from repro.vm.page_table import PageTable
from repro.vm.pte import pack_pte, pte_history, unpack_pte, with_history

vpns = st.integers(min_value=0, max_value=(1 << 36) - 1)
indices = st.integers(min_value=0, max_value=511)


@given(vpns)
def test_split_compose_roundtrip(vpn):
    assert compose_vpn(*split_vpn(vpn)) == vpn


@given(indices, indices, indices, indices)
def test_compose_split_roundtrip(a, b, c, d):
    assert split_vpn(compose_vpn(a, b, c, d)) == (a, b, c, d)


@given(st.integers(min_value=0, max_value=(1 << 40) - 1),
       st.integers(min_value=0, max_value=0xFFF))
def test_pte_roundtrip(pfn, flags):
    assert unpack_pte(pack_pte(pfn, flags)) == (pfn, flags)


@given(st.lists(st.integers(min_value=0, max_value=47), max_size=5))
def test_pte_history_prefix(warps):
    entry = with_history(pack_pte(1), warps)
    assert pte_history(entry) == tuple(warps[:2])


@settings(max_examples=25, deadline=None)
@given(st.sets(vpns, min_size=1, max_size=30))
def test_mapping_translates_consistently(vpn_set):
    table = PageTable()
    mapping = {}
    for vpn in vpn_set:
        mapping[vpn] = table.map_page(vpn)
    for vpn, pfn in mapping.items():
        assert table.translate_vpn(vpn) == pfn
        steps = table.walk(vpn)
        assert 1 <= len(steps) <= 4
        assert steps[-1].is_leaf


@settings(max_examples=25, deadline=None)
@given(st.sets(vpns, min_size=2, max_size=20))
def test_distinct_pages_get_distinct_frames(vpn_set):
    table = PageTable()
    frames = [table.map_page(vpn) for vpn in vpn_set]
    assert len(set(frames)) == len(frames)


@settings(max_examples=20, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=(1 << 27) - 1),
               min_size=1, max_size=8))
def test_large_pages_translate_consistently(vpn2m_set):
    table = PageTable()
    for vpn2m in vpn2m_set:
        base = table.map_large_page(vpn2m)
        vaddr = (vpn2m << 21) + 4097
        assert table.translate(vaddr) == (base << 12) + 4097
