"""The 4-level page table and its hardware-walkable layout."""

import pytest

from repro.vm.address import PAGE_SHIFT_4K, PTE_BYTES, compose_vpn
from repro.vm.page_table import PageTable, TranslationFault
from repro.vm.pte import PTE_FLAG_LARGE, unpack_pte


class TestMapping:
    def test_map_and_translate(self, page_table):
        pfn = page_table.map_page(0x1234)
        assert page_table.translate_vpn(0x1234) == pfn

    def test_translate_byte_address(self, page_table):
        pfn = page_table.map_page(7)
        vaddr = (7 << PAGE_SHIFT_4K) + 123
        assert page_table.translate(vaddr) == (pfn << PAGE_SHIFT_4K) + 123

    def test_explicit_pfn(self, page_table):
        page_table.map_page(9, pfn=4242)
        assert page_table.translate_vpn(9) == 4242

    def test_double_map_rejected(self, page_table):
        page_table.map_page(5)
        with pytest.raises(ValueError):
            page_table.map_page(5)

    def test_ensure_mapped_idempotent(self, page_table):
        first = page_table.ensure_mapped(11)
        assert page_table.ensure_mapped(11) == first

    def test_unmap(self, page_table):
        page_table.map_page(3)
        page_table.unmap_page(3)
        with pytest.raises(TranslationFault):
            page_table.translate_vpn(3)

    def test_unmap_unmapped_rejected(self, page_table):
        with pytest.raises(TranslationFault):
            page_table.unmap_page(99)

    def test_translate_unmapped_faults(self, page_table):
        with pytest.raises(TranslationFault):
            page_table.translate(0xDEAD000)

    def test_pages_mapped_counter(self, page_table):
        for vpn in range(4):
            page_table.map_page(vpn)
        assert page_table.pages_mapped == 4

    def test_iter_mappings(self, page_table):
        page_table.map_page(1, pfn=100)
        page_table.map_page(2, pfn=200)
        assert dict(page_table.iter_mappings()) == {1: 100, 2: 200}


class TestWalkStructure:
    def test_walk_has_four_levels(self, page_table):
        page_table.map_page(0x123456789 >> 12 if False else 0x12345)
        steps = page_table.walk(0x12345)
        assert [s.level_name for s in steps] == ["PML4", "PDP", "PD", "PT"]
        assert steps[-1].is_leaf

    def test_walk_addresses_are_entry_slots(self, page_table):
        vpn = compose_vpn(1, 2, 3, 4)
        page_table.map_page(vpn)
        steps = page_table.walk(vpn)
        for step, index in zip(steps, (1, 2, 3, 4)):
            assert step.load_paddr % 4096 == index * PTE_BYTES

    def test_walk_starts_at_cr3(self, page_table):
        vpn = compose_vpn(1, 2, 3, 4)
        page_table.map_page(vpn)
        steps = page_table.walk(vpn)
        assert steps[0].load_paddr == page_table.cr3 + 1 * PTE_BYTES

    def test_adjacent_ptes_share_cache_line(self, page_table):
        # 16 consecutive PTEs per 128-byte line: the PTW scheduler's
        # second coalescing opportunity (Section 6.3).
        base = compose_vpn(0xB9, 0x0C, 0xAC, 0x00)
        page_table.map_page(base + 3)
        page_table.map_page(base + 4)
        addr3 = page_table.leaf_entry_paddr(base + 3)
        addr4 = page_table.leaf_entry_paddr(base + 4)
        assert addr3 // 128 == addr4 // 128
        assert addr3 != addr4

    def test_same_1gb_region_shares_upper_levels(self, page_table):
        a = compose_vpn(0xB9, 0x0C, 0xAC, 0x03)
        b = compose_vpn(0xB9, 0x0C, 0xAD, 0x05)
        page_table.map_page(a)
        page_table.map_page(b)
        wa, wb = page_table.walk(a), page_table.walk(b)
        assert wa[0].load_paddr == wb[0].load_paddr  # same PML4 entry
        assert wa[1].load_paddr == wb[1].load_paddr  # same PDP entry
        assert wa[2].load_paddr != wb[2].load_paddr  # different PD entries

    def test_walk_fault_reports_level(self, page_table):
        with pytest.raises(TranslationFault, match="PML4"):
            page_table.walk(compose_vpn(400, 0, 0, 0))


class TestLargePages:
    def test_map_large_and_translate(self, page_table):
        base_pfn = page_table.map_large_page(3)
        vaddr = (3 << 21) + 0x12345
        assert page_table.translate(vaddr) == (base_pfn << 12) + 0x12345

    def test_large_walk_is_three_loads(self, page_table):
        page_table.map_large_page(3)
        steps = page_table.walk(3 << 9)
        assert len(steps) == 3
        assert steps[-1].level_name == "PD"
        assert unpack_pte(steps[-1].entry)[1] & PTE_FLAG_LARGE

    def test_translate_vpn_inside_large_page(self, page_table):
        base_pfn = page_table.map_large_page(5)
        assert page_table.translate_vpn((5 << 9) + 17) == base_pfn + 17

    def test_small_page_inside_large_rejected(self, page_table):
        page_table.map_large_page(2)
        with pytest.raises(ValueError):
            page_table.map_page((2 << 9) + 1)

    def test_double_large_map_rejected(self, page_table):
        page_table.map_large_page(2)
        with pytest.raises(ValueError):
            page_table.map_large_page(2)

    def test_large_page_frames_contiguous(self, page_table):
        pfn = page_table.map_large_page(1)
        assert pfn % 1 == 0  # base is a valid frame number
        # 512 frames are reserved: the next small mapping lands after.
        nxt = page_table.map_page(0x999)
        assert nxt >= pfn + 512
