"""Virtual address arithmetic."""

import pytest

from repro.vm import address as A


class TestPageNumbers:
    def test_vaddr_to_vpn_4k(self):
        assert A.vaddr_to_vpn(0) == 0
        assert A.vaddr_to_vpn(4095) == 0
        assert A.vaddr_to_vpn(4096) == 1
        assert A.vaddr_to_vpn(0x12345678) == 0x12345678 >> 12

    def test_vaddr_to_vpn_2m(self):
        assert A.vaddr_to_vpn(0, A.PAGE_SHIFT_2M) == 0
        assert A.vaddr_to_vpn(A.PAGE_SIZE_2M - 1, A.PAGE_SHIFT_2M) == 0
        assert A.vaddr_to_vpn(A.PAGE_SIZE_2M, A.PAGE_SHIFT_2M) == 1

    def test_vpn_to_vaddr_roundtrip(self):
        for vpn in (0, 1, 12345, (1 << 36) - 1):
            assert A.vaddr_to_vpn(A.vpn_to_vaddr(vpn)) == vpn

    def test_negative_vaddr_rejected(self):
        with pytest.raises(ValueError):
            A.vaddr_to_vpn(-1)

    def test_negative_vpn_rejected(self):
        with pytest.raises(ValueError):
            A.vpn_to_vaddr(-5)

    def test_page_offset(self):
        assert A.page_offset(4096 + 123) == 123
        assert A.page_offset(A.PAGE_SIZE_2M + 7, A.PAGE_SHIFT_2M) == 7


class TestIndexSplit:
    def test_paper_notation_example(self):
        # The paper presents pages as 9-bit index tuples, e.g.
        # (0xb9, 0x0c, 0xac, 0x03).
        vpn = A.compose_vpn(0xB9, 0x0C, 0xAC, 0x03)
        assert A.split_vpn(vpn) == (0xB9, 0x0C, 0xAC, 0x03)

    def test_split_zero(self):
        assert A.split_vpn(0) == (0, 0, 0, 0)

    def test_split_max(self):
        vpn = (1 << 36) - 1
        assert A.split_vpn(vpn) == (511, 511, 511, 511)

    def test_adjacent_pages_differ_only_in_pt_index(self):
        base = A.compose_vpn(5, 6, 7, 8)
        assert A.split_vpn(base + 1) == (5, 6, 7, 9)

    def test_pt_index_carry(self):
        vpn = A.compose_vpn(1, 2, 3, 511)
        assert A.split_vpn(vpn + 1) == (1, 2, 4, 0)

    def test_out_of_range_vpn_rejected(self):
        with pytest.raises(ValueError):
            A.split_vpn(1 << 36)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            A.compose_vpn(512, 0, 0, 0)

    def test_1gb_region_shares_upper_indices(self):
        # Bits 47-30 cover 1 GB: pages within the same 1 GB chunk share
        # PML4 and PDP indices (the PTW scheduler's dedup opportunity).
        base = A.compose_vpn(9, 17, 0, 0)
        for delta in (1, 100, (1 << 18) - 1):
            pml4, pdp, _, _ = A.split_vpn(base + delta)
            assert (pml4, pdp) == (9, 17)


class TestCacheLines:
    def test_line_alignment(self):
        assert A.cache_line_of(0) == 0
        assert A.cache_line_of(127) == 0
        assert A.cache_line_of(128) == 128
        assert A.cache_line_of(300) == 256

    def test_ptes_per_line(self):
        # 128-byte lines hold 16 8-byte PTEs (Section 6.3).
        assert A.PTES_PER_LINE == 16

    def test_table_is_one_frame(self):
        assert A.PTES_PER_TABLE * A.PTE_BYTES == A.PAGE_SIZE_4K
