"""Physical frame allocator."""

import pytest

from repro.vm.physical_memory import OutOfPhysicalMemory, PhysicalMemory


class TestAllocation:
    def test_frames_are_distinct(self):
        memory = PhysicalMemory()
        frames = {memory.alloc_frame() for _ in range(100)}
        assert len(frames) == 100

    def test_frame_base(self):
        assert PhysicalMemory.frame_base(3) == 3 * 4096

    def test_allocated_counter(self):
        memory = PhysicalMemory()
        for _ in range(5):
            memory.alloc_frame()
        assert memory.frames_allocated == 5

    def test_free_and_reuse(self):
        memory = PhysicalMemory()
        pfn = memory.alloc_frame()
        memory.free_frame(pfn)
        assert memory.alloc_frame() == pfn

    def test_contiguous(self):
        memory = PhysicalMemory()
        base = memory.alloc_contiguous(512)
        follow = memory.alloc_frame()
        assert follow == base + 512

    def test_contiguous_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PhysicalMemory().alloc_contiguous(0)

    def test_exhaustion(self):
        memory = PhysicalMemory(size_bytes=16 * 4096)
        for _ in range(memory.frames_remaining):
            memory.alloc_frame()
        with pytest.raises(OutOfPhysicalMemory):
            memory.alloc_frame()

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(size_bytes=100, base=4096)
        with pytest.raises(ValueError):
            PhysicalMemory(base=100)

    def test_free_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory().free_frame(-1)
