"""PTE packing and the warp-history spare bits."""

import pytest

from repro.vm import pte as P


class TestPacking:
    def test_roundtrip(self):
        entry = P.pack_pte(0x12345, P.PTE_FLAG_PRESENT | P.PTE_FLAG_DIRTY)
        pfn, flags = P.unpack_pte(entry)
        assert pfn == 0x12345
        assert flags == P.PTE_FLAG_PRESENT | P.PTE_FLAG_DIRTY

    def test_default_flags(self):
        entry = P.pack_pte(1)
        _, flags = P.unpack_pte(entry)
        assert flags & P.PTE_FLAG_PRESENT
        assert flags & P.PTE_FLAG_WRITABLE

    def test_pfn_helper(self):
        assert P.pte_pfn(P.pack_pte(77)) == 77

    def test_large_flag(self):
        entry = P.pack_pte(2, P.PTE_FLAG_PRESENT | P.PTE_FLAG_LARGE)
        assert P.unpack_pte(entry)[1] & P.PTE_FLAG_LARGE

    def test_pfn_out_of_range(self):
        with pytest.raises(ValueError):
            P.pack_pte(1 << 40)

    def test_flags_out_of_range(self):
        with pytest.raises(ValueError):
            P.pack_pte(1, 1 << 12)


class TestWarpHistory:
    def test_fresh_pte_has_empty_history(self):
        assert P.pte_history(P.pack_pte(5)) == ()

    def test_history_roundtrip(self):
        entry = P.with_history(P.pack_pte(5), [3, 41])
        assert P.pte_history(entry) == (3, 41)

    def test_history_preserves_translation(self):
        entry = P.with_history(P.pack_pte(5, P.PTE_FLAG_PRESENT), [1, 2])
        pfn, flags = P.unpack_pte(entry)
        assert (pfn, flags) == (5, P.PTE_FLAG_PRESENT)

    def test_history_truncated_to_length_two(self):
        # The paper stores 2 warp ids in 12 spare bits (Section 8.2).
        entry = P.with_history(P.pack_pte(5), [1, 2, 3, 4])
        assert P.pte_history(entry) == (1, 2)

    def test_history_warp_id_range(self):
        with pytest.raises(ValueError):
            P.with_history(P.pack_pte(5), [64])
