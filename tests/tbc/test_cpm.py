"""The Common Page Matrix."""

import pytest

from repro.gpu.tbc.cpm import CommonPageMatrix


class TestCounters:
    def test_initially_zero(self):
        cpm = CommonPageMatrix(num_warps=8)
        assert cpm.value(0, 1) == 0
        assert not cpm.saturated(0, 1)

    def test_update_is_symmetric(self):
        cpm = CommonPageMatrix(num_warps=8)
        cpm.update(0, [1])
        assert cpm.value(0, 1) == 1
        assert cpm.value(1, 0) == 1

    def test_saturation(self):
        cpm = CommonPageMatrix(num_warps=8, counter_bits=2)
        for _ in range(10):
            cpm.update(0, [1])
        assert cpm.value(0, 1) == 3
        assert cpm.saturated(0, 1)

    def test_self_pairs_ignored(self):
        cpm = CommonPageMatrix(num_warps=8)
        cpm.update(0, [0])
        with pytest.raises(ValueError):
            cpm.value(0, 0)

    def test_compatible_requires_all_saturated(self):
        cpm = CommonPageMatrix(num_warps=8, counter_bits=1)
        cpm.update(0, [1])
        assert cpm.compatible(0, [1])
        assert not cpm.compatible(0, [1, 2])
        assert cpm.compatible(0, [0, 1])  # same warp always compatible

    def test_flush_clears(self):
        cpm = CommonPageMatrix(num_warps=8, counter_bits=1)
        cpm.update(0, [1])
        cpm.flush()
        assert cpm.value(0, 1) == 0
        assert cpm.flushes == 1

    def test_maybe_flush_period(self):
        cpm = CommonPageMatrix(num_warps=8, flush_interval=500)
        assert not cpm.maybe_flush(now=100)
        assert cpm.maybe_flush(now=600)
        assert not cpm.maybe_flush(now=700)

    def test_paper_storage_cost(self):
        # 48x47 rows of 3-bit counters = 0.8 KB (Section 8.2).
        cpm = CommonPageMatrix(num_warps=48, counter_bits=3)
        assert cpm.storage_bits() == 48 * 47 * 3
        assert cpm.storage_bits() / 8 / 1024 == pytest.approx(0.826, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommonPageMatrix(num_warps=1)
        with pytest.raises(ValueError):
            CommonPageMatrix(num_warps=4, counter_bits=0)
        with pytest.raises(ValueError):
            CommonPageMatrix(num_warps=4, flush_interval=0)
