"""Dynamic warp formation (TBC and CPM-gated TLB-aware TBC)."""

from hypothesis import given, settings, strategies as st

from repro.gpu.instruction import MemoryInstruction
from repro.gpu.tbc.blocks import Region, ThreadBlock
from repro.gpu.tbc.compactor import compact_region, form_region_warps
from repro.gpu.tbc.cpm import CommonPageMatrix


def make_block(thread_paths, num_warps=3, warp_width=4):
    program = (("m",),)
    paths = {p: program for p in set(t for t in thread_paths if t is not None)}
    addresses = {
        tid: (0x1000 * (block_page(tid)),)
        for tid, p in enumerate(thread_paths)
        if p is not None
    }
    region = Region(path_programs=paths, thread_paths=tuple(thread_paths),
                    thread_addresses=addresses)
    return ThreadBlock(block_id=0, num_warps=num_warps, warp_width=warp_width,
                       regions=[region])


def block_page(tid, warp_width=4):
    # Threads of the same warp access the same page.
    return (tid // warp_width) + 1


class TestBaselineCompaction:
    def test_full_block_single_path_compacts_to_original_count(self):
        block = make_block([0] * 12)
        groups = compact_region(block, block.regions[0])
        assert len(groups) == 3  # lane constraint: one thread per lane

    def test_figure19_shape(self):
        # 3 warps of 4 threads; half diverge each way -> TBC packs each
        # path into fewer warps than stack's one-per-(warp, path).
        # Divergence patterns differ per warp, so threads from
        # different warps fill each other's idle lanes.
        paths = [0, 1, 1, 0, 1, 0, 0, 1, 0, 0, 1, 1]
        block = make_block(paths)
        groups = compact_region(block, block.regions[0])
        assert len(groups) < 6

    def test_lane_constraint_respected(self):
        block = make_block([0] * 12)
        for group in compact_region(block, block.regions[0]):
            lanes = [block.lane(tid) for tid in group.threads]
            assert len(lanes) == len(set(lanes))

    def test_all_threads_covered_exactly_once(self):
        paths = [0, 1, 0, 1] * 3
        block = make_block(paths)
        groups = compact_region(block, block.regions[0])
        seen = [tid for g in groups for tid in g.threads]
        assert sorted(seen) == list(range(12))


class TestCPMGating:
    def test_unsaturated_cpm_prevents_mixing(self):
        block = make_block([0] * 12)
        cpm = CommonPageMatrix(num_warps=8, counter_bits=1)
        groups = compact_region(block, block.regions[0], cpm=cpm)
        for group in groups:
            warps = {block.original_warp(tid) for tid in group.threads}
            assert len(warps) == 1

    def test_saturated_pair_may_mix(self):
        block = make_block([0, None, None, None, None, 0, None, None] + [None] * 4)
        cpm = CommonPageMatrix(num_warps=8, counter_bits=1)
        cpm.update(0, [1])
        groups = compact_region(block, block.regions[0], cpm=cpm)
        assert len(groups) == 1
        warps = {block.original_warp(tid) for tid in groups[0].threads}
        assert warps == {0, 1}


class TestTraceMaterialization:
    def test_stack_mode_traces(self):
        block = make_block([0, 1, 0, 1] * 3)
        traces = form_region_warps(block, 0, mode="stack")
        assert len(traces) == 6
        for trace in traces:
            instr = trace.instructions[0]
            assert isinstance(instr, MemoryInstruction)
            assert instr.origins is not None

    def test_tbc_mode_addresses_follow_threads(self):
        block = make_block([0] * 12)
        traces = form_region_warps(block, 0, mode="tbc")
        # Lane l of each dynamic warp carries that thread's own address.
        for trace in traces:
            instr = trace.instructions[0]
            for lane, addr in enumerate(instr.addresses):
                if addr is not None:
                    origin = instr.origins[lane]
                    assert addr == 0x1000 * (origin + 1)

    def test_tlb_tbc_requires_cpm(self):
        block = make_block([0] * 12)
        try:
            form_region_warps(block, 0, mode="tlb-tbc", cpm=None)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=12, max_size=12))
def test_compaction_partitions_threads(thread_paths):
    if not any(p is not None for p in thread_paths):
        return
    block = make_block(thread_paths)
    groups = compact_region(block, block.regions[0])
    seen = sorted(tid for g in groups for tid in g.threads)
    expected = sorted(
        tid for tid, p in enumerate(thread_paths) if p is not None
    )
    assert seen == expected
    for group in groups:
        lanes = [block.lane(tid) for tid in group.threads]
        assert len(lanes) == len(set(lanes))
        paths = {thread_paths[tid] for tid in group.threads}
        assert len(paths) == 1
