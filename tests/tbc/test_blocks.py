"""Thread blocks and regions."""

import pytest

from repro.gpu.tbc.blocks import Region, ThreadBlock


def simple_region(threads=8, divergent=True):
    program = (("c", 2), ("m",))
    paths = {0: program, 1: program} if divergent else {0: program}
    thread_paths = tuple(i % 2 if divergent else 0 for i in range(threads))
    addresses = {tid: (0x1000 * (tid + 1),) for tid in range(threads)}
    return Region(path_programs=paths, thread_paths=thread_paths,
                  thread_addresses=addresses)


class TestRegion:
    def test_paths_listed(self):
        assert simple_region().paths == (0, 1)
        assert simple_region(divergent=False).paths == (0,)

    def test_threads_on_path(self):
        region = simple_region(threads=8)
        assert region.threads_on_path(0) == [0, 2, 4, 6]
        assert region.threads_on_path(1) == [1, 3, 5, 7]

    def test_masked_thread(self):
        region = Region(
            path_programs={0: (("m",),)},
            thread_paths=(0, None),
            thread_addresses={0: (0x1000,)},
        )
        assert region.threads_on_path(0) == [0]

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            Region(path_programs={0: ()}, thread_paths=(1,), thread_addresses={})

    def test_address_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Region(
                path_programs={0: (("m",), ("m",))},
                thread_paths=(0,),
                thread_addresses={0: (0x1000,)},
            )


class TestThreadBlock:
    def test_geometry_helpers(self):
        block = ThreadBlock(block_id=0, num_warps=2, warp_width=4,
                            regions=[simple_region(8)])
        assert block.num_threads == 8
        assert block.original_warp(5) == 1
        assert block.lane(5) == 1

    def test_region_coverage_validated(self):
        with pytest.raises(ValueError):
            ThreadBlock(block_id=0, num_warps=2, warp_width=4,
                        regions=[simple_region(4)])

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            ThreadBlock(block_id=0, num_warps=0, warp_width=4)
