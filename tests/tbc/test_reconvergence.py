"""Per-warp reconvergence stack execution groups."""

from repro.gpu.tbc.blocks import Region, ThreadBlock
from repro.gpu.tbc.reconvergence import stack_execution_groups


def block_with_region(thread_paths, num_warps=2, warp_width=4):
    program = (("m",),)
    paths = {p: program for p in set(t for t in thread_paths if t is not None)}
    addresses = {
        tid: (0x1000 * (tid + 1),)
        for tid, p in enumerate(thread_paths)
        if p is not None
    }
    region = Region(path_programs=paths, thread_paths=tuple(thread_paths),
                    thread_addresses=addresses)
    return ThreadBlock(block_id=0, num_warps=num_warps, warp_width=warp_width,
                       regions=[region]), region


class TestStackGroups:
    def test_uniform_region_one_group_per_warp(self):
        block, region = block_with_region([0] * 8)
        groups = stack_execution_groups(block, region)
        assert len(groups) == 2
        assert groups[0].threads == (0, 1, 2, 3)

    def test_divergent_region_serializes_paths(self):
        # Paper Figure 19: stack execution takes one fetch per
        # (warp, path) pair.
        block, region = block_with_region([0, 1, 0, 1, 0, 0, 0, 0])
        groups = stack_execution_groups(block, region)
        assert len(groups) == 3  # warp0: paths 0+1; warp1: path 0
        warp0 = [g for g in groups if g.original_warp == 0]
        assert {g.path for g in warp0} == {0, 1}

    def test_masked_threads_excluded(self):
        block, region = block_with_region([0, None, 0, None, 0, 0, 0, 0])
        groups = stack_execution_groups(block, region)
        assert groups[0].threads == (0, 2)

    def test_fully_masked_warp_contributes_nothing(self):
        block, region = block_with_region([None] * 4 + [0] * 4)
        groups = stack_execution_groups(block, region)
        assert len(groups) == 1
        assert groups[0].original_warp == 1
