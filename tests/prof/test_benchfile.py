"""BENCH_<n>.json schema validation, numbering, and comparison verdicts."""

from __future__ import annotations

import json

import pytest

from repro.prof import benchfile


def make_report(figures=None):
    """A minimal schema-valid report with the given figure wall times."""
    if figures is None:
        figures = {"fig04": (1.0, 4)}
    figure_section = {}
    total_wall = 0.0
    total_cells = 0
    for name, (wall, cells) in figures.items():
        figure_section[name] = {
            "wall_s": wall,
            "cells": cells,
            "cells_per_s": cells / wall if wall else 0.0,
            "sim_cycles": 1000 * cells,
            "cycles_per_s": 1000 * cells / wall if wall else 0.0,
            "phases": {
                "simulate": {"calls": cells, "self_s": wall, "total_s": wall}
            },
        }
        total_wall += wall
        total_cells += cells
    return {
        "schema_version": benchfile.BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "mode": "custom",
        "host": {"python": "3.11", "platform": "test", "cpu_count": 1},
        "figures": figure_section,
        "totals": {
            "wall_s": total_wall,
            "cells": total_cells,
            "cells_per_s": total_cells / total_wall if total_wall else 0.0,
            "sim_cycles": 1000 * total_cells,
            "cycles_per_s": (
                1000 * total_cells / total_wall if total_wall else 0.0
            ),
            "peak_rss_kb": 1000,
        },
        "metrics": {},
    }


class TestValidate:
    def test_valid_report_has_no_problems(self):
        assert benchfile.validate(make_report()) == []

    def test_wrong_schema_version_flagged(self):
        report = make_report()
        report["schema_version"] = 99
        assert any("schema_version" in p for p in benchfile.validate(report))

    def test_missing_figure_fields_flagged(self):
        report = make_report()
        del report["figures"]["fig04"]["cells_per_s"]
        del report["figures"]["fig04"]["phases"]["simulate"]["self_s"]
        problems = benchfile.validate(report)
        assert any("cells_per_s" in p for p in problems)
        assert any("self_s" in p for p in problems)

    def test_missing_sections_flagged(self):
        problems = benchfile.validate({})
        joined = "\n".join(problems)
        assert "figures" in joined
        assert "totals" in joined
        assert "metrics" in joined


class TestNumbering:
    def test_first_report_is_bench_1(self, tmp_path):
        assert benchfile.next_bench_path(tmp_path).name == "BENCH_1.json"
        assert benchfile.latest_bench_path(tmp_path) is None

    def test_sequence_orders_numerically_not_lexically(self, tmp_path):
        for n in (1, 2, 10):
            (tmp_path / f"BENCH_{n}.json").write_text("{}")
        paths = benchfile.bench_paths(tmp_path)
        assert [p.name for p in paths] == [
            "BENCH_1.json",
            "BENCH_2.json",
            "BENCH_10.json",
        ]
        assert benchfile.latest_bench_path(tmp_path).name == "BENCH_10.json"
        assert benchfile.next_bench_path(tmp_path).name == "BENCH_11.json"

    def test_unrelated_files_ignored(self, tmp_path):
        (tmp_path / "BENCH_x.json").write_text("{}")
        (tmp_path / "notes.json").write_text("{}")
        assert benchfile.bench_paths(tmp_path) == []


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        report = make_report()
        benchfile.save(report, path)
        assert benchfile.load(path) == report
        assert path.read_text().endswith("\n")

    def test_save_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            benchfile.save({"kind": "wrong"}, tmp_path / "BENCH_1.json")

    def test_load_refuses_invalid(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"kind": "wrong"}))
        with pytest.raises(ValueError):
            benchfile.load(path)


class TestCompare:
    def test_within_threshold_is_ok(self):
        baseline = make_report({"fig04": (1.0, 4)})
        current = make_report({"fig04": (1.2, 4)})
        comparison = benchfile.compare(current, baseline, threshold=0.35)
        assert comparison.verdict == benchfile.VERDICT_OK
        assert comparison.regressions == []

    def test_wall_time_growth_regresses(self):
        baseline = make_report({"fig04": (1.0, 4)})
        current = make_report({"fig04": (2.0, 4)})
        comparison = benchfile.compare(current, baseline, threshold=0.35)
        assert comparison.verdict == benchfile.VERDICT_REGRESSION
        (verdict,) = comparison.regressions
        assert verdict.figure == "fig04"
        assert verdict.wall_ratio == pytest.approx(2.0)

    def test_wall_time_shrink_improves(self):
        baseline = make_report({"fig04": (2.0, 4)})
        current = make_report({"fig04": (1.0, 4)})
        comparison = benchfile.compare(current, baseline, threshold=0.35)
        assert comparison.verdict == benchfile.VERDICT_IMPROVED

    def test_new_and_removed_figures_never_regress(self):
        baseline = make_report({"fig04": (1.0, 4)})
        current = make_report({"fig07": (1.0, 4)})
        comparison = benchfile.compare(current, baseline)
        by_figure = {v.figure: v.verdict for v in comparison.figures}
        assert by_figure == {
            "fig04": benchfile.VERDICT_REMOVED,
            "fig07": benchfile.VERDICT_NEW,
        }
        assert comparison.verdict == benchfile.VERDICT_OK

    def test_regression_wins_over_improvement(self):
        baseline = make_report({"fig04": (1.0, 4), "fig07": (2.0, 4)})
        current = make_report({"fig04": (2.0, 4), "fig07": (1.0, 4)})
        comparison = benchfile.compare(current, baseline)
        assert comparison.verdict == benchfile.VERDICT_REGRESSION

    def test_render_mentions_baseline_and_verdicts(self):
        baseline = make_report({"fig04": (1.0, 4)})
        current = make_report({"fig04": (2.0, 4)})
        text = benchfile.compare(
            current, baseline, baseline_name="BENCH_7.json"
        ).render()
        assert "BENCH_7.json" in text
        assert "regression" in text
        assert "overall: regression" in text
