"""MetricsRegistry: counters, gauges, histograms, result mirroring."""

from __future__ import annotations

import pytest

from repro.core.simulator import Simulator
from repro.prof.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_result,
)

from helpers import small_config, small_workload


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labeled_series_are_independent(self, registry):
        counter = registry.counter("cells_total")
        counter.inc(source="simulated")
        counter.inc(source="simulated")
        counter.inc(source="cache")
        assert counter.value(source="simulated") == 2
        assert counter.value(source="cache") == 1
        assert counter.value(source="missing") == 0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name!")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("in_flight")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        histogram = registry.histogram("seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(6.25)
        by_bound = {b["le"]: b["count"] for b in snapshot["buckets"]}
        assert by_bound[0.1] == 1
        assert by_bound[1.0] == 3  # cumulative
        assert by_bound["+Inf"] == 4

    def test_boundary_value_counts_in_its_bucket(self, registry):
        histogram = registry.histogram("seconds", buckets=(1.0,))
        histogram.observe(1.0)
        by_bound = {
            b["le"]: b["count"] for b in histogram.snapshot()["buckets"]
        }
        assert by_bound[1.0] == 1


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        assert registry.counter("hits") is registry.counter("hits")

    def test_kind_collision_raises(self, registry):
        registry.counter("hits")
        with pytest.raises(ValueError):
            registry.gauge("hits")

    def test_metrics_sorted_by_name(self, registry):
        registry.gauge("zeta")
        registry.counter("alpha")
        assert [m.name for m in registry.metrics()] == ["alpha", "zeta"]

    def test_clear_drops_families(self, registry):
        registry.counter("hits").inc()
        registry.clear()
        assert registry.metrics() == []
        assert isinstance(registry.counter("hits"), Counter)


class TestRecordResult:
    def test_mirrors_simulation_counters(self, registry):
        config = small_config()
        workload = small_workload()
        work = workload.build(config)
        result = Simulator(config, work, workload.name).run()
        record_result(result, registry, workload="tiny")
        cycles = registry.get("sim_cycles")
        assert cycles is not None
        assert cycles.value(workload="tiny") == result.stats.cycles
        l1 = registry.get("sim_l1_hits")
        assert l1.value(workload="tiny") == result.l1_hits

    def test_metric_kinds(self, registry):
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)

    def test_api_simulate_labels_series_with_engine(self):
        from repro.api import simulate
        from repro.prof.registry import REGISTRY

        config = small_config()
        before = REGISTRY.counter("sim_cycles").value(engine="event")
        result = simulate(config=config, workload="bfs", engine="event")
        after = REGISTRY.counter("sim_cycles").value(engine="event")
        assert after - before == result.stats.cycles

    def test_event_and_cycle_engines_mirror_identical_counters(
        self, registry
    ):
        """The sim_* mirror is engine-invariant: byte-identical results
        mean byte-identical counters, separable by the engine label."""
        from repro.api import simulate

        config = small_config()
        for engine in ("event", "cycle"):
            result = simulate(config=config, workload="bfs", engine=engine)
            record_result(result, registry, engine=engine)
        families = [
            m for m in registry.metrics() if m.name.startswith("sim_")
        ]
        assert families, "no sim_* families mirrored"
        nonzero = 0
        for family in families:
            event_value = family.value(engine="event")
            cycle_value = family.value(engine="cycle")
            assert event_value == cycle_value, family.name
            nonzero += event_value > 0
        assert nonzero >= 5  # cycles, instructions, l1/l2, tlb at least
