"""PhaseProfiler: nesting, self-time attribution, error unwinding."""

from __future__ import annotations

import pytest

from repro.prof import profiler as prof
from repro.prof.profiler import PhaseProfiler


class FakeClock:
    """Deterministic nanosecond clock advanced by the test."""

    def __init__(self):
        self.now = 0

    def __call__(self) -> int:
        return self.now

    def advance(self, ns: int) -> None:
        self.now += ns


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def profiler(clock):
    return PhaseProfiler(clock=clock)


class TestAttribution:
    def test_flat_phase_accumulates_calls_and_time(self, profiler, clock):
        for _ in range(3):
            profiler.begin("tlb_lookup")
            clock.advance(10)
            profiler.end()
        record = profiler.records["tlb_lookup"]
        assert record.calls == 3
        assert record.total_ns == 30
        assert record.self_ns == 30

    def test_nested_child_time_subtracts_from_parent_self(
        self, profiler, clock
    ):
        profiler.begin("simulate")
        clock.advance(5)
        profiler.begin("ptw_walk")
        clock.advance(20)
        profiler.end()
        clock.advance(5)
        profiler.end()
        outer = profiler.records["simulate"]
        inner = profiler.records["ptw_walk"]
        assert outer.total_ns == 30
        assert outer.self_ns == 10
        assert inner.total_ns == 20
        assert inner.self_ns == 20

    def test_self_times_partition_wall_time(self, profiler, clock):
        profiler.begin("simulate")
        clock.advance(3)
        profiler.begin("cache_l1")
        clock.advance(7)
        profiler.begin("dram")
        clock.advance(11)
        profiler.end()
        clock.advance(2)
        profiler.end()
        clock.advance(1)
        profiler.end()
        assert profiler.total_profiled_ns() == 24
        assert profiler.records["simulate"].total_ns == 24

    def test_end_through_unwinds_abandoned_frames(self, profiler, clock):
        profiler.begin("simulate")
        clock.advance(1)
        profiler.begin("ptw_walk")
        clock.advance(2)
        profiler.begin("dram")
        clock.advance(3)
        # Simulated error: nobody ends dram/ptw_walk; the simulator's
        # finally block unwinds through the marker frame.
        profiler.end_through("simulate")
        assert profiler.depth == 0
        assert profiler.records["dram"].calls == 1
        assert profiler.records["ptw_walk"].calls == 1
        assert profiler.records["simulate"].calls == 1

    def test_end_through_is_noop_on_empty_stack(self, profiler):
        profiler.end_through("simulate")
        assert profiler.depth == 0
        assert profiler.records == {}

    def test_counts_tally(self, profiler):
        profiler.add("cells")
        profiler.add("sim_cycles", 100)
        profiler.add("sim_cycles", 50)
        assert profiler.counts == {"cells": 1, "sim_cycles": 150}

    def test_to_dict_shape(self, profiler, clock):
        profiler.begin("tlb_lookup")
        clock.advance(1_000_000)
        profiler.end()
        profiler.add("cells")
        snapshot = profiler.to_dict()
        assert snapshot["counts"] == {"cells": 1}
        record = snapshot["phases"]["tlb_lookup"]
        assert record["calls"] == 1
        assert record["self_s"] == pytest.approx(0.001)
        assert record["total_s"] == pytest.approx(0.001)


class TestModuleFlag:
    def test_disabled_by_default(self):
        assert prof.ENABLED is False
        assert prof.active() is None

    def test_install_uninstall_toggle_flag(self, profiler):
        prof.install(profiler)
        try:
            assert prof.ENABLED is True
            assert prof.active() is profiler
        finally:
            prof.uninstall()
        assert prof.ENABLED is False
        assert prof.active() is None

    def test_profile_context_restores_previous(self, profiler):
        prof.install(profiler)
        try:
            with prof.profile() as inner:
                assert prof.active() is inner
                assert inner is not profiler
            assert prof.active() is profiler
        finally:
            prof.uninstall()

    def test_profile_context_uninstalls_on_exception(self):
        with pytest.raises(RuntimeError):
            with prof.profile():
                raise RuntimeError("boom")
        assert prof.ENABLED is False

    def test_phase_context_noop_when_disabled(self):
        with prof.phase("analysis"):
            pass  # must not raise despite no active profiler

    def test_phase_context_records_when_enabled(self, profiler, clock):
        with prof.profile(profiler):
            with prof.phase("analysis"):
                clock.advance(5)
        assert profiler.records["analysis"].calls == 1

    def test_profiled_decorator(self, profiler, clock):
        @prof.profiled("analysis")
        def work():
            clock.advance(7)
            return 42

        assert work() == 42  # disabled: plain call
        with prof.profile(profiler):
            assert work() == 42
        assert profiler.records["analysis"].calls == 1
        assert profiler.records["analysis"].total_ns == 7


class TestEventSkipPhase:
    """The event engine's dead-time bookkeeping is a real profiled
    phase: sparse workloads accumulate it, and it nests under the
    simulate frame without breaking the self-time partition."""

    def _profiled_run(self, compute_latency=12):
        from repro.api import simulate

        from helpers import small_config, small_workload

        profiler = PhaseProfiler()
        with prof.profile(profiler):
            simulate(
                config=small_config(),
                workload=small_workload(compute_latency=compute_latency),
                engine="event",
            )
        return profiler

    def test_sparse_workload_accumulates_event_skip(self):
        profiler = self._profiled_run()
        record = profiler.records[prof.PHASE_EVENT_SKIP]
        assert record.calls > 0
        assert record.self_ns > 0

    def test_event_skip_self_time_still_tiles_wall_time(self):
        profiler = self._profiled_run()
        assert profiler.depth == 0  # every frame closed
        simulate_record = profiler.records[prof.PHASE_SIMULATE]
        # The simulate frame is the sole root, so the per-phase
        # self-times must partition its span exactly — event_skip
        # included, double counting nothing.
        assert profiler.total_profiled_ns() == simulate_record.total_ns
        assert (
            0
            < profiler.records[prof.PHASE_EVENT_SKIP].self_ns
            < simulate_record.total_ns
        )

    def test_cycle_engine_never_records_event_skip(self):
        from repro.api import simulate

        from helpers import small_config, small_workload

        profiler = PhaseProfiler()
        with prof.profile(profiler):
            simulate(
                config=small_config(),
                workload=small_workload(compute_latency=12),
                engine="cycle",
            )
        assert prof.PHASE_EVENT_SKIP not in profiler.records
