"""Prometheus text round-trip and JSON export shape."""

from __future__ import annotations

import json

import pytest

from repro.prof.export import (
    parse_prometheus,
    registry_to_dict,
    to_prometheus,
)
from repro.prof.registry import MetricsRegistry


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    cells = reg.counter("sweep_cells_total", help="cells by source")
    cells.inc(3, source="simulated")
    cells.inc(source="cache")
    reg.gauge("sweep_in_flight", help="busy workers").set(2)
    seconds = reg.histogram(
        "sweep_cell_seconds", help="per-cell wall", buckets=(0.1, 1.0)
    )
    seconds.observe(0.05)
    seconds.observe(0.5)
    seconds.observe(4.25)
    return reg


class TestPrometheusText:
    def test_headers_and_samples(self, registry):
        text = to_prometheus(registry)
        assert "# HELP sweep_cells_total cells by source" in text
        assert "# TYPE sweep_cells_total counter" in text
        assert 'sweep_cells_total{source="simulated"} 3' in text
        assert 'sweep_cells_total{source="cache"} 1' in text
        assert "# TYPE sweep_in_flight gauge" in text
        assert "sweep_in_flight 2" in text
        assert "# TYPE sweep_cell_seconds histogram" in text
        assert 'sweep_cell_seconds_bucket{le="+Inf"} 3' in text
        assert "sweep_cell_seconds_count 3" in text

    def test_round_trip_names_labels_values(self, registry):
        samples = parse_prometheus(to_prometheus(registry))
        assert samples[("sweep_cells_total", (("source", "simulated"),))] == 3
        assert samples[("sweep_cells_total", (("source", "cache"),))] == 1
        assert samples[("sweep_in_flight", ())] == 2
        assert samples[("sweep_cell_seconds_sum", ())] == pytest.approx(4.8)
        assert samples[("sweep_cell_seconds_count", ())] == 3
        assert samples[("sweep_cell_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("sweep_cell_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("sweep_cell_seconds_bucket", (("le", "+Inf"),))] == 3

    def test_label_value_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'quote " backslash \\ newline \n end'
        reg.counter("c").inc(7, label=tricky)
        samples = parse_prometheus(to_prometheus(reg))
        assert samples[("c", (("label", tricky),))] == 7

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not exposition format")

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}


class TestJsonExport:
    def test_shape_matches_bench_metrics_section(self, registry):
        snapshot = registry_to_dict(registry)
        # JSON-serializable as-is (the BENCH file embeds it verbatim).
        json.dumps(snapshot)
        counter = snapshot["sweep_cells_total"]
        assert counter["type"] == "counter"
        assert counter["help"] == "cells by source"
        assert {"labels": {"source": "simulated"}, "value": 3.0} in counter[
            "values"
        ]
        gauge = snapshot["sweep_in_flight"]
        assert gauge["values"] == [{"labels": {}, "value": 2.0}]
        histogram = snapshot["sweep_cell_seconds"]
        (series,) = histogram["values"]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(4.8)
        assert series["buckets"][-1]["le"] == "+Inf"
        assert series["buckets"][-1]["count"] == 3
