"""The worker loop: lease, run, heartbeat, push — and survive the rest.

Workers here run against a real in-process coordinator through
:class:`~repro.dist.transport.LocalTransport` (so every payload crosses
the same JSON byte boundary the wire does) with a stubbed ``run_cell``
— fast, deterministic, no simulations.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import GPUConfig
from repro.core.results import SimulationResult
from repro.dist.coordinator import DistCoordinator
from repro.dist.faultnet import FaultSpec, FaultyTransport
from repro.dist.journal import CellJournal
from repro.dist.transport import LocalTransport, TransportError
from repro.dist.worker import DistWorker
from repro.faults.errors import SimulationHang
from repro.parallel.cells import Cell, execute_cell
from repro.prof.registry import MetricsRegistry


@pytest.fixture(scope="module")
def canned_result():
    cell = Cell(
        label="t",
        workload="bfs",
        config=GPUConfig.preset(
            "naive", num_cores=1, warps_per_core=8, warp_width=8
        ),
        miss_scale=1.0,
    )
    return execute_cell(cell)


def _cells(n=1):
    presets = ["naive", "augmented", "no_tlb", "ideal"]
    return [
        Cell(
            label=f"c{i}",
            workload="bfs",
            config=GPUConfig.preset(
                presets[i % len(presets)],
                num_cores=1,
                warps_per_core=8,
                warp_width=8,
            ),
            miss_scale=1.0,
        )
        for i in range(n)
    ]


def _coordinator(tmp_path, **kwargs):
    defaults = dict(registry=MetricsRegistry(), lease_ttl=30.0)
    defaults.update(kwargs)
    return DistCoordinator(str(tmp_path / "cells.jsonl"), **defaults)


def _worker(coordinator, result, **kwargs):
    defaults = dict(
        worker_id="w",
        poll_s=0.0,
        run_cell=lambda cell: result,
        sleep=lambda _s: None,
    )
    defaults.update(kwargs)
    return DistWorker(LocalTransport(coordinator), **defaults)


class TestHappyPath:
    def test_step_leases_runs_and_pushes(self, tmp_path, canned_result):
        coordinator = _coordinator(tmp_path)
        keys = coordinator.submit_cells(_cells(1))
        worker = _worker(coordinator, canned_result)
        assert worker.step() == "ran"
        assert worker.cells_done == 1
        assert coordinator.result_strings(keys) == [
            canned_result.canonical_json()
        ]
        assert worker.step() == "idle"
        coordinator.close()

    def test_run_drains_and_exits_on_idle(self, tmp_path, canned_result):
        coordinator = _coordinator(tmp_path)
        keys = coordinator.submit_cells(_cells(3))
        worker = _worker(coordinator, canned_result)
        done = worker.run(idle_exit_s=0.0)
        assert done == 3
        assert coordinator.all_terminal()
        counts = CellJournal.terminal_counts(str(tmp_path / "cells.jsonl"))
        assert all(counts.get(k) == 1 for k in keys)
        coordinator.close()


class TestFailurePaths:
    def test_structured_error_is_reported_as_fail(
        self, tmp_path, canned_result
    ):
        coordinator = _coordinator(tmp_path, max_attempts=1)
        keys = coordinator.submit_cells(_cells(1))

        def explode(cell):
            raise SimulationHang(
                "no forward progress", diagnostics={"series": "t"}
            )

        worker = _worker(coordinator, canned_result, run_cell=explode)
        assert worker.step() == "ran"
        assert worker.cells_failed == 1
        states = {c["key"]: c["state"] for c in coordinator.cell_states()}
        assert states[keys[0]] == "failed"
        coordinator.close()

    def test_unexpected_exception_does_not_kill_the_worker(
        self, tmp_path, canned_result
    ):
        coordinator = _coordinator(tmp_path, max_attempts=1)
        coordinator.submit_cells(_cells(1))

        def explode(cell):
            raise RuntimeError("cosmic ray")

        worker = _worker(coordinator, canned_result, run_cell=explode)
        assert worker.step() == "ran"
        assert worker.cells_failed == 1
        coordinator.close()

    def test_unreachable_coordinator_backs_off(self, canned_result):
        class Refusing:
            def request(self, method, path, payload=None):
                raise TransportError("refused")

        slept = []
        worker = DistWorker(
            Refusing(),
            worker_id="w",
            run_cell=lambda cell: canned_result,
            sleep=slept.append,
        )
        assert worker.step() == "unreachable"
        assert worker.step() == "unreachable"
        assert len(slept) == 2
        # Decorrelated jitter: delays grow from the base, stay bounded.
        assert all(0 < delay <= 2.0 for delay in slept)


class TestPushRetries:
    def test_retryable_400_repushes_until_accepted(
        self, tmp_path, canned_result
    ):
        """A torn push (digest-mismatch 400 + retry) is re-sent."""
        coordinator = _coordinator(tmp_path)
        keys = coordinator.submit_cells(_cells(1))
        inner = LocalTransport(coordinator)
        tears = {"left": 2}

        class TearFirst:
            """Tears the first N /dist/complete bodies, then heals."""

            def request(self, method, path, payload=None):
                if path == "/dist/complete" and tears["left"] > 0:
                    tears["left"] -= 1
                    return inner.request(
                        method,
                        path,
                        dict(payload, result=payload["result"][:10]),
                    )
                return inner.request(method, path, payload)

        worker = DistWorker(
            TearFirst(),
            worker_id="w",
            poll_s=0.0,
            run_cell=lambda cell: canned_result,
            sleep=lambda _s: None,
        )
        assert worker.step() == "ran"
        assert worker.cells_done == 1
        assert tears["left"] == 0
        assert coordinator.result_strings(keys) == [
            canned_result.canonical_json()
        ]
        coordinator.close()

    def test_lost_responses_double_push_harmlessly(
        self, tmp_path, canned_result
    ):
        """drop_response on the completion push → the worker re-pushes;
        the coordinator's fencing makes the duplicate a no-op."""
        coordinator = _coordinator(tmp_path)
        keys = coordinator.submit_cells(_cells(1))
        drops = {"left": 1}
        inner = LocalTransport(coordinator)

        class DropOnce:
            def request(self, method, path, payload=None):
                status, body = inner.request(method, path, payload)
                if path == "/dist/complete" and drops["left"] > 0:
                    drops["left"] -= 1
                    raise TransportError("response lost")
                return status, body

        worker = DistWorker(
            DropOnce(),
            worker_id="w",
            poll_s=0.0,
            run_cell=lambda cell: canned_result,
            sleep=lambda _s: None,
        )
        assert worker.step() == "ran"
        # First delivery landed (then its response was lost), so the
        # re-push is a duplicate — discarded, worker counts abandoned.
        assert worker.cells_done + worker.cells_abandoned == 1
        counts = CellJournal.terminal_counts(str(tmp_path / "cells.jsonl"))
        assert counts.get(keys[0]) == 1
        assert coordinator.result_strings(keys) == [
            canned_result.canonical_json()
        ]
        coordinator.close()


class TestFencedWorker:
    def test_fenced_heartbeat_abandons_the_cell(
        self, tmp_path, canned_result
    ):
        """If the coordinator re-leases mid-run, the worker must not
        push (its push would be discarded anyway)."""
        coordinator = _coordinator(tmp_path, lease_ttl=30.0)
        coordinator.submit_cells(_cells(1))
        transport = LocalTransport(coordinator)
        worker = DistWorker(
            transport,
            worker_id="w",
            poll_s=0.0,
            sleep=lambda _s: None,
        )

        def run_and_get_fenced(cell):
            # Simulate the lease being revoked while the cell runs.
            lease = coordinator.leases.current(
                coordinator.cell_states()[0]["key"]
            )
            coordinator.leases.revoke(lease.job_id)
            # The worker's own heartbeat discovers the fence.
            status, body = transport.request(
                "POST",
                "/dist/heartbeat",
                {"worker": "w", "key": lease.job_id,
                 "attempt": lease.attempt},
            )
            assert body == {"ok": False}
            return canned_result

        worker.run_cell = run_and_get_fenced
        worker.step()
        # The push (if any) must have been discarded — never accepted.
        assert worker.cells_done == 0
        states = coordinator.counts()
        assert states["done"] == 0
        coordinator.close()


class TestFleetByteIdentity:
    def test_two_workers_reassemble_byte_identical(self, tmp_path):
        """Real simulations, two workers, seeded flaky channel: the
        reassembled sweep matches the serial oracle byte for byte."""
        cells = _cells(3)
        oracle = [execute_cell(cell).canonical_json() for cell in cells]
        # duplicate/drop_response on the lease route can strand a granted
        # lease (the worker never sees its response) — a short TTL plus
        # maintain() in the drive loop lets those orphans expire back
        # into the queue, exactly as the real coordinator tick would.
        coordinator = _coordinator(
            tmp_path, lease_ttl=0.2, max_attempts=50
        )
        keys = coordinator.submit_cells(cells)
        spec = FaultSpec(duplicate=0.3, drop_response=0.2)
        workers = [
            DistWorker(
                FaultyTransport(
                    LocalTransport(coordinator), spec, seed=i,
                    sleep=lambda _s: None,
                ),
                worker_id=f"w{i}",
                poll_s=0.0,
                push_retries=16,
                sleep=lambda _s: None,
            )
            for i in range(2)
        ]
        guard = 0
        while not coordinator.all_terminal():
            for worker in workers:
                worker.step()
            coordinator.maintain()
            time.sleep(0.01)
            guard += 1
            assert guard < 400, "fleet never drained"
        assert coordinator.result_strings(keys) == oracle
        counts = CellJournal.terminal_counts(str(tmp_path / "cells.jsonl"))
        assert all(counts.get(k) == 1 for k in keys)
        coordinator.close()
