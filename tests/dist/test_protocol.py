"""Wire protocol: cells round-trip exactly, garbage is rejected."""

from __future__ import annotations

import pytest

from repro.core.config import GPUConfig
from repro.dist.protocol import (
    ProtocolError,
    cell_from_wire,
    cell_to_wire,
    result_digest,
    wire_config_hash,
)
from repro.core.config import config_hash
from repro.parallel.cells import Cell, key_of


def _cell(preset="naive", workload="bfs", miss_scale=1.0):
    return Cell(
        label="t",
        workload=workload,
        config=GPUConfig.preset(
            preset, num_cores=1, warps_per_core=8, warp_width=8
        ),
        miss_scale=miss_scale,
    )


class TestCellWire:
    def test_round_trip_preserves_identity(self):
        cell = _cell()
        rebuilt = cell_from_wire(cell_to_wire(cell))
        assert key_of(rebuilt) == key_of(cell)
        assert rebuilt.workload == cell.workload
        assert rebuilt.label == cell.label
        assert rebuilt.miss_scale == cell.miss_scale
        assert config_hash(rebuilt.config) == config_hash(cell.config)

    def test_round_trip_preserves_miss_scale(self):
        cell = _cell(miss_scale=0.5)
        assert cell_from_wire(cell_to_wire(cell)).miss_scale == 0.5

    def test_wire_config_hash_matches_local(self):
        cell = _cell("augmented")
        assert wire_config_hash(cell_to_wire(cell)) == config_hash(
            cell.config
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: w.pop("workload"),
            lambda w: w.pop("config"),
            lambda w: w.pop("label"),
            lambda w: w.update(config="not-a-dict"),
            lambda w: w.update(miss_scale="lots"),
            lambda w: w.update(form="spiral"),
        ],
    )
    def test_malformed_wire_raises_protocol_error(self, mutate):
        wire = cell_to_wire(_cell())
        mutate(wire)
        with pytest.raises(ProtocolError):
            cell_from_wire(wire)

    def test_non_dict_wire_raises(self):
        with pytest.raises(ProtocolError):
            cell_from_wire(["not", "a", "cell"])


class TestResultDigest:
    def test_deterministic_and_prefixed(self):
        digest = result_digest('{"a": 1}')
        assert digest == result_digest('{"a": 1}')
        assert digest.startswith("sha256:")

    def test_sensitive_to_every_byte(self):
        assert result_digest('{"a": 1}') != result_digest('{"a": 2}')
        assert result_digest("x") != result_digest("x ")
