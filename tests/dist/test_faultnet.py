"""The seeded fault injector: deterministic, and faithful to the wire.

The injector sits on the ``request_raw`` byte seam, so a torn body is
parsed exactly the way a real HTTP server would parse it (invalid JSON
→ 400), and a one-way partition really does mutate the far side's
state while the near side sees only a connection error.
"""

from __future__ import annotations

import json

import pytest

from repro.dist.faultnet import FaultSpec, FaultyTransport
from repro.dist.transport import TransportError


class Recorder:
    """An inner transport that logs every delivered request."""

    def __init__(self):
        self.delivered = []

    def request_raw(self, method, path, body):
        parsed = None
        if body is not None:
            try:
                parsed = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.delivered.append((method, path, "TORN"))
                return 400, {"error": "request body is not valid JSON"}
        self.delivered.append((method, path, parsed))
        return 200, {"ok": True, "echo": parsed}


class TestFaultSpec:
    def test_parse_round_trip(self):
        spec = FaultSpec.parse("refuse=0.1, tear=0.05,drop_response=0.2")
        assert spec.refuse == 0.1
        assert spec.tear == 0.05
        assert spec.drop_response == 0.2
        assert spec.duplicate == 0.0

    def test_parse_rejects_unknown_fault(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("gremlins=1.0")

    def test_parse_rejects_missing_value(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("refuse")


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        spec = FaultSpec(refuse=0.3, tear=0.3, duplicate=0.3)

        def run(seed):
            inner = Recorder()
            channel = FaultyTransport(
                inner, spec, seed=seed, sleep=lambda _s: None
            )
            outcomes = []
            for index in range(50):
                try:
                    status, _ = channel.request(
                        "POST", "/x", {"i": index}
                    )
                    outcomes.append(status)
                except TransportError:
                    outcomes.append("refused")
            return outcomes, dict(channel.injected)

        first = run(42)
        assert first == run(42)
        assert first != run(43)


class TestFaults:
    def test_refuse_never_delivers(self):
        inner = Recorder()
        channel = FaultyTransport(inner, FaultSpec(refuse=1.0), seed=0)
        with pytest.raises(TransportError):
            channel.request("POST", "/x", {"a": 1})
        assert inner.delivered == []
        assert channel.injected["refuse"] == 1

    def test_tear_delivers_invalid_json(self):
        inner = Recorder()
        channel = FaultyTransport(inner, FaultSpec(tear=1.0), seed=0)
        status, body = channel.request("POST", "/x", {"payload": "x" * 64})
        assert status == 400
        assert inner.delivered == [("POST", "/x", "TORN")]

    def test_duplicate_delivers_twice_one_response(self):
        inner = Recorder()
        channel = FaultyTransport(inner, FaultSpec(duplicate=1.0), seed=0)
        status, body = channel.request("POST", "/x", {"a": 1})
        assert status == 200
        assert len(inner.delivered) == 2
        assert inner.delivered[0] == inner.delivered[1]

    def test_drop_response_delivers_but_raises(self):
        inner = Recorder()
        channel = FaultyTransport(
            inner, FaultSpec(drop_response=1.0), seed=0
        )
        with pytest.raises(TransportError):
            channel.request("POST", "/x", {"a": 1})
        # The far side processed it — the at-least-once double-push case.
        assert len(inner.delivered) == 1

    def test_delay_sleeps_then_delivers(self):
        inner = Recorder()
        slept = []
        channel = FaultyTransport(
            inner,
            FaultSpec(delay=1.0, delay_s=0.5),
            seed=0,
            sleep=slept.append,
        )
        status, _ = channel.request("POST", "/x", {"a": 1})
        assert status == 200 and slept == [0.5]


class TestPartitions:
    def test_total_partition_blocks_both_ways(self):
        inner = Recorder()
        channel = FaultyTransport(inner, FaultSpec(), seed=0)
        channel.partition()
        with pytest.raises(TransportError):
            channel.request("GET", "/x", None)
        assert inner.delivered == []
        channel.heal()
        status, _ = channel.request("GET", "/x", None)
        assert status == 200

    def test_one_way_partition_mutates_far_side(self):
        inner = Recorder()
        channel = FaultyTransport(inner, FaultSpec(), seed=0)
        channel.partition(one_way=True)
        with pytest.raises(TransportError):
            channel.request("POST", "/x", {"a": 1})
        # The request LANDED; only the response was lost.
        assert inner.delivered == [("POST", "/x", {"a": 1})]
        assert channel.injected["partition_oneway"] == 1
