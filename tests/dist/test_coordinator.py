"""The coordinator's verification pipeline, fencing, and recovery.

Everything here drives :class:`~repro.dist.coordinator.DistCoordinator`
in-process with a fake clock and a canned (but valid) result string —
no sockets, no real simulations — so the fencing semantics are pinned
in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.core.config import GPUConfig, config_hash
from repro.dist.coordinator import DistCoordinator
from repro.dist.journal import CellJournal
from repro.dist.protocol import cell_to_wire, result_digest
from repro.faults.errors import SimulationError
from repro.parallel.cells import Cell, execute_cell, key_of
from repro.prof.registry import MetricsRegistry


@pytest.fixture(scope="module")
def canned():
    """One real tiny simulation, shared: a valid result string plus
    the cell that produced it."""
    cell = Cell(
        label="t",
        workload="bfs",
        config=GPUConfig.preset(
            "naive", num_cores=1, warps_per_core=8, warp_width=8
        ),
        miss_scale=1.0,
    )
    return cell, execute_cell(cell).canonical_json()


def _cells(n=2):
    presets = ["naive", "augmented", "no_tlb", "ideal"]
    return [
        Cell(
            label=f"c{i}",
            workload="bfs",
            config=GPUConfig.preset(
                presets[i % len(presets)],
                num_cores=1,
                warps_per_core=8,
                warp_width=8,
            ),
            miss_scale=1.0,
        )
        for i in range(n)
    ]


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _coordinator(tmp_path, clock, **kwargs):
    defaults = dict(
        registry=MetricsRegistry(),
        lease_ttl=10.0,
        max_attempts=3,
        clock=clock,
    )
    defaults.update(kwargs)
    return DistCoordinator(str(tmp_path / "cells.jsonl"), **defaults)


def _push(coordinator, lease, result_json, cell, worker="w"):
    return coordinator.complete(
        worker,
        lease["key"],
        lease["attempt"],
        result_json,
        result_digest(result_json),
        config_hash(cell.config),
    )


class TestShardAndLease:
    def test_submit_is_idempotent(self, tmp_path):
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, clock)
        cells = _cells(2)
        keys = coordinator.submit_cells(cells)
        assert keys == [key_of(c) for c in cells]
        assert coordinator.submit_cells(cells) == keys
        assert coordinator.counts()["queued"] == 2
        coordinator.close()

    def test_lease_hands_out_cells_in_submission_order(self, tmp_path):
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, clock)
        keys = coordinator.submit_cells(_cells(2))
        first = coordinator.lease("w1")
        second = coordinator.lease("w2")
        assert [first["key"], second["key"]] == keys
        assert first["attempt"] == 1
        assert coordinator.lease("w3") is None  # nothing left
        coordinator.close()


class TestVerificationPipeline:
    def test_unknown_key_is_rejected(self, tmp_path, canned):
        _, result_json = canned
        coordinator = _coordinator(tmp_path, FakeClock())
        coordinator.submit_cells(_cells(1))
        out = coordinator.complete(
            "w", "no-such-cell", 1, result_json,
            result_digest(result_json), None,
        )
        assert out == {
            "accepted": False, "reason": "unknown", "retry": False,
        }
        coordinator.close()

    def test_torn_result_fails_digest_and_asks_for_repush(
        self, tmp_path, canned
    ):
        cell, result_json = canned
        registry = MetricsRegistry()
        coordinator = _coordinator(
            tmp_path, FakeClock(), registry=registry
        )
        coordinator.submit_cells([cell])
        lease = coordinator.lease("w")
        torn = dict(lease)
        out = coordinator.complete(
            "w", torn["key"], torn["attempt"],
            result_json[: len(result_json) // 2],
            result_digest(result_json),  # digest of the TRUE bytes
            config_hash(cell.config),
        )
        assert out["reason"] == "digest" and out["retry"] is True
        assert registry.counter(
            "dist_rejected_results_total"
        ).value(reason="digest") == 1
        # The worker still holds the true bytes; the re-push lands.
        assert _push(coordinator, lease, result_json, cell)["accepted"]
        coordinator.close()

    def test_config_hash_mismatch_is_rejected_permanently(
        self, tmp_path, canned
    ):
        cell, result_json = canned
        coordinator = _coordinator(tmp_path, FakeClock())
        coordinator.submit_cells([cell])
        lease = coordinator.lease("w")
        out = coordinator.complete(
            "w", lease["key"], lease["attempt"], result_json,
            result_digest(result_json), "sha256:wrong",
        )
        assert out["reason"] == "config_hash" and out["retry"] is False
        coordinator.close()

    def test_malformed_result_string_is_rejected(self, tmp_path, canned):
        cell, _ = canned
        coordinator = _coordinator(tmp_path, FakeClock())
        coordinator.submit_cells([cell])
        lease = coordinator.lease("w")
        garbage = '{"not": "a simulation result"}'
        out = coordinator.complete(
            "w", lease["key"], lease["attempt"], garbage,
            result_digest(garbage), config_hash(cell.config),
        )
        assert out["reason"] == "malformed"
        coordinator.close()

    def test_duplicate_push_is_stale_and_counted(self, tmp_path, canned):
        cell, result_json = canned
        registry = MetricsRegistry()
        coordinator = _coordinator(
            tmp_path, FakeClock(), registry=registry
        )
        coordinator.submit_cells([cell])
        lease = coordinator.lease("w")
        assert _push(coordinator, lease, result_json, cell)["accepted"]
        replay = _push(coordinator, lease, result_json, cell)
        assert replay == {
            "accepted": False, "reason": "duplicate", "retry": False,
        }
        assert registry.counter(
            "dist_stale_results_total"
        ).value(reason="duplicate") == 1
        coordinator.close()

    def test_fenced_attempt_push_is_stale(self, tmp_path, canned):
        cell, result_json = canned
        clock = FakeClock()
        registry = MetricsRegistry()
        coordinator = _coordinator(
            tmp_path, clock, registry=registry, lease_ttl=5.0
        )
        coordinator.submit_cells([cell])
        old = coordinator.lease("w1")
        clock.advance(6.0)  # lease lapses
        coordinator.maintain()
        clock.advance(5.0)  # clear any re-queue backoff
        fresh = coordinator.lease("w2")
        assert fresh["attempt"] == old["attempt"] + 1
        late = _push(coordinator, old, result_json, cell, worker="w1")
        assert late == {
            "accepted": False, "reason": "fenced", "retry": False,
        }
        assert registry.counter(
            "dist_stale_results_total"
        ).value(reason="fenced") == 1
        # The live attempt still commits.
        assert _push(coordinator, fresh, result_json, cell, "w2")[
            "accepted"
        ]
        coordinator.close()


class TestHeartbeats:
    def test_heartbeat_renews_live_lease(self, tmp_path, canned):
        cell, _ = canned
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, clock, lease_ttl=5.0)
        coordinator.submit_cells([cell])
        lease = coordinator.lease("w")
        clock.advance(4.0)
        assert coordinator.heartbeat("w", lease["key"], lease["attempt"])
        clock.advance(4.0)  # past the original expiry, inside the renewal
        coordinator.maintain()
        assert coordinator.counts()["running"] == 1
        coordinator.close()

    def test_stale_attempt_heartbeat_is_fenced(self, tmp_path, canned):
        cell, _ = canned
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, clock, lease_ttl=5.0)
        coordinator.submit_cells([cell])
        lease = coordinator.lease("w")
        clock.advance(6.0)
        coordinator.maintain()
        assert not coordinator.heartbeat(
            "w", lease["key"], lease["attempt"]
        )
        coordinator.close()


class TestExpiryAndBudget:
    def test_expired_lease_requeues_with_backoff(self, tmp_path, canned):
        cell, _ = canned
        clock = FakeClock()
        registry = MetricsRegistry()
        coordinator = _coordinator(
            tmp_path, clock, registry=registry, lease_ttl=5.0
        )
        coordinator.submit_cells([cell])
        coordinator.lease("w")
        clock.advance(6.0)
        coordinator.maintain()
        assert coordinator.counts()["queued"] == 1
        assert registry.counter(
            "dist_lease_expirations_total"
        ).value() == 1
        # not_before gates the re-lease until the backoff delay passes.
        assert coordinator.lease("w") is None
        clock.advance(5.0)
        assert coordinator.lease("w") is not None
        coordinator.close()

    def test_budget_exhaustion_fails_structurally(self, tmp_path, canned):
        cell, _ = canned
        clock = FakeClock()
        coordinator = _coordinator(
            tmp_path, clock, lease_ttl=5.0, max_attempts=2
        )
        keys = coordinator.submit_cells([cell])
        for _ in range(2):
            clock.advance(5.0)
            assert coordinator.lease("w") is not None
            clock.advance(6.0)
            coordinator.maintain()
        counts = coordinator.counts()
        assert counts["failed"] == 1
        with pytest.raises(SimulationError) as info:
            coordinator.assemble(keys)
        assert info.value.diagnostics["attempts"] == 2
        assert info.value.diagnostics["cell_key"] == keys[0]
        coordinator.close()

    def test_worker_reported_failure_consumes_budget(
        self, tmp_path, canned
    ):
        cell, _ = canned
        clock = FakeClock()
        coordinator = _coordinator(
            tmp_path, clock, lease_ttl=5.0, max_attempts=1
        )
        keys = coordinator.submit_cells([cell])
        lease = coordinator.lease("w")
        out = coordinator.fail(
            "w", lease["key"], lease["attempt"],
            "PTWError", "every walk failed", {"series": "t"},
        )
        assert out["accepted"]
        with pytest.raises(SimulationError) as info:
            coordinator.assemble(keys)
        assert "every walk failed" in str(info.value)
        coordinator.close()


class TestRestartRecovery:
    def test_interrupted_cells_requeue_and_results_survive(
        self, tmp_path, canned
    ):
        cell, result_json = canned
        others = _cells(2)
        clock = FakeClock()
        first = _coordinator(tmp_path, clock)
        keys = first.submit_cells([cell] + others)
        lease = first.lease("w")
        assert _push(first, lease, result_json, cell)["accepted"]
        running = first.lease("w")  # mid-lease when the process dies
        assert running is not None
        first.close()

        second = _coordinator(tmp_path, clock)
        counts = second.counts()
        assert counts["done"] == 1
        assert counts["queued"] == 2  # the interrupted one re-queued
        assert counts["running"] == 0
        assert second.result_strings([keys[0]]) == [result_json]
        # Replay does not double-count the done cell.
        journal_counts = CellJournal.terminal_counts(
            str(tmp_path / "cells.jsonl")
        )
        assert journal_counts.get(keys[0]) == 1
        second.close()

    def test_byte_identical_result_string_survives_replay(
        self, tmp_path, canned
    ):
        cell, result_json = canned
        clock = FakeClock()
        first = _coordinator(tmp_path, clock)
        keys = first.submit_cells([cell])
        lease = first.lease("w")
        _push(first, lease, result_json, cell)
        first.close()
        second = _coordinator(tmp_path, clock)
        assert second.result_strings(keys) == [result_json]
        assert (
            second.assemble(keys)[0].canonical_json() == result_json
        )
        second.close()


class TestHttpSplice:
    def test_routes_round_trip(self, tmp_path, canned):
        cell, result_json = canned
        coordinator = _coordinator(tmp_path, FakeClock())
        status, body = coordinator.handle(
            "POST", "/dist/shard", {"cells": [cell_to_wire(cell)]}
        )
        assert status == 200
        keys = body["keys"]
        status, body = coordinator.handle(
            "POST", "/dist/lease", {"worker": "w"}
        )
        lease = body["lease"]
        status, body = coordinator.handle(
            "POST",
            "/dist/complete",
            {
                "worker": "w",
                "key": lease["key"],
                "attempt": lease["attempt"],
                "config_hash": config_hash(cell.config),
                "digest": result_digest(result_json),
                "result": result_json,
            },
        )
        assert status == 200 and body["accepted"]
        status, body = coordinator.handle(
            "POST", "/dist/assemble", {"keys": keys}
        )
        assert status == 200 and body["complete"]
        assert body["cells"][0]["result"] == result_json
        coordinator.close()

    def test_bad_payloads_are_400(self, tmp_path):
        coordinator = _coordinator(tmp_path, FakeClock())
        assert coordinator.handle("POST", "/dist/lease", {})[0] == 400
        assert coordinator.handle(
            "POST", "/dist/shard", {"cells": []}
        )[0] == 400
        assert coordinator.handle(
            "POST", "/dist/shard", {"cells": ["junk"]}
        )[0] == 400
        assert coordinator.handle("POST", "/dist/nope", {})[0] == 404
        assert coordinator.handle("GET", "/dist/status", None)[0] == 200
        coordinator.close()
