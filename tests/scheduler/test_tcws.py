"""TLB-conscious warp scheduling."""

from repro.gpu.scheduler.tcws import TCWSScheduler


def make(**kwargs):
    kwargs.setdefault("lls_cutoff", 100)
    return TCWSScheduler(4, **kwargs)


class TestTLBDrivenScoring:
    def test_mru_hit_scores_nothing(self):
        sched = make(lru_hit_weights=(1, 2, 4, 8))
        sched.on_tlb_hit(0, vpn=5, lru_depth=0)
        assert sched.scores[0] == 0

    def test_deep_hit_scores_by_depth(self):
        sched = make(lru_hit_weights=(1, 2, 4, 8))
        sched.on_tlb_hit(0, vpn=5, lru_depth=3)
        assert sched.scores[0] == 7  # 8 - 1 (relative to MRU weight)

    def test_depth_beyond_weights_clamps(self):
        sched = make(lru_hit_weights=(1, 2))
        sched.on_tlb_hit(0, vpn=5, lru_depth=9)
        assert sched.scores[0] == 1

    def test_eviction_feeds_owner_vta(self):
        sched = make()
        sched.on_tlb_evict(vpn=5, owner_warp=2)
        assert sched.vta.probe(2, 5)

    def test_eviction_with_unknown_owner_ignored(self):
        sched = make()
        sched.on_tlb_evict(vpn=5, owner_warp=None)
        assert sched.vta.probes == 0

    def test_miss_with_vta_hit_scores(self):
        sched = make(lru_hit_weights=(1, 2, 4, 8))
        sched.on_tlb_evict(vpn=5, owner_warp=0)
        sched.on_tlb_miss(0, vpn=5)
        assert sched.scores[0] == 8  # max weight by default
        assert sched.tlb_vta_hits == 1

    def test_miss_without_vta_hit_silent(self):
        sched = make()
        sched.on_tlb_miss(0, vpn=5)
        assert sched.scores[0] == 0

    def test_default_vta_is_half_ccws_size(self):
        sched = TCWSScheduler(48)
        assert sched.storage_tags() == 48 * 8
