"""Baseline warp schedulers."""

from repro.gpu.scheduler.base import (
    Candidate,
    GreedyThenOldestScheduler,
    RoundRobinScheduler,
)


def cands(*warp_ids, mem=False):
    return [Candidate(w, mem) for w in warp_ids]


class TestRoundRobin:
    def test_rotates(self):
        sched = RoundRobinScheduler(4)
        picks = [sched.select(cands(0, 1, 2, 3), now=i, inflight=False) for i in range(4)]
        assert picks == [0, 1, 2, 3]

    def test_skips_unready(self):
        sched = RoundRobinScheduler(4)
        assert sched.select(cands(2, 3), now=0, inflight=False) == 2

    def test_wraps(self):
        sched = RoundRobinScheduler(4)
        sched.select(cands(3), 0, False)
        assert sched.select(cands(0, 3), 1, False) == 0


class TestGTO:
    def test_greedy_sticks_to_current(self):
        sched = GreedyThenOldestScheduler(4)
        first = sched.select(cands(0, 1, 2), now=0, inflight=False)
        again = sched.select(cands(0, 1, 2), now=1, inflight=False)
        assert first == again

    def test_falls_back_to_oldest(self):
        sched = GreedyThenOldestScheduler(4)
        first = sched.select(cands(1, 2), 0, False)
        remaining = [w for w in (1, 2) if w != first]
        nxt = sched.select(cands(*remaining), 1, False)
        assert nxt in remaining

    def test_done_warp_released(self):
        sched = GreedyThenOldestScheduler(4)
        picked = sched.select(cands(0), 0, False)
        sched.on_warp_done(picked)
        assert sched.select(cands(1), 1, False) == 1
