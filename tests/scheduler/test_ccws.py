"""CCWS lost-locality scheduling."""

from repro.gpu.scheduler.base import Candidate
from repro.gpu.scheduler.ccws import CCWSScheduler


def make(num_warps=4, cutoff=4, **kwargs):
    return CCWSScheduler(num_warps, lls_cutoff=cutoff, min_active_warps=1, **kwargs)


def mem_cands(*warp_ids):
    return [Candidate(w, True) for w in warp_ids]


class TestScoring:
    def test_vta_hit_bumps_score(self):
        sched = make()
        sched.on_l1_access(0, 0x100, hit=False, tlb_missed=False,
                           evicted_line=None, evicted_warp=None)
        assert sched.scores[0] == 0  # no VTA entry yet
        sched.on_l1_access(1, 0x200, hit=False, tlb_missed=False,
                           evicted_line=0x100, evicted_warp=0)
        sched.on_l1_access(0, 0x100, hit=False, tlb_missed=False,
                           evicted_line=None, evicted_warp=None)
        assert sched.scores[0] == 1
        assert sched.vta_hits == 1

    def test_hits_do_not_score(self):
        sched = make()
        sched.on_l1_access(0, 0x100, hit=True, tlb_missed=False,
                           evicted_line=None, evicted_warp=None)
        assert sum(sched.scores) == 0

    def test_done_warp_score_cleared(self):
        sched = make()
        sched.scores[2] = 10
        sched.on_warp_done(2)
        assert sched.scores[2] == 0

    def test_scores_decay(self):
        sched = make()
        sched.scores[0] = 8.0
        sched._decay(now=sched.score_halflife)
        assert sched.scores[0] < 8.0


class TestThrottling:
    def test_unrestricted_below_cutoff(self):
        sched = make(cutoff=100)
        pick = sched.select(mem_cands(0, 1, 2, 3), now=0, inflight=False)
        assert pick in (0, 1, 2, 3)

    def test_restricts_to_high_scorers(self):
        sched = make(cutoff=2)
        sched.scores[3] = 10.0
        # Warp 3 has lost the most locality: memory issue is restricted
        # to it while the total exceeds the cutoff.
        pick = sched.select(mem_cands(0, 1, 2, 3), now=0, inflight=False)
        assert pick == 3

    def test_declines_when_pool_not_ready(self):
        sched = make(cutoff=2)
        sched.scores[3] = 10.0
        pick = sched.select(mem_cands(0, 1), now=0, inflight=True)
        assert pick is None
        assert sched.throttled_cycles == 1

    def test_never_deadlocks_without_inflight(self):
        sched = make(cutoff=2)
        sched.scores[3] = 10.0
        pick = sched.select(mem_cands(0, 1), now=0, inflight=False)
        assert pick in (0, 1)

    def test_compute_never_restricted(self):
        sched = make(cutoff=2)
        sched.scores[3] = 10.0
        pick = sched.select([Candidate(0, False)], now=0, inflight=True)
        assert pick == 0
