"""TLB-aware CCWS scoring."""

import pytest

from repro.gpu.scheduler.ta_ccws import TACCWSScheduler


def make(weight=4):
    return TACCWSScheduler(4, tlb_miss_weight=weight, lls_cutoff=100)


class TestWeights:
    def test_tlb_missing_access_scores_heavier(self):
        sched = make(weight=4)
        sched.vta.insert(0, 0x100)
        sched.on_l1_access(0, 0x100, hit=False, tlb_missed=True,
                           evicted_line=None, evicted_warp=None)
        assert sched.scores[0] == 4

    def test_tlb_hitting_access_scores_base(self):
        sched = make(weight=4)
        sched.vta.insert(0, 0x100)
        sched.on_l1_access(0, 0x100, hit=False, tlb_missed=False,
                           evicted_line=None, evicted_warp=None)
        assert sched.scores[0] == 1

    def test_weight_must_be_power_of_two(self):
        # Hardware updates scores with shifters (Section 7.2).
        with pytest.raises(ValueError):
            TACCWSScheduler(4, tlb_miss_weight=3)

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            TACCWSScheduler(4, tlb_miss_weight=0)
