"""Intra-warp memory coalescer."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu.coalescer import coalesce


class TestCoalescing:
    def test_same_line_coalesces(self):
        result = coalesce([0x1000, 0x1004, 0x1040])
        assert result.lines == (0x1000,)
        assert result.vpns == (1,)
        assert result.page_divergence == 1

    def test_distinct_lines_same_page(self):
        result = coalesce([0x1000, 0x1080])
        assert result.lines == (0x1000, 0x1080)
        assert result.page_divergence == 1

    def test_page_divergence(self):
        result = coalesce([0x1000, 0x2000, 0x3000])
        assert result.page_divergence == 3

    def test_inactive_lanes_skipped(self):
        result = coalesce([None, 0x1000, None])
        assert result.lines == (0x1000,)

    def test_lines_by_vpn(self):
        result = coalesce([0x1000, 0x1080, 0x2000])
        assert result.lines_by_vpn[1] == (0x1000, 0x1080)
        assert result.lines_by_vpn[2] == (0x2000,)

    def test_first_lane_order_preserved(self):
        result = coalesce([0x3000, 0x1000, 0x2000])
        assert result.vpns == (3, 1, 2)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            coalesce([0x1000], line_bytes=100)

    def test_2mb_page_shift(self):
        result = coalesce([0x1000, 0x200000 + 16], page_shift=21)
        assert result.page_divergence == 2


addresses = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 30)),
    min_size=1,
    max_size=32,
).filter(lambda xs: any(x is not None for x in xs))


@given(addresses)
def test_every_address_covered_exactly_once(addrs):
    result = coalesce(addrs)
    active = [a for a in addrs if a is not None]
    # Every active address falls in exactly one emitted line and page.
    for addr in active:
        assert (addr & ~127) in result.lines
        assert addr >> 12 in result.vpns
    # No duplicate lines or pages.
    assert len(set(result.lines)) == len(result.lines)
    assert len(set(result.vpns)) == len(result.vpns)
    # lines_by_vpn partitions the lines.
    flat = [l for lines in result.lines_by_vpn.values() for l in lines]
    assert sorted(flat) == sorted(result.lines)


@given(addresses)
def test_page_divergence_bounds(addrs):
    result = coalesce(addrs)
    active = {a for a in addrs if a is not None}
    assert 1 <= result.page_divergence <= len(active)
