"""The shader core's issue loop and memory unit."""

from helpers import small_config, small_workload

from repro.core.config import PTWConfig, TLBConfig
from repro.core.simulator import Simulator


def run(config, workload=None, form=None):
    wl = workload or small_workload()
    work = wl.build(config, form=form)
    sim = Simulator(config, work, wl.name)
    return sim, sim.run()


class TestExecution:
    def test_all_instructions_retire(self):
        config = small_config(tlb=TLBConfig(enabled=False))
        _, result = run(config)
        expected = 8 * 20  # warps x instructions per warp
        assert result.stats.instructions == expected

    def test_cycles_positive_and_bounded(self):
        config = small_config(tlb=TLBConfig(enabled=False))
        _, result = run(config)
        assert 0 < result.cycles < 10_000_000

    def test_deterministic(self):
        config = small_config(tlb=TLBConfig(enabled=False))
        _, a = run(config)
        _, b = run(config)
        assert a.cycles == b.cycles

    def test_tlb_stats_collected(self):
        config = small_config()
        _, result = run(config)
        assert result.stats.tlb_lookups > 0
        assert result.stats.tlb_hits + result.stats.tlb_misses == result.stats.tlb_lookups
        assert result.stats.walks > 0

    def test_page_divergence_tracked(self):
        config = small_config()
        _, result = run(config)
        assert result.stats.average_page_divergence >= 1.0
        assert result.stats.page_divergence_max <= 8  # warp width

    def test_no_tlb_beats_naive_tlb(self):
        base_cfg = small_config(tlb=TLBConfig(enabled=False))
        _, base = run(base_cfg)
        naive_cfg = small_config(tlb=TLBConfig(entries=16, associativity=4, ports=3))
        _, naive = run(naive_cfg)
        assert naive.cycles > base.cycles

    def test_warmup_reduces_measured_cycles(self):
        full = small_config()
        _, a = run(full)
        warm = small_config(warmup_instructions=5)
        _, b = run(warm)
        assert b.cycles < a.cycles
        assert b.stats.instructions < a.stats.instructions


class TestBlockingSemantics:
    def test_blocking_gates_memory_issue(self):
        blocking = small_config(
            tlb=TLBConfig(entries=16, associativity=4, ports=4, blocking=True)
        )
        _, blocked = run(blocking)
        hum = small_config(
            tlb=TLBConfig(
                entries=16, associativity=4, ports=4,
                blocking=False, hit_under_miss=True,
            )
        )
        _, nonblocked = run(hum)
        # A blocking TLB visibly stalls warps behind outstanding misses;
        # the non-blocking TLB never does.
        assert blocked.stats.tlb_blocked_wait_cycles > 0
        assert nonblocked.stats.tlb_blocked_wait_cycles == 0

    def test_scheduled_walker_not_slower(self):
        naive = small_config(
            tlb=TLBConfig(entries=16, associativity=4, ports=4, blocking=False,
                          hit_under_miss=True, cache_overlap=True),
        )
        _, a = run(naive)
        sched = small_config(
            tlb=TLBConfig(entries=16, associativity=4, ports=4, blocking=False,
                          hit_under_miss=True, cache_overlap=True),
            ptw=PTWConfig(count=1, scheduled=True),
        )
        _, b = run(sched)
        assert b.cycles <= a.cycles


class TestTBCExecution:
    def test_block_mode_runs_all_regions(self):
        config = small_config()
        sim, result = run(config, form="blocks")
        # 2 blocks of 3 regions each on one core.
        assert result.stats.regions_executed == 6
        assert result.stats.warp_fetches > 0

    def test_tbc_forms_fewer_or_equal_warps(self):
        from repro.core.config import TBCConfig

        stack_cfg = small_config(tlb=TLBConfig(enabled=False))
        _, stack = run(stack_cfg, form="blocks")
        tbc_cfg = small_config(
            tlb=TLBConfig(enabled=False), tbc=TBCConfig(mode="tbc")
        )
        _, tbc = run(tbc_cfg, form="blocks")
        assert tbc.stats.warp_fetches <= stack.stats.warp_fetches

    def test_tlb_tbc_requires_no_extra_setup(self):
        from repro.core.config import TBCConfig

        config = small_config(tbc=TBCConfig(mode="tlb-tbc"))
        sim, result = run(config, form="blocks")
        assert sim.cores[0].cpm is not None
        assert result.cycles > 0
