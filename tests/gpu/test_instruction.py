"""Warp instruction and trace containers."""

import pytest

from repro.gpu.instruction import ComputeInstruction, MemoryInstruction, WarpTrace


class TestInstructions:
    def test_compute_latency_positive(self):
        with pytest.raises(ValueError):
            ComputeInstruction(latency=0)

    def test_memory_requires_an_active_lane(self):
        with pytest.raises(ValueError):
            MemoryInstruction(addresses=(None, None))

    def test_memory_rejects_negative_addresses(self):
        with pytest.raises(ValueError):
            MemoryInstruction(addresses=(-1, None))

    def test_active_lane_count(self):
        instr = MemoryInstruction(addresses=(100, None, 200, None))
        assert instr.active_lanes == 2

    def test_origins_must_align(self):
        with pytest.raises(ValueError):
            MemoryInstruction(addresses=(1, 2), origins=(0,))


class TestTrace:
    def test_counts(self):
        trace = WarpTrace(
            warp_id=0,
            instructions=[
                ComputeInstruction(latency=5),
                MemoryInstruction(addresses=(0x1000,)),
            ],
        )
        assert len(trace) == 2
        assert trace.memory_instruction_count == 1
        # Compute latency folds 5 scalar instructions.
        assert trace.instruction_count == 6
