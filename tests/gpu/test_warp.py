"""Warp runtime state."""

from repro.gpu.instruction import ComputeInstruction, WarpTrace
from repro.gpu.warp import Warp


class TestWarp:
    def test_fresh_warp(self):
        warp = Warp(trace=WarpTrace(warp_id=3, instructions=[ComputeInstruction()]))
        assert warp.warp_id == 3
        assert not warp.done
        assert isinstance(warp.current_instruction(), ComputeInstruction)

    def test_done_after_trace(self):
        warp = Warp(trace=WarpTrace(warp_id=0, instructions=[ComputeInstruction()]))
        warp.pc += 1
        assert warp.done

    def test_empty_trace_is_done(self):
        warp = Warp(trace=WarpTrace(warp_id=0, instructions=[]))
        assert warp.done
