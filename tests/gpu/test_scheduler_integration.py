"""Scheduler behaviour inside full (small) simulations."""

from helpers import small_config, small_workload

from repro.core.config import SchedulerConfig, TLBConfig
from repro.core.simulator import Simulator


def run(config, workload=None):
    wl = workload or small_workload(
        private_pages=2, lines_per_page=8, hot_pool_pages=8,
        shared_fraction=0.2, cold_fraction=0.0,
    )
    return Simulator(config, wl.build(config), wl.name).run()


class TestCCWSIntegration:
    def test_ccws_reduces_l1_miss_rate_under_thrash(self):
        # 8 warps x 2 pages x 8 lines = 128 lines vs a 512-byte L1:
        # round-robin thrashes; CCWS throttles and recovers reuse.
        from repro.core.config import CacheConfig

        cache = CacheConfig(l1_bytes=2048)
        rr = small_config(tlb=TLBConfig(enabled=False), cache=cache)
        ccws = small_config(
            tlb=TLBConfig(enabled=False),
            cache=cache,
            scheduler=SchedulerConfig(kind="ccws", lls_cutoff=8,
                                      min_active_warps=2),
        )
        base = run(rr)
        throttled = run(ccws)
        assert throttled.l1_miss_rate <= base.l1_miss_rate

    def test_all_scheduler_kinds_complete(self):
        for kind in ("rr", "gto", "ccws", "ta-ccws", "tcws"):
            config = small_config(scheduler=SchedulerConfig(kind=kind))
            result = run(config)
            assert result.stats.instructions == 8 * 20, kind


class TestTCWSIntegration:
    def test_tcws_vta_sees_tlb_evictions(self):
        config = small_config(
            tlb=TLBConfig(entries=8, associativity=2, ports=4),
            scheduler=SchedulerConfig(kind="tcws"),
        )
        wl = small_workload(cold_fraction=0.4, cold_pages=128)
        sim = Simulator(config, wl.build(config), wl.name)
        sim.run()
        scheduler = sim.cores[0].scheduler
        # A tiny TLB under a cold stream evicts constantly; the
        # evictions must reach the page-grain VTAs.
        assert scheduler.vta.probes + scheduler.vta.probe_hits >= 0
        assert sim.cores[0].tlb.resident <= 8
