"""Zero-stripped CoreStats fault counters survive every round trip.

Fault-free results serialize without the ``CoreStats.FAULT_FIELDS``
keys (pinning byte-identity with pre-fault-subsystem goldens); faulty
results carry them.  Both shapes must round-trip exactly through
``SimulationResult`` JSON *and* through a snapshot/restore cycle.
"""

from __future__ import annotations

import json

from helpers import small_config

from repro.core.results import SimulationResult
from repro.faults.config import FaultConfig
from repro.parallel.cells import Cell
from repro.snapshot.runner import simulate_cell_resumable
from repro.stats.counters import CoreStats


def _paging_cell() -> Cell:
    config = small_config(
        faults=FaultConfig(
            enabled=True,
            demand_paging=True,
            major_fault_cycles=200,
            minor_fault_cycles=30,
            minor_fraction=0.5,
            seed=5,
        )
    )
    return Cell("paged", "bfs", config)


def test_nonzero_fault_counters_roundtrip_result_json():
    result = simulate_cell_resumable(_paging_cell())
    total_faults = (
        result.stats.page_faults_minor + result.stats.page_faults_major
    )
    assert total_faults > 0, "paging cell produced no page faults"
    data = json.loads(result.to_json())
    present = [f for f in CoreStats.FAULT_FIELDS if f in data["stats"]]
    assert present, "nonzero fault counters were stripped"
    again = SimulationResult.from_dict(data)
    assert again.canonical_json() == result.canonical_json()


def test_zero_fault_counters_are_stripped_then_restored_as_zero():
    result = simulate_cell_resumable(Cell("clean", "bfs", small_config()))
    data = result.to_dict()
    for field in CoreStats.FAULT_FIELDS:
        assert field not in data["stats"]
    again = SimulationResult.from_dict(json.loads(json.dumps(data)))
    for field in CoreStats.FAULT_FIELDS:
        assert getattr(again.stats, field) == 0
    assert again.canonical_json() == result.canonical_json()


def test_fault_counters_survive_a_snapshot_restore_cycle(tmp_path):
    cell = _paging_cell()
    baseline = simulate_cell_resumable(cell)
    snap = str(tmp_path / "snap.json")
    simulate_cell_resumable(cell, snapshot_path=snap, snapshot_every=150)
    resumed = simulate_cell_resumable(
        cell, snapshot_path=snap, snapshot_every=1 << 30
    )
    assert resumed.canonical_json() == baseline.canonical_json()
    assert resumed.stats.page_faults_minor == baseline.stats.page_faults_minor
    assert resumed.stats.page_faults_major == baseline.stats.page_faults_major
    assert (
        resumed.stats.page_fault_stall_cycles
        == baseline.stats.page_fault_stall_cycles
    )
