"""The snapshot store: atomic writes, chaos-tolerant reads."""

from __future__ import annotations

import json
import os

import pytest

from repro.snapshot.store import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotIncompatible,
    read_snapshot,
    snapshot_envelope,
    try_read_snapshot,
    write_snapshot,
)


def _envelope(**overrides):
    base = dict(
        config_hash="abc123",
        workload="bfs",
        form=None,
        miss_scale=1.0,
        attempt=0,
        cycle=4242,
        state={"cores": [1, 2], "memory": {"rng": [3, [1, 2], None]}},
    )
    base.update(overrides)
    return snapshot_envelope(**base)


def test_write_then_read_roundtrip(tmp_path):
    path = str(tmp_path / "snap.json")
    envelope = _envelope()
    write_snapshot(path, envelope)
    assert try_read_snapshot(path) == envelope
    assert (
        read_snapshot(path, config_hash="abc123", workload="bfs", attempt=0)
        == envelope
    )


def test_write_leaves_no_temp_files(tmp_path):
    path = str(tmp_path / "snap.json")
    write_snapshot(path, _envelope())
    assert os.listdir(tmp_path) == ["snap.json"]


def test_missing_file_reads_as_none(tmp_path):
    path = str(tmp_path / "absent.json")
    assert try_read_snapshot(path) is None
    assert (
        read_snapshot(path, config_hash="abc123", workload="bfs", attempt=0)
        is None
    )


def test_truncated_file_reads_as_none(tmp_path):
    path = str(tmp_path / "snap.json")
    write_snapshot(path, _envelope())
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
    assert try_read_snapshot(path) is None
    # The lenient entry point the resume path uses: unreadable means
    # "start over", never an exception.
    assert (
        read_snapshot(path, config_hash="abc123", workload="bfs", attempt=0)
        is None
    )


def test_garbage_and_wrong_kind_read_as_none(tmp_path):
    path = str(tmp_path / "snap.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json at all {{{")
    assert try_read_snapshot(path) is None
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"kind": "something-else", "state": {}}, handle)
    assert try_read_snapshot(path) is None


def test_future_schema_version_is_refused(tmp_path):
    path = str(tmp_path / "snap.json")
    envelope = _envelope()
    envelope["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
    write_snapshot(path, envelope)
    assert try_read_snapshot(path) is None


@pytest.mark.parametrize(
    "mismatch",
    [
        dict(config_hash="different"),
        dict(workload="kmeans"),
        dict(attempt=1),
    ],
)
def test_valid_snapshot_for_a_different_cell_raises(tmp_path, mismatch):
    path = str(tmp_path / "snap.json")
    write_snapshot(path, _envelope())
    expect = dict(config_hash="abc123", workload="bfs", attempt=0)
    expect.update(mismatch)
    with pytest.raises(SnapshotIncompatible) as excinfo:
        read_snapshot(path, **expect)
    assert list(mismatch)[0] in str(excinfo.value)
