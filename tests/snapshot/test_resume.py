"""The hard guarantee: resume(snapshot at cycle N) == uninterrupted run.

Each pin runs a cell three ways — uninterrupted, while writing periodic
mid-run snapshots, and resumed *from* the last mid-run snapshot — and
asserts all three results are byte-identical (``canonical_json``).  The
resumed run exercises exactly the supervised pool's restart path: a
fresh :class:`Simulator` built from the cell plus ``load_state`` of the
on-disk envelope.

The cells mirror Figure 2 (naive TLBs under CCWS and TBC) and
Figure 11 (walker pools vs one augmented walker), shrunk to the test
machine; the observed variants repeat the pin with the event tracer
and the phase profiler enabled, which must not perturb results.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os

import pytest

from repro.core import presets
from repro.core.config import GPUConfig, TraceConfig
from repro.parallel.cells import Cell
from repro.prof import profiler
from repro.snapshot.runner import simulate_cell_resumable

_TINY = dict(num_cores=1, warps_per_core=8, warp_width=8)


def _preset(name: str, **overrides) -> GPUConfig:
    merged = dict(_TINY)
    merged.update(overrides)
    return GPUConfig.preset(name, **merged)


PIN_CELLS = {
    # Figure 2: the naive-TLB degradation matrix.
    "fig02-no-tlb": Cell("no-tlb", "bfs", _preset("no_tlb")),
    "fig02-naive": Cell("naive-tlb", "bfs", _preset("naive", ports=3)),
    "fig02-ccws": Cell(
        "ccws+naive-tlb",
        "kmeans",
        presets.with_ccws(_preset("naive", ports=3)),
    ),
    "fig02-tbc": Cell(
        "tbc+naive-tlb",
        "bfs",
        presets.with_tbc(
            _preset("naive", ports=3, warmup_instructions=0), "tbc"
        ),
        form="blocks",
    ),
    # Figure 11: walker pools vs the augmented walker.
    "fig11-ptw4": Cell(
        "naive x4 PTW", "kmeans", presets.multi_ptw_tlb(4, **_TINY)
    ),
    "fig11-aug": Cell("augmented x1 PTW", "bfs", _preset("augmented")),
}


def _observed(cell: Cell, traced: bool) -> Cell:
    if not traced:
        return cell
    config = dataclasses.replace(
        cell.config,
        trace=TraceConfig(
            enabled=True, ring_capacity=4096, interval_cycles=250
        ),
    )
    return Cell(cell.label, cell.workload, config, cell.form, cell.miss_scale)


def assert_resume_identical(cell: Cell, tmp_path, profiled: bool = False):
    snap = str(tmp_path / "snap.json")

    def run(**kwargs):
        guard = profiler.profile() if profiled else contextlib.nullcontext()
        with guard:
            return simulate_cell_resumable(cell, **kwargs)

    baseline = run().canonical_json()
    # Same cell, now leaving periodic snapshots behind; the snapshots
    # must be observation-only.
    snapshotting = run(snapshot_path=snap, snapshot_every=150)
    assert snapshotting.canonical_json() == baseline
    assert os.path.exists(snap), "cell finished without one snapshot"
    # Resume from the last mid-run snapshot (a huge period stops any
    # further writes): the supervised pool's post-SIGKILL path.
    resumed = run(snapshot_path=snap, snapshot_every=1 << 30)
    assert resumed.canonical_json() == baseline


@pytest.mark.parametrize("name", sorted(PIN_CELLS))
def test_resume_is_byte_identical(name, tmp_path):
    assert_resume_identical(PIN_CELLS[name], tmp_path)


@pytest.mark.parametrize("name", ["fig02-naive", "fig02-tbc", "fig11-aug"])
@pytest.mark.parametrize(
    "traced,profiled",
    [(True, False), (False, True), (True, True)],
    ids=["traced", "profiled", "traced+profiled"],
)
def test_resume_is_byte_identical_under_observation(
    name, traced, profiled, tmp_path
):
    cell = _observed(PIN_CELLS[name], traced)
    assert_resume_identical(cell, tmp_path, profiled=profiled)
