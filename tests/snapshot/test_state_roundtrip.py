"""State-dict round trips: JSON purity and load/save idempotence."""

from __future__ import annotations

import json

from repro.core.config import GPUConfig
from repro.core.simulator import Simulator
from repro.parallel.cells import Cell, reseeded
from repro.snapshot.runner import simulate_cell_resumable
from repro.snapshot.store import try_read_snapshot
from repro.workloads.registry import get_workload

_TINY = dict(num_cores=2, warps_per_core=8, warp_width=8)


def _rebuild(cell: Cell) -> Simulator:
    """Build the cell's simulator exactly as the resume path does."""
    config = reseeded(cell.config, 0)
    source = get_workload(cell.workload)
    work = source.build(config, form=cell.form, miss_scale=cell.miss_scale)
    return Simulator(config, work, source.name)


def _canon(state) -> str:
    return json.dumps(state, sort_keys=True)


def test_midrun_state_is_json_pure_and_reload_stable(tmp_path):
    cell = Cell(
        "naive-tlb", "bfs", GPUConfig.preset("naive", ports=3, **_TINY)
    )
    snap = str(tmp_path / "snap.json")
    simulate_cell_resumable(cell, snapshot_path=snap, snapshot_every=150)
    envelope = try_read_snapshot(snap)
    assert envelope is not None
    assert envelope["cycle"] > 0
    state = envelope["state"]
    # The envelope came through json.dumps/loads already, so reaching
    # here proves JSON purity; pin it explicitly anyway.
    assert json.loads(json.dumps(state)) == state
    # load_state(state) followed by state_dict() must reproduce the
    # same state — the idempotence the restart path relies on.
    simulator = _rebuild(cell)
    simulator.load_state(state)
    assert _canon(simulator.state_dict()) == _canon(state)


def test_completed_run_state_roundtrips(tmp_path):
    cell = Cell("aug", "kmeans", GPUConfig.preset("augmented", **_TINY))
    simulator = _rebuild(cell)
    simulator.run()
    state = json.loads(json.dumps(simulator.state_dict()))
    other = _rebuild(cell)
    other.load_state(state)
    assert _canon(other.state_dict()) == _canon(state)
