"""The composed L1 -> L2 -> DRAM path."""

from repro.mem.hierarchy import CoreMemory, SharedMemory


def make_system(**kwargs):
    shared = SharedMemory(num_channels=1, **kwargs)
    return shared, CoreMemory(shared, mshr_entries=4)


class TestSharedLevels:
    def test_l2_hit_after_fill(self):
        shared, _ = make_system()
        first = shared.access_line(0, 0)
        again = shared.access_line(0, first.ready_time)
        assert first.level == "dram"
        assert again.level == "l2"
        assert again.ready_time < first.ready_time + 100

    def test_ptw_refs_counted(self):
        shared, _ = make_system()
        shared.access_line(0, 0, is_ptw=True)
        shared.access_line(0, 500, is_ptw=True)
        assert shared.ptw_refs == 2
        assert shared.ptw_l2_hits == 1
        assert shared.ptw_l2_hit_rate == 0.5

    def test_ptw_priority_bypasses_data_queue(self):
        shared, _ = make_system(l2_service_interval=4)
        # Pile data requests onto the bank.
        for i in range(20):
            shared.access_line(128 * i, 0)
        # Warm a line so the PTW ref is an L2 hit, then check its
        # latency ignores the queued data burst.
        shared.access_line(0, 0)
        result = shared.access_line(0, 1, is_ptw=True)
        assert result.level == "l2"
        assert result.ready_time <= 1 + shared.interconnect_latency + shared.l2_latency


class TestCoreMemory:
    def test_l1_hit_latency(self):
        _, core = make_system()
        fill = core.access(0, 0)
        hit = core.access(0, fill.ready_time)
        assert hit.level == "l1"
        assert hit.ready_time == fill.ready_time + core.l1_latency

    def test_mshr_merge_path(self):
        _, core = make_system()
        first = core.access(0, 0)
        # Second access to the same line while in flight: set conflict
        # evicts nothing (same line -> L1 hit path is bypassed because
        # the line was already filled at access time), so force a
        # different address mapping to the same line... simplest: the
        # merge path triggers when the line missed L1 but is in the
        # MSHRs; evict it from L1 first.
        core.l1.invalidate(0)
        merged = core.access(0, 1)
        assert merged.level == "l1-mshr"
        assert merged.ready_time == first.ready_time

    def test_miss_latency_accounting(self):
        _, core = make_system()
        result = core.access(0, 0)
        assert core.l1_misses == 1
        assert core.average_miss_latency == result.ready_time

    def test_eviction_info_propagates(self):
        shared = SharedMemory(num_channels=1)
        core = CoreMemory(shared, l1_bytes=256, l1_associativity=1)
        core.access(0, 0, warp_id=3)
        # 256-byte, 1-way, 128B lines -> 2 sets; line 256 maps to set 0.
        result = core.access(256, 10, warp_id=5)
        assert result.evicted_line == 0
        assert result.evicted_warp == 3
