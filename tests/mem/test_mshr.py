"""MSHR file semantics."""

import pytest

from repro.mem.mshr import MSHRFile


class TestMSHR:
    def test_lookup_miss_returns_none(self):
        assert MSHRFile(4).lookup(0, now=0) is None

    def test_merge_returns_fill_time(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0, ready_time=100, now=0)
        assert mshrs.lookup(0, now=10) == 100
        assert mshrs.merges == 1

    def test_entries_expire(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0, ready_time=100, now=0)
        assert mshrs.lookup(0, now=100) is None

    def test_outstanding(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0, 100, 0)
        mshrs.allocate(128, 50, 0)
        assert mshrs.outstanding(0) == 2
        assert mshrs.outstanding(60) == 1

    def test_earliest_free_when_not_full(self):
        mshrs = MSHRFile(2)
        assert mshrs.earliest_free(5) == 5

    def test_earliest_free_when_full(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0, 100, 0)
        mshrs.allocate(128, 60, 0)
        assert mshrs.earliest_free(10) == 60
        assert mshrs.stalls == 1

    def test_allocate_full_raises(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0, 100, 0)
        with pytest.raises(RuntimeError):
            mshrs.allocate(128, 100, 0)

    def test_duplicate_allocate_raises(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0, 100, 0)
        with pytest.raises(RuntimeError):
            mshrs.allocate(0, 120, 0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
