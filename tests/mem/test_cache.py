"""Set-associative cache behaviour."""

import pytest

from repro.mem.cache import SetAssociativeCache


def tiny_cache(assoc=2, sets=2):
    return SetAssociativeCache(
        size_bytes=128 * assoc * sets, line_bytes=128, associativity=assoc
    )


class TestGeometry:
    def test_paper_l1_geometry(self):
        cache = SetAssociativeCache(32 * 1024, 128, 8)
        assert cache.num_sets == 32

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 128, 8)
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 128, 8)


class TestHitsAndMisses:
    def test_first_access_misses(self):
        cache = tiny_cache()
        assert not cache.access(0).hit

    def test_second_access_hits(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.access(0).hit

    def test_counters(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        cache.access(256)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_lookup_does_not_fill(self):
        cache = tiny_cache()
        assert not cache.lookup(0)
        assert not cache.lookup(0)

    def test_different_sets_do_not_conflict(self):
        cache = tiny_cache(assoc=1, sets=2)
        cache.access(0)      # set 0
        cache.access(128)    # set 1
        assert cache.access(0).hit
        assert cache.access(128).hit


class TestLRU:
    def test_lru_eviction_order(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.access(0)
        cache.access(128)
        result = cache.access(256)  # evicts line 0 (LRU)
        assert result.evicted_line == 0
        assert cache.access(128).hit
        assert not cache.access(0).hit

    def test_hit_refreshes_lru(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.access(0)
        cache.access(128)
        cache.access(0)          # 0 becomes MRU
        result = cache.access(256)
        assert result.evicted_line == 128

    def test_capacity_never_exceeded(self):
        cache = tiny_cache(assoc=2, sets=2)
        for line in range(0, 128 * 50, 128):
            cache.access(line)
        assert cache.resident_lines <= 4


class TestWarpTagging:
    def test_eviction_reports_allocating_warp(self):
        cache = tiny_cache(assoc=1, sets=1)
        cache.access(0, warp_id=7)
        result = cache.access(128, warp_id=9)
        assert result.evicted_line == 0
        assert result.evicted_warp == 7

    def test_fill_does_not_count_demand(self):
        cache = tiny_cache()
        cache.fill(0)
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access(0).hit

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.invalidate(0)
        assert not cache.access(0).hit

    def test_flush(self):
        cache = tiny_cache()
        cache.access(0)
        cache.flush()
        assert cache.resident_lines == 0
