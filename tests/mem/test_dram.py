"""DRAM channel queueing."""

import pytest

from repro.mem.dram import DRAM, DRAMChannel


class TestChannel:
    def test_unloaded_latency(self):
        channel = DRAMChannel(access_latency=200, service_interval=8)
        assert channel.access(10) == 210

    def test_back_to_back_requests_queue(self):
        channel = DRAMChannel(access_latency=200, service_interval=8)
        assert channel.access(0) == 200
        assert channel.access(0) == 208   # starts after the first's service
        assert channel.access(0) == 216
        assert channel.total_queue_delay == 8 + 16

    def test_idle_gap_resets_queue(self):
        channel = DRAMChannel(access_latency=200, service_interval=8)
        channel.access(0)
        assert channel.access(1000) == 1200

    def test_bad_latency_rejected(self):
        with pytest.raises(ValueError):
            DRAMChannel(access_latency=0)


class TestInterleaving:
    def test_channel_of_line_interleaves(self):
        dram = DRAM(num_channels=4, line_bytes=128)
        assert dram.channel_of(0) == 0
        assert dram.channel_of(128) == 1
        assert dram.channel_of(128 * 4) == 0

    def test_requests_counter(self):
        dram = DRAM(num_channels=2)
        dram.access(0, 0)
        dram.access(128, 0)
        assert dram.requests == 2

    def test_channels_independent(self):
        dram = DRAM(num_channels=2, access_latency=200, service_interval=8)
        assert dram.access(0, 0) == 200
        assert dram.access(128, 0) == 200  # other channel, no queueing

    def test_zero_channels_rejected(self):
        with pytest.raises(ValueError):
            DRAM(num_channels=0)
