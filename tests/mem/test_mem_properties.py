"""Property-based tests on the memory hierarchy."""

from hypothesis import given, settings, strategies as st

from repro.mem.cache import SetAssociativeCache
from repro.mem.hierarchy import CoreMemory, SharedMemory

lines = st.integers(min_value=0, max_value=255).map(lambda i: i * 128)


@settings(max_examples=40, deadline=None)
@given(st.lists(lines, min_size=1, max_size=300))
def test_cache_capacity_invariant(stream):
    cache = SetAssociativeCache(size_bytes=2048, line_bytes=128, associativity=4)
    for line in stream:
        cache.access(line)
        assert cache.resident_lines <= 16


@settings(max_examples=40, deadline=None)
@given(st.lists(lines, min_size=1, max_size=300))
def test_immediate_rereference_always_hits(stream):
    cache = SetAssociativeCache(size_bytes=2048, line_bytes=128, associativity=4)
    for line in stream:
        cache.access(line)
        assert cache.lookup(line)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(lines, st.integers(0, 500)), min_size=1, max_size=100))
def test_ready_times_never_precede_requests(stream):
    shared = SharedMemory(num_channels=1)
    core = CoreMemory(shared, mshr_entries=8)
    clock = 0
    for line, gap in stream:
        clock += gap
        result = core.access(line, clock)
        assert result.ready_time >= clock


@settings(max_examples=25, deadline=None)
@given(st.lists(lines, min_size=2, max_size=60))
def test_monotone_arrivals_keep_dram_fifo(stream):
    shared = SharedMemory(num_channels=1)
    previous_ready = 0
    clock = 0
    for line in stream:
        result = shared.access_line(line, clock)
        assert result.ready_time > 0
        clock += 5
