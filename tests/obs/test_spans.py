"""Causal span recording: zero perturbation, exact decomposition.

Pins two invariants the subsystem is built around:

- *observation only* — runs with span recording on are byte-identical
  to runs with it off, and both match the pre-instrumentation golden
  files in ``tests/obs/golden/``;
- *additive decomposition* — every recorded request's components tile
  its end-to-end interval exactly (``mismatches == 0``), and one tree
  is recorded per TLB miss.

Plus unit coverage for the shared :class:`ModuleSwitch` all three
zero-overhead module flags (tracer, spans, profiler) delegate to.
"""

import pathlib

import pytest

from repro.core.config import FaultConfig
from repro.core.simulator import Simulator
from repro.harness.trace import _FIG_PRESETS, _tiny_workload
from repro.obs import spans
from repro.obs import tracer as trace
from repro.obs.spans import Span, SpanRecorder, WalkDetail, record_spans
from repro.prof import profiler as prof
from repro.workloads.base import TIMING_MISS_SCALE

from helpers import small_config, small_workload

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: fig02 = serial-walker naive TLB, fig11 = 8-walker pool.
GOLDEN_FIGURES = ("fig02", "fig11")


def golden_run(fig):
    config = _FIG_PRESETS[fig]().with_(
        num_cores=1, warps_per_core=8, warp_width=8, warmup_instructions=0
    )
    wl = _tiny_workload()
    work = wl.build(config, miss_scale=TIMING_MISS_SCALE)
    return Simulator(config, work, wl.name).run()


class TestObservationOnly:
    @pytest.mark.parametrize("fig", GOLDEN_FIGURES)
    def test_spans_off_matches_goldens(self, fig):
        assert spans.ENABLED is False
        result = golden_run(fig)
        golden = (GOLDEN_DIR / f"{fig}.json").read_text()
        assert result.to_json() + "\n" == golden

    @pytest.mark.parametrize("fig", GOLDEN_FIGURES)
    def test_spans_on_matches_goldens(self, fig):
        with record_spans() as rec:
            result = golden_run(fig)
        golden = (GOLDEN_DIR / f"{fig}.json").read_text()
        assert result.to_json() + "\n" == golden
        # ... and the recorder actually observed the run.
        assert rec.requests > 0

    def test_faulting_run_unperturbed(self):
        config = small_config(
            faults=FaultConfig(
                enabled=True,
                demand_paging=True,
                minor_fault_cycles=600,
                tlb_shootdown_rate=0.001,
                ptw_error_rate=0.001,
                seed=3,
            )
        )
        wl = small_workload()

        def run():
            work = wl.build(config)
            return Simulator(config, work, wl.name).run()

        off = run()
        with record_spans() as rec:
            on = run()
        assert on.to_json() == off.to_json()
        assert rec.requests == on.stats.tlb_misses
        assert rec.mismatches == 0
        assert "page_fault" in rec.component_names()

    def test_recorder_uninstalled_after_context(self):
        with record_spans():
            assert spans.ENABLED is True
        assert spans.ENABLED is False
        assert spans.active() is None


class TestExactDecomposition:
    @pytest.mark.parametrize("fig", GOLDEN_FIGURES)
    def test_one_tree_per_miss_and_components_tile(self, fig):
        with record_spans() as rec:
            result = golden_run(fig)
        assert rec.requests == result.stats.tlb_misses
        assert rec.mismatches == 0
        assert sum(rec.component_cycles.values()) == rec.total_cycles

    def test_serial_walker_sees_queue_component(self):
        with record_spans() as rec:
            golden_run("fig02")
        names = rec.component_names()
        assert "tlb_probe" in names
        assert "ptw_queue" in names
        assert "walk_l0" in names and "walk_l3" in names
        assert "memory" in names
        # Canonical order: probe before queue before walk before memory.
        assert names.index("tlb_probe") < names.index("ptw_queue")
        assert names.index("ptw_queue") < names.index("walk_l0")
        assert names.index("walk_l3") < names.index("memory")

    def test_histograms_cover_every_component(self):
        with record_spans() as rec:
            golden_run("fig11")
        assert "end_to_end" in rec.histograms
        for name in rec.component_names():
            assert name in rec.histograms
            assert rec.histograms[name].total == rec.component_counts[name]


class TestSpanRecorder:
    def tree(self, start=0, end=100, cuts=(10, 60)):
        root = Span("translation", start, end)
        edge = start
        for i, cut in enumerate(tuple(cuts) + (end,)):
            root.add(Span(f"c{i}", edge, cut))
            edge = cut
        return root

    def test_exact_tiling_accepted(self):
        rec = SpanRecorder()
        rec.record(self.tree())
        assert rec.requests == 1
        assert rec.mismatches == 0
        assert rec.total_cycles == 100
        assert sum(rec.component_cycles.values()) == 100

    def test_gap_counts_as_mismatch(self):
        rec = SpanRecorder()
        root = Span("translation", 0, 100)
        root.add(Span("a", 0, 40))
        root.add(Span("b", 50, 100))  # 10-cycle hole
        rec.record(root)
        assert rec.mismatches == 1

    def test_short_cover_counts_as_mismatch(self):
        rec = SpanRecorder()
        root = Span("translation", 0, 100)
        root.add(Span("a", 0, 90))  # never reaches root.end
        rec.record(root)
        assert rec.mismatches == 1

    def test_keeps_k_slowest_in_order(self):
        rec = SpanRecorder(keep_slowest=3)
        for dur in (5, 40, 10, 99, 7, 60):
            rec.record(self.tree(0, dur, cuts=()))
        assert [r.duration for r in rec.slowest] == [99, 60, 40]

    def test_walk_detail_handoff(self):
        rec = SpanRecorder()
        rec.note_walk(7, WalkDetail(1, 2, 3, [(0, 3, 5)], 5))
        rec.annotate_walk(7, queue_depth=4)
        detail = rec.pop_walk(7)
        assert detail.args == {"queue_depth": 4}
        assert rec.pop_walk(7) is None  # claimed once

    def test_span_walk_is_depth_first(self):
        root = self.tree()
        root.children[0].add(Span("leaf", 0, 5))
        names = [(d, s.name) for d, s in root.walk()]
        assert names == [
            (0, "translation"),
            (1, "c0"),
            (2, "leaf"),
            (1, "c1"),
            (1, "c2"),
        ]

    def test_as_dict_round_trips_structure(self):
        root = self.tree()
        d = root.as_dict()
        assert d["dur"] == 100
        assert [c["name"] for c in d["children"]] == ["c0", "c1", "c2"]


class TestModuleSwitch:
    """The shared switch behind tracer, spans, and profiler flags."""

    MODULES = (spans, trace, prof)

    @pytest.mark.parametrize("mod", MODULES, ids=lambda m: m.__name__)
    def test_install_uninstall_toggles_flag(self, mod):
        assert mod.ENABLED is False
        backend = object()
        mod._SWITCH.install(backend)
        try:
            assert mod.ENABLED is True
            assert mod._ACTIVE is backend
            assert mod._SWITCH.active() is backend
            assert mod._SWITCH.enabled() is True
        finally:
            mod._SWITCH.uninstall()
        assert mod.ENABLED is False
        assert mod._ACTIVE is None
        assert mod._SWITCH.active() is None

    def test_tracer_uninstall_resets_context(self):
        trace._SWITCH.install(object())
        trace.NOW = 123
        trace.CORE = 5
        trace._SWITCH.uninstall()
        assert trace.NOW == 0
        assert trace.CORE == -1

    def test_nested_record_spans_restores_previous(self):
        with record_spans() as outer:
            with record_spans() as inner:
                assert spans.active() is inner
            assert spans.active() is outer
        assert spans.active() is None
