"""Tracer lifecycle: install/uninstall, emit defaults, build_tracer."""

import pytest

from repro.core.config import TraceConfig
from repro.obs import events as ev
from repro.obs import tracer as trace
from repro.obs.sinks import ChromeTraceSink, JsonlSink, NullSink, RingBufferSink


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with no tracer installed."""
    trace.uninstall()
    yield
    trace.uninstall()


class TestLifecycle:
    def test_disabled_by_default(self):
        assert trace.ENABLED is False
        assert trace.active() is None
        # emit with nothing installed is a silent no-op
        trace.emit(ev.TLB_LOOKUP, cycle=1, core=0)

    def test_install_sets_flag_and_routes_events(self):
        ring = RingBufferSink()
        trace.install(trace.Tracer([ring]))
        assert trace.ENABLED is True
        trace.emit(ev.TLB_LOOKUP, cycle=5, core=2, vpn=7)
        assert len(ring) == 1
        event = ring.events()[0]
        assert event.cycle == 5 and event.core == 2
        assert event.args["vpn"] == 7

    def test_uninstall_clears_flag_and_context(self):
        trace.install(trace.Tracer([RingBufferSink()]))
        trace.NOW = 99
        trace.CORE = 3
        trace.uninstall()
        assert trace.ENABLED is False
        assert trace.NOW == 0 and trace.CORE == -1

    def test_emit_defaults_to_module_context(self):
        ring = RingBufferSink()
        trace.install(trace.Tracer([ring]))
        trace.NOW = 42
        trace.CORE = 1
        trace.emit(ev.DRAM_ACCESS, line=8)
        event = ring.events()[0]
        assert event.cycle == 42 and event.core == 1

    def test_fan_out_to_all_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        trace.install(trace.Tracer([a, b]))
        trace.emit(ev.TLB_LOOKUP, cycle=0, core=0)
        assert len(a) == 1 and len(b) == 1

    def test_ring_accessor(self):
        ring = RingBufferSink()
        tracer = trace.Tracer([NullSink(), ring])
        assert tracer.ring() is ring
        assert trace.Tracer([NullSink()]).ring() is None


class TestBuildTracer:
    def test_default_is_ring_only(self):
        tracer = trace.build_tracer(TraceConfig(enabled=True))
        assert isinstance(tracer.ring(), RingBufferSink)
        assert tracer.ring().capacity == TraceConfig().ring_capacity

    def test_paths_add_file_sinks(self, tmp_path):
        config = TraceConfig(
            enabled=True,
            jsonl_path=str(tmp_path / "t.jsonl"),
            chrome_path=str(tmp_path / "t.chrome.json"),
        )
        tracer = trace.build_tracer(config)
        kinds = {type(s) for s in tracer.sinks}
        assert JsonlSink in kinds and ChromeTraceSink in kinds
        tracer.close()

    def test_zero_ring_capacity_skips_ring(self):
        tracer = trace.build_tracer(TraceConfig(enabled=True, ring_capacity=0))
        assert tracer.ring() is None
        assert any(isinstance(s, NullSink) for s in tracer.sinks)
