"""IntervalSampler: boundary rows, deltas, warmup reset, finalize."""

import pytest

from repro.obs.interval import IntervalSampler
from repro.stats.counters import CoreStats


class TestSampling:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            IntervalSampler(0)

    def test_rows_are_deltas_on_the_boundary_grid(self):
        sampler = IntervalSampler(100, core_id=3)
        stats = CoreStats()
        stats.instructions = 10
        sampler.maybe_sample(100, stats)
        stats.instructions = 25
        sampler.maybe_sample(200, stats)
        assert [r["cycle"] for r in sampler.rows] == [100, 200]
        assert [r["instructions"] for r in sampler.rows] == [10, 15]
        assert all(r["core"] == 3 for r in sampler.rows)

    def test_clock_jump_crossing_many_boundaries(self):
        sampler = IntervalSampler(100)
        stats = CoreStats()
        stats.instructions = 7
        # One fast-forward from 0 to 350 crosses three boundaries: the
        # whole delta lands on the first, the rest read zero.
        sampler.maybe_sample(350, stats)
        assert [r["cycle"] for r in sampler.rows] == [100, 200, 300]
        assert [r["instructions"] for r in sampler.rows] == [7, 0, 0]

    def test_no_row_before_first_boundary(self):
        sampler = IntervalSampler(100)
        sampler.maybe_sample(99, CoreStats())
        assert sampler.rows == []

    def test_finalize_flushes_partial_tail(self):
        sampler = IntervalSampler(100)
        stats = CoreStats()
        stats.instructions = 4
        sampler.maybe_sample(100, stats)
        stats.instructions = 9
        sampler.finalize(142, stats)
        assert [r["cycle"] for r in sampler.rows] == [100, 142]
        assert sampler.rows[-1]["instructions"] == 5

    def test_finalize_without_new_activity_adds_nothing(self):
        sampler = IntervalSampler(100)
        stats = CoreStats()
        stats.instructions = 4
        sampler.maybe_sample(100, stats)
        sampler.finalize(150, stats)
        assert len(sampler.rows) == 1

    def test_counter_reset_realigns_baselines(self):
        sampler = IntervalSampler(100)
        stats = CoreStats()
        stats.instructions = 50
        sampler.maybe_sample(100, stats)
        # Warmup ends: the core zeroes its counters and restarts the clock.
        stats.instructions = 0
        sampler.on_counter_reset()
        stats.instructions = 8
        sampler.maybe_sample(200, stats)
        assert sampler.rows[-1]["instructions"] == 8
