"""Trace sinks: ring bounding, JSONL line validity, Chrome schema."""

import io
import json

from repro.obs.events import (
    INTERVAL_SAMPLE,
    SPAN,
    TLB_LOOKUP,
    TLB_MISS_BEGIN,
    TLB_MISS_END,
    WALK_QUEUE,
    TraceEvent,
)
from repro.obs.sinks import ChromeTraceSink, JsonlSink, NullSink, RingBufferSink


def ev(kind=TLB_LOOKUP, cycle=0, core=0, track="tlb", dur=None, **args):
    return TraceEvent(kind, cycle, core, track, dur, args)


class TestNullSink:
    def test_absorbs_everything(self):
        sink = NullSink()
        sink.record(ev())
        sink.close()  # no file, no state — must not raise


class TestRingBufferSink:
    def test_bounded_capacity_keeps_newest(self):
        sink = RingBufferSink(capacity=4)
        for cycle in range(10):
            sink.record(ev(cycle=cycle))
        assert len(sink) == 4
        assert sink.recorded == 10
        assert sink.dropped == 6
        assert [e.cycle for e in sink.events()] == [6, 7, 8, 9]

    def test_filter_by_kind_and_core(self):
        sink = RingBufferSink()
        sink.record(ev(kind=TLB_LOOKUP, core=0))
        sink.record(ev(kind=WALK_QUEUE, core=0, depth=2))
        sink.record(ev(kind=TLB_LOOKUP, core=1))
        assert len(sink.events(kind=TLB_LOOKUP)) == 2
        assert len(sink.events(kind=TLB_LOOKUP, core=1)) == 1
        assert len(sink.events(core=0)) == 2

    def test_clear(self):
        sink = RingBufferSink()
        sink.record(ev())
        sink.clear()
        assert len(sink) == 0

    def test_load_state_keeps_cached_record_path_live(self):
        # The installed tracer publishes sink.record_raw as the
        # module-level fast path; a snapshot restore must not strand
        # it on an orphaned storage list (events recorded after a
        # resume would silently vanish from the ring).
        donor = RingBufferSink(capacity=4)
        donor.record(ev(cycle=1))
        donor.record(ev(cycle=2))
        sink = RingBufferSink(capacity=4)
        cached = sink.record_raw  # what install() hands hot loops
        sink.load_state(donor.state_dict())
        cached((TLB_LOOKUP, 3, 0, "tlb", None, {}))
        assert [e.cycle for e in sink.events()] == [1, 2, 3]
        assert sink.recorded == 3


class TestJsonlSink:
    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path))
        sink.record(ev(cycle=5, vpn=0x40, hit=False))
        sink.record(ev(kind=WALK_QUEUE, cycle=9, depth=3))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == TLB_LOOKUP
        assert first["cycle"] == 5
        assert first["args"]["vpn"] == 0x40
        assert json.loads(lines[1])["args"]["depth"] == 3
        assert sink.written == 2

    def test_accepts_open_file_without_closing_it(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.record(ev())
        sink.close()
        assert json.loads(buf.getvalue())["kind"] == TLB_LOOKUP


class TestChromeTraceSink:
    def run_sink(self, events):
        buf = io.StringIO()
        sink = ChromeTraceSink(buf)
        for event in events:
            sink.record(event)
        sink.close()
        return json.loads(buf.getvalue())

    def test_schema_keys_present_on_every_event(self):
        data = self.run_sink(
            [
                ev(cycle=1, vpn=2),
                ev(kind=WALK_QUEUE, cycle=2, depth=1),
                ev(kind=TLB_MISS_BEGIN, cycle=3, vpn=9),
                ev(kind=TLB_MISS_END, cycle=8, vpn=9),
            ]
        )
        assert isinstance(data, list) and data
        for entry in data:
            assert "name" in entry and "ph" in entry and "ts" in entry
        non_meta = [e for e in data if e["ph"] != "M"]
        for entry in non_meta:
            assert "pid" in entry and "tid" in entry

    def test_begin_end_pairs_become_complete_events(self):
        data = self.run_sink(
            [
                ev(kind=TLB_MISS_BEGIN, cycle=10, vpn=7),
                ev(kind=TLB_MISS_END, cycle=45, vpn=7),
            ]
        )
        spans = [e for e in data if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["ts"] == 10
        assert spans[0]["dur"] == 35
        assert spans[0]["name"] == "tlb_miss"

    def test_interleaved_spans_pair_by_id(self):
        data = self.run_sink(
            [
                ev(kind=TLB_MISS_BEGIN, cycle=0, vpn=1),
                ev(kind=TLB_MISS_BEGIN, cycle=2, vpn=2),
                ev(kind=TLB_MISS_END, cycle=30, vpn=2),
                ev(kind=TLB_MISS_END, cycle=50, vpn=1),
            ]
        )
        durs = sorted(e["dur"] for e in data if e["ph"] == "X")
        assert durs == [28, 50]

    def test_counter_kinds_become_counter_events(self):
        data = self.run_sink([ev(kind=WALK_QUEUE, cycle=4, depth=6)])
        counters = [e for e in data if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"depth": 6}

    def test_interval_sample_counters_keep_numeric_args_only(self):
        data = self.run_sink(
            [ev(kind=INTERVAL_SAMPLE, cycle=100, instructions=12, label="x")]
        )
        counter = next(e for e in data if e["ph"] == "C")
        assert counter["args"] == {"instructions": 12}

    def test_metadata_names_tracks_per_core(self):
        data = self.run_sink(
            [ev(cycle=1, core=0, track="tlb"), ev(cycle=2, core=1, track="tlb")]
        )
        meta = [e for e in data if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names and "thread_name" in names
        pids = {e["pid"] for e in data if e["ph"] != "M"}
        assert pids == {0, 1}

    def test_unmatched_begin_degrades_to_instant(self):
        data = self.run_sink([ev(kind=TLB_MISS_BEGIN, cycle=3, vpn=5)])
        instants = [e for e in data if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["ts"] == 3

    def test_span_events_become_named_slices(self):
        data = self.run_sink(
            [ev(kind=SPAN, cycle=10, dur=30, op="ptw_queue", depth=3)]
        )
        slices = [e for e in data if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "ptw_queue"
        assert slices[0]["ts"] == 10 and slices[0]["dur"] == 30
        # flow/op bookkeeping args are consumed, causes stay visible
        assert slices[0]["args"] == {"depth": 3}

    def test_span_flow_events_pair_by_id(self):
        data = self.run_sink(
            [
                ev(kind=SPAN, cycle=0, dur=50, op="translation",
                   flow_out=[1, 2]),
                ev(kind=SPAN, cycle=0, dur=10, op="tlb_probe", flow_in=1),
                ev(kind=SPAN, cycle=10, dur=40, op="memory", flow_in=2),
            ]
        )
        starts = [e for e in data if e["ph"] == "s"]
        finishes = [e for e in data if e["ph"] == "f"]
        assert {e["id"] for e in starts} == {1, 2}
        assert {e["id"] for e in finishes} == {1, 2}
        for e in starts + finishes:
            assert e["name"] == "span_flow" and e["cat"] == "span"
            assert "ts" in e and "pid" in e and "tid" in e
        # binding points: start at the parent's begin, finish at the
        # child's begin (bp="e" makes Perfetto attach to the slice).
        assert all(e["ts"] == 0 for e in starts)
        assert all(e["bp"] == "e" for e in finishes)
        assert {e["ts"] for e in finishes} == {0, 10}

    def test_close_is_idempotent(self):
        buf = io.StringIO()
        sink = ChromeTraceSink(buf)
        sink.record(ev())
        sink.close()
        first = buf.getvalue()
        sink.close()
        assert buf.getvalue() == first
