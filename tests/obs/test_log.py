"""repro.obs.log: structured run logs — levels, binding, sinks, env config."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import log


@pytest.fixture(autouse=True)
def _clean_log_state():
    log.reset()
    yield
    log.reset()


def _text_records(stream):
    return [line for line in stream.getvalue().splitlines() if line]


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert log.ENABLED is False
        assert log.sinks() == []

    def test_emission_while_disabled_is_a_no_op(self):
        logger = log.get_logger("test")
        logger.info("event_one", key="value")
        logger.error("event_two")
        assert log.sinks() == []

    def test_reset_returns_to_disabled(self):
        log.configure(stream=io.StringIO())
        assert log.ENABLED is True
        log.reset()
        assert log.ENABLED is False
        assert log.LEVEL == log.INFO
        assert log.sinks() == []


class TestLevels:
    def test_parse_level_names(self):
        assert log.parse_level("debug") == log.DEBUG
        assert log.parse_level("INFO") == log.INFO
        assert log.parse_level(" Warning ") == log.WARNING
        assert log.parse_level("error") == log.ERROR
        assert log.parse_level(25) == 25

    def test_parse_level_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.parse_level("verbose")

    def test_level_name_round_trip(self):
        for level in (log.DEBUG, log.INFO, log.WARNING, log.ERROR):
            assert log.parse_level(log.level_name(level)) == level

    def test_records_below_level_dropped(self):
        stream = io.StringIO()
        log.configure(level=log.WARNING, stream=stream)
        logger = log.get_logger("test")
        logger.debug("dropped_debug")
        logger.info("dropped_info")
        logger.warning("kept_warning")
        logger.error("kept_error")
        lines = _text_records(stream)
        assert len(lines) == 2
        assert "kept_warning" in lines[0]
        assert "kept_error" in lines[1]

    def test_debug_level_keeps_everything(self):
        stream = io.StringIO()
        log.configure(level="debug", stream=stream)
        logger = log.get_logger("test")
        logger.debug("a")
        logger.info("b")
        assert len(_text_records(stream)) == 2


class TestBinding:
    def test_bind_merges_context(self):
        stream = io.StringIO()
        log.configure(stream=stream)
        base = log.get_logger("serve", engine="event")
        child = base.bind(job_id="j1", attempt=2)
        child.info("lease_granted", ttl_s=120)
        (line,) = _text_records(stream)
        assert "engine=event" in line
        assert "job_id=j1" in line
        assert "attempt=2" in line
        assert "ttl_s=120" in line

    def test_bind_does_not_mutate_parent(self):
        base = log.get_logger("pool", slot=0)
        child = base.bind(slot=3, cell="abc")
        assert base.context == {"slot": 0}
        assert child.context == {"slot": 3, "cell": "abc"}

    def test_call_fields_shadow_bound_context(self):
        stream = io.StringIO()
        log.configure(stream=stream)
        logger = log.get_logger("test", phase="warmup")
        logger.info("tick", phase="measure")
        (line,) = _text_records(stream)
        assert "phase=measure" in line
        assert "phase=warmup" not in line


class TestJsonlSink:
    def test_record_shape(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log.configure(jsonl_path=str(path), text=False)
        logger = log.get_logger("simulator", engine="event", config="abc123")
        logger.info("run_start", workload="bfs", cores=4)
        logger.warning("run_slow", cycles=10)
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert len(records) == 2
        first = records[0]
        assert first["event"] == "run_start"
        assert first["logger"] == "simulator"
        assert first["level"] == "INFO"  # name, not number
        assert first["engine"] == "event"
        assert first["config"] == "abc123"
        assert first["workload"] == "bfs"
        assert first["cores"] == 4
        assert isinstance(first["ts"], float)
        assert records[1]["level"] == "WARNING"

    def test_appends_across_configurations(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log.configure(jsonl_path=str(path), text=False)
        log.get_logger("a").info("first")
        log.reset()
        log.configure(jsonl_path=str(path), text=False)
        log.get_logger("a").info("second")
        log.reset()
        events = [
            json.loads(line)["event"]
            for line in path.read_text().splitlines()
        ]
        assert events == ["first", "second"]

    def test_each_record_flushed(self, tmp_path):
        # Crash safety: the file reflects every record without close().
        path = tmp_path / "run.jsonl"
        log.configure(jsonl_path=str(path), text=False)
        log.get_logger("a").info("durable")
        assert "durable" in path.read_text()

    def test_written_counter(self, tmp_path):
        log.configure(jsonl_path=str(tmp_path / "r.jsonl"), text=False)
        (sink,) = log.sinks()
        log.get_logger("a").info("one")
        log.get_logger("a").debug("dropped")
        assert sink.written == 1


class TestTextSink:
    def test_line_format(self):
        stream = io.StringIO()
        log.configure(stream=stream)
        log.get_logger("serve").info("job_done", job_id="j9", elapsed_s=1.5)
        (line,) = _text_records(stream)
        ts, level, event = line.split()[:3]
        assert len(ts.split(":")) == 3
        assert level == "INFO"
        assert event == "job_done"
        assert "job_id=j9" in line
        assert "elapsed_s=1.5" in line


class TestConfigureFromEnv:
    def test_nothing_set_stays_disabled(self):
        assert log.configure_from_env({}) is False
        assert log.ENABLED is False

    def test_level_enables_text(self):
        assert log.configure_from_env({"REPRO_LOG_LEVEL": "debug"}) is True
        assert log.ENABLED is True
        assert log.LEVEL == log.DEBUG
        (sink,) = log.sinks()
        assert isinstance(sink, log.TextLogSink)

    def test_jsonl_only(self, tmp_path):
        path = tmp_path / "env.jsonl"
        assert (
            log.configure_from_env({"REPRO_LOG_JSONL": str(path)}) is True
        )
        assert log.LEVEL == log.INFO
        (sink,) = log.sinks()
        assert isinstance(sink, log.JsonlLogSink)
        log.get_logger("a").info("via_env")
        assert "via_env" in path.read_text()

    def test_both_set(self, tmp_path):
        path = tmp_path / "env.jsonl"
        log.configure_from_env(
            {
                "REPRO_LOG_LEVEL": "warning",
                "REPRO_LOG_JSONL": str(path),
            }
        )
        assert log.LEVEL == log.WARNING
        kinds = {type(s) for s in log.sinks()}
        assert kinds == {log.TextLogSink, log.JsonlLogSink}

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            log.configure_from_env({"REPRO_LOG_LEVEL": "loud"})


class TestSimulationUnaffected:
    def test_results_identical_with_logging_on(self, tmp_path):
        from repro.api import simulate
        from repro.core.config import GPUConfig

        config = GPUConfig.preset(
            "baseline",
            num_cores=1,
            warps_per_core=8,
            warp_width=8,
            warmup_instructions=0,
        )
        baseline = simulate(config=config, workload="bfs")
        log.configure(
            level="debug", jsonl_path=str(tmp_path / "sim.jsonl"), text=False
        )
        logged = simulate(config=config, workload="bfs")
        assert (
            logged.canonical_json() == baseline.canonical_json()
        )
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "sim.jsonl").read_text().splitlines()
        ]
        assert "run_start" in events
        assert "run_end" in events
