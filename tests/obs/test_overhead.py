"""Instrumentation must not perturb simulation: identical results on or
off — for the :mod:`repro.obs` tracer and the :mod:`repro.prof` phase
profiler alike.  The profiler tests pin byte-identity against the
pre-instrumentation golden files in ``tests/faults/golden/``."""

import pathlib

import pytest

from repro.core import presets
from repro.core.config import TraceConfig
from repro.core.simulator import Simulator
from repro.obs import tracer as trace
from repro.prof import profiler as prof

from helpers import small_config, small_workload

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "faults" / "golden"

GEOM = dict(num_cores=1, warps_per_core=8, warp_width=8)

GOLDEN_CONFIGS = {
    "blocking": lambda: small_config(),
    "augmented": lambda: presets.augmented_tlb(**GEOM),
}


def run(config, workload_name=None):
    workload = small_workload()
    work = workload.build(config)
    return Simulator(config, work, workload_name or workload.name).run()


class TestObservationOnly:
    def test_ring_buffer_tracing_preserves_every_statistic(self):
        base = small_config()
        traced = small_config(
            trace=TraceConfig(enabled=True, ring_capacity=1 << 14, interval_cycles=0)
        )
        off = run(base)
        on = run(traced)
        assert on.cycles == off.cycles
        assert on.stats == off.stats
        # Serialized forms are byte-identical once the trace-only extras
        # (attached only when tracing) are stripped.
        on.interval_series, on.histograms = [], {}
        assert on.to_json() == off.to_json()

    def test_interval_sampling_preserves_cycles(self):
        off = run(small_config())
        on = run(
            small_config(
                trace=TraceConfig(enabled=True, ring_capacity=1 << 14, interval_cycles=256)
            )
        )
        assert on.cycles == off.cycles
        assert on.stats == off.stats
        assert on.interval_series  # and the series actually materialized

    def test_traced_run_attaches_histograms(self):
        result = run(
            small_config(trace=TraceConfig(enabled=True, ring_capacity=1 << 14))
        )
        assert "tlb_miss_latency" in result.histograms
        assert "page_divergence" in result.histograms

    def test_untraced_run_attaches_nothing(self):
        result = run(small_config())
        assert result.interval_series == []
        assert result.histograms == {}

    def test_trace_override_forces_tracing_without_touching_results(self):
        from repro.core import simulator as sim_mod
        from repro.core.simulator import trace_override

        base = small_config()
        off = run(base)
        forced = TraceConfig(
            enabled=True, ring_capacity=1 << 14, interval_cycles=256
        )
        with trace_override(forced):
            on = run(base)  # config itself stays untraced
        assert sim_mod._TRACE_OVERRIDE is None  # restored
        assert base.trace.enabled is False
        assert on.cycles == off.cycles
        assert on.stats == off.stats
        assert on.interval_series  # the override really traced the run
        assert on.histograms

    def test_trace_override_nests_and_restores(self):
        from repro.core import simulator as sim_mod
        from repro.core.simulator import trace_override

        outer = TraceConfig(enabled=True, ring_capacity=64)
        inner = TraceConfig(enabled=True, ring_capacity=128)
        with trace_override(outer):
            with trace_override(inner):
                assert sim_mod._TRACE_OVERRIDE is inner
            assert sim_mod._TRACE_OVERRIDE is outer
        assert sim_mod._TRACE_OVERRIDE is None

    def test_tracer_uninstalled_after_run(self):
        run(small_config(trace=TraceConfig(enabled=True)))
        assert trace.ENABLED is False
        assert trace.active() is None


class TestProfilerObservationOnly:
    """The phase profiler is host-side only: zero result perturbation."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
    def test_profiling_disabled_matches_pre_instrumentation_goldens(
        self, name
    ):
        assert prof.ENABLED is False
        result = run(GOLDEN_CONFIGS[name](), workload_name="tiny")
        golden = (GOLDEN_DIR / f"{name}.json").read_text()
        assert result.to_json() + "\n" == golden

    @pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
    def test_profiling_enabled_matches_pre_instrumentation_goldens(
        self, name
    ):
        with prof.profile() as profiler:
            result = run(GOLDEN_CONFIGS[name](), workload_name="tiny")
        golden = (GOLDEN_DIR / f"{name}.json").read_text()
        assert result.to_json() + "\n" == golden
        # And the profiler actually observed the run.
        assert profiler.counts["cells"] == 1
        assert profiler.records[prof.PHASE_SIMULATE].calls == 1

    def test_profiler_uninstalled_after_profile_block(self):
        with prof.profile():
            run(small_config())
        assert prof.ENABLED is False
        assert prof.active() is None

    def test_profiler_balanced_after_run(self):
        with prof.profile() as profiler:
            run(small_config())
        assert profiler.depth == 0
