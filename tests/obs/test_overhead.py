"""Tracing must not perturb simulation: identical results on or off."""

from repro.core.config import TraceConfig
from repro.core.simulator import Simulator
from repro.obs import tracer as trace

from helpers import small_config, small_workload


def run(config):
    workload = small_workload()
    work = workload.build(config)
    return Simulator(config, work, workload.name).run()


class TestObservationOnly:
    def test_ring_buffer_tracing_preserves_every_statistic(self):
        base = small_config()
        traced = small_config(
            trace=TraceConfig(enabled=True, ring_capacity=1 << 14, interval_cycles=0)
        )
        off = run(base)
        on = run(traced)
        assert on.cycles == off.cycles
        assert on.stats == off.stats
        # Serialized forms are byte-identical once the trace-only extras
        # (attached only when tracing) are stripped.
        on.interval_series, on.histograms = [], {}
        assert on.to_json() == off.to_json()

    def test_interval_sampling_preserves_cycles(self):
        off = run(small_config())
        on = run(
            small_config(
                trace=TraceConfig(enabled=True, ring_capacity=1 << 14, interval_cycles=256)
            )
        )
        assert on.cycles == off.cycles
        assert on.stats == off.stats
        assert on.interval_series  # and the series actually materialized

    def test_traced_run_attaches_histograms(self):
        result = run(
            small_config(trace=TraceConfig(enabled=True, ring_capacity=1 << 14))
        )
        assert "tlb_miss_latency" in result.histograms
        assert "page_divergence" in result.histograms

    def test_untraced_run_attaches_nothing(self):
        result = run(small_config())
        assert result.interval_series == []
        assert result.histograms == {}

    def test_tracer_uninstalled_after_run(self):
        run(small_config(trace=TraceConfig(enabled=True)))
        assert trace.ENABLED is False
        assert trace.active() is None
