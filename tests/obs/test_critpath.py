"""Critical-path reports: invariants, renders, exports."""

import json

import pytest

from repro.core.simulator import Simulator
from repro.obs.critpath import CriticalPathReport
from repro.obs.spans import Span, SpanRecorder, record_spans
from repro.prof.registry import MetricsRegistry

from helpers import small_config, small_workload


def recorded_run():
    config = small_config()
    wl = small_workload()
    with record_spans(keep_slowest=5) as rec:
        result = Simulator(config, wl.build(config), wl.name).run()
    return rec, result


@pytest.fixture(scope="module")
def run():
    return recorded_run()


class TestInvariants:
    def test_verify_passes_on_real_run(self, run):
        rec, _ = run
        CriticalPathReport(rec, label="small").verify()

    def test_verify_raises_on_per_request_mismatch(self):
        rec = SpanRecorder()
        root = Span("translation", 0, 10)
        root.add(Span("a", 0, 4))  # hole: 4..10 unattributed
        rec.record(root)
        with pytest.raises(AssertionError, match="did not tile"):
            CriticalPathReport(rec).verify()

    def test_breakdown_sums_to_total(self, run):
        rec, _ = run
        report = CriticalPathReport(rec)
        rows = report.breakdown()
        assert sum(r["cycles"] for r in rows) == rec.total_cycles
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)


class TestRenders:
    def test_to_dict_is_json_safe_and_complete(self, run):
        rec, result = run
        report = CriticalPathReport(rec, label="small")
        d = json.loads(json.dumps(report.to_dict()))
        assert d["label"] == "small"
        assert d["requests"] == result.stats.tlb_misses
        assert d["mismatches"] == 0
        assert {r["component"] for r in d["components"]} >= {
            "tlb_probe",
            "memory",
        }
        assert "end_to_end" in d["histograms"]
        assert len(d["slowest"]) <= 5
        assert d["slowest"] == sorted(
            d["slowest"], key=lambda s: -s["dur"]
        )

    def test_render_text_reports_exact_checksum(self, run):
        rec, _ = run
        text = CriticalPathReport(rec, label="small").render_text(top=2)
        assert "== critical path: small ==" in text
        assert "(exact; 0 per-request mismatches)" in text
        assert "-- top 2 slowest translations --" in text
        assert "#1:" in text and "#3:" not in text

    def test_render_text_handles_empty_recorder(self):
        text = CriticalPathReport(SpanRecorder(), label="idle").render_text()
        assert "no TLB misses recorded" in text


class TestRegistryExport:
    def test_counters_mirror_breakdown(self, run):
        rec, _ = run
        registry = MetricsRegistry()
        CriticalPathReport(rec).to_registry(registry, target="t1")
        assert (
            registry.counter("span_requests_total").value(target="t1")
            == rec.requests
        )
        assert registry.counter("span_mismatch_total").value(target="t1") == 0
        assert (
            registry.counter("span_end_to_end_cycles_total").value(
                target="t1"
            )
            == rec.total_cycles
        )
        comp = registry.counter("span_component_cycles_total")
        total = sum(comp.series().values())
        assert total == rec.total_cycles


class TestTraceExport:
    def test_chrome_trace_round_trip(self, run, tmp_path):
        rec, _ = run
        report = CriticalPathReport(rec)
        path = tmp_path / "spans.chrome.json"
        count = report.write_chrome_trace(str(path))
        nodes = sum(1 for root in rec.slowest for _ in root.walk())
        assert count == nodes
        data = json.loads(path.read_text())
        slices = [e for e in data if e["ph"] == "X"]
        assert len(slices) == nodes
        # One flow start/finish pair per parent→child edge.
        edges = nodes - len(rec.slowest)
        starts = [e for e in data if e["ph"] == "s"]
        finishes = [e for e in data if e["ph"] == "f"]
        assert len(starts) == len(finishes) == edges
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_jsonl_lines_are_span_events(self, run, tmp_path):
        rec, _ = run
        path = tmp_path / "spans.jsonl"
        count = CriticalPathReport(rec).write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count
        first = json.loads(lines[0])
        assert first["kind"] == "span"
        assert first["args"]["op"] == "translation"
        assert first["track"] == "slow-1"
