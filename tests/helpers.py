"""Shared builders for small, fast test machines and workloads."""

from __future__ import annotations

from repro.core.config import GPUConfig
from repro.workloads.base import Workload, WorkloadSpec


def small_config(**overrides) -> GPUConfig:
    """An 8-warp, 1-core machine for fast functional tests."""
    defaults = dict(num_cores=1, warps_per_core=8, warp_width=8)
    defaults.update(overrides)
    return GPUConfig(**defaults)


def small_workload(**overrides) -> Workload:
    """A tiny deterministic workload matching ``small_config``."""
    defaults = dict(
        name="tiny",
        instructions_per_warp=20,
        compute_latency=3,
        private_pages=2,
        lines_per_page=4,
        hot_pool_pages=16,
        shared_fraction=0.4,
        cold_fraction=0.1,
        cold_pages=64,
        page_div_mean=2.0,
        page_div_max=4,
        block_warps=4,
        regions_per_block=3,
        region_mems=2,
        seed=7,
    )
    defaults.update(overrides)
    return Workload(WorkloadSpec(**defaults))
