"""Victim tag arrays (CCWS / TCWS)."""

import pytest

from repro.tlb.victim_array import VictimTagArray


class TestVTA:
    def test_probe_empty_misses(self):
        vta = VictimTagArray(num_warps=4)
        assert not vta.probe(0, 123)

    def test_insert_then_probe_hits(self):
        vta = VictimTagArray(num_warps=4)
        vta.insert(0, 123)
        assert vta.probe(0, 123)

    def test_arrays_are_per_warp(self):
        vta = VictimTagArray(num_warps=4)
        vta.insert(0, 123)
        assert not vta.probe(1, 123)

    def test_capacity_lru(self):
        vta = VictimTagArray(num_warps=1, entries_per_warp=2, associativity=2)
        vta.insert(0, 0)
        vta.insert(0, 2)
        vta.insert(0, 4)  # evicts tag 0
        assert not vta.probe(0, 0)
        assert vta.probe(0, 2) and vta.probe(0, 4)

    def test_hit_rate(self):
        vta = VictimTagArray(num_warps=1)
        vta.insert(0, 1)
        vta.probe(0, 1)
        vta.probe(0, 2)
        assert vta.hit_rate == 0.5

    def test_storage_comparison(self):
        # TCWS uses half the tags of CCWS (paper Section 7.2).
        ccws = VictimTagArray(num_warps=48, entries_per_warp=16)
        tcws = VictimTagArray(num_warps=48, entries_per_warp=8)
        assert tcws.storage_tags() * 2 == ccws.storage_tags()

    def test_degenerates_to_fully_associative(self):
        vta = VictimTagArray(num_warps=1, entries_per_warp=2, associativity=8)
        assert vta.num_sets == 1

    def test_flush(self):
        vta = VictimTagArray(num_warps=2)
        vta.insert(0, 1)
        vta.flush()
        assert not vta.probe(0, 1)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            VictimTagArray(num_warps=0)
        with pytest.raises(ValueError):
            VictimTagArray(num_warps=1, entries_per_warp=6, associativity=4)
