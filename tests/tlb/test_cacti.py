"""CACTI-substitute latency model."""

from repro.tlb.cacti import access_latency, is_practical


class TestLatency:
    def test_practical_designs_are_free(self):
        assert access_latency(128, 4) == 0
        assert access_latency(64, 3) == 0

    def test_size_penalty_grows(self):
        assert access_latency(256, 4) > 0
        assert access_latency(512, 4) > access_latency(256, 4)

    def test_port_penalty_grows(self):
        assert access_latency(128, 8) > 0
        assert access_latency(128, 32) > access_latency(128, 8)

    def test_penalties_compose(self):
        assert access_latency(512, 32) == access_latency(512, 4) + access_latency(128, 32)

    def test_ideal_waives_everything(self):
        assert access_latency(512, 32, ideal=True) == 0

    def test_unlisted_sizes_interpolate(self):
        assert access_latency(192, 4) >= access_latency(128, 4)
        assert access_latency(2048, 4) > access_latency(1024, 4) - 1

    def test_practical_envelope(self):
        assert is_practical(128, 4)
        assert not is_practical(256, 4)
        assert not is_practical(128, 8)
