"""Property-based tests on the TLB."""

from hypothesis import given, settings, strategies as st

from repro.tlb.tlb import SetAssociativeTLB

vpns = st.integers(min_value=0, max_value=4095)


@settings(max_examples=40, deadline=None)
@given(st.lists(vpns, min_size=1, max_size=200))
def test_capacity_never_exceeded(stream):
    tlb = SetAssociativeTLB(entries=16, associativity=4)
    for vpn in stream:
        if not tlb.lookup(vpn).hit:
            tlb.fill(vpn, vpn + 1)
    assert tlb.resident <= 16


@settings(max_examples=40, deadline=None)
@given(st.lists(vpns, min_size=1, max_size=200))
def test_hits_return_filled_translation(stream):
    tlb = SetAssociativeTLB(entries=16, associativity=4)
    for vpn in stream:
        result = tlb.lookup(vpn)
        if result.hit:
            assert result.pfn == vpn + 1
        else:
            tlb.fill(vpn, vpn + 1)


@settings(max_examples=40, deadline=None)
@given(st.lists(vpns, min_size=1, max_size=100))
def test_lru_depth_bounded_by_associativity(stream):
    tlb = SetAssociativeTLB(entries=16, associativity=4)
    for vpn in stream:
        result = tlb.lookup(vpn)
        if result.hit:
            assert 0 <= result.lru_depth < 4
        else:
            tlb.fill(vpn, 0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(vpns, st.integers(0, 47)), min_size=1, max_size=100))
def test_history_only_contains_seen_warps(stream):
    tlb = SetAssociativeTLB(entries=16, associativity=4)
    seen = set()
    for vpn, warp in stream:
        seen.add(warp)
        result = tlb.lookup(vpn, warp_id=warp)
        if result.hit:
            assert set(result.prior_history) <= seen
        else:
            tlb.fill(vpn, 0, warp_id=warp)
