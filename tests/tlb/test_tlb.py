"""The set-associative TLB."""

import pytest

from repro.tlb.tlb import SetAssociativeTLB


def tiny_tlb(entries=8, assoc=2, ports=2):
    return SetAssociativeTLB(entries=entries, associativity=assoc, ports=ports)


class TestLookup:
    def test_cold_miss(self):
        tlb = tiny_tlb()
        assert not tlb.lookup(5).hit

    def test_hit_after_fill(self):
        tlb = tiny_tlb()
        tlb.fill(5, 500)
        result = tlb.lookup(5)
        assert result.hit and result.pfn == 500

    def test_counters_and_miss_rate(self):
        tlb = tiny_tlb()
        tlb.lookup(5)
        tlb.fill(5, 500)
        tlb.lookup(5)
        assert (tlb.hits, tlb.misses) == (1, 1)
        assert tlb.miss_rate == 0.5

    def test_probe_is_side_effect_free(self):
        tlb = tiny_tlb()
        tlb.fill(5, 500)
        assert tlb.probe(5)
        assert not tlb.probe(6)
        assert tlb.hits == 0 and tlb.misses == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB(entries=10, associativity=4)
        with pytest.raises(ValueError):
            SetAssociativeTLB(entries=0)


class TestReplacement:
    def test_lru_eviction(self):
        tlb = tiny_tlb(entries=2, assoc=2)  # one set
        tlb.fill(0, 1)
        tlb.fill(1, 2)
        eviction = tlb.fill(2, 3)
        assert eviction.vpn == 0
        assert tlb.probe(1) and tlb.probe(2) and not tlb.probe(0)

    def test_hit_refreshes_lru(self):
        tlb = tiny_tlb(entries=2, assoc=2)
        tlb.fill(0, 1)
        tlb.fill(1, 2)
        tlb.lookup(0)
        eviction = tlb.fill(2, 3)
        assert eviction.vpn == 1

    def test_refill_same_vpn_updates_pfn(self):
        tlb = tiny_tlb()
        tlb.fill(5, 500)
        assert tlb.fill(5, 600) is None
        assert tlb.lookup(5).pfn == 600

    def test_eviction_owner_is_last_hitter(self):
        tlb = tiny_tlb(entries=2, assoc=2)
        tlb.fill(0, 1, warp_id=3)
        tlb.lookup(0, warp_id=9)
        tlb.fill(1, 2)
        eviction = tlb.fill(2, 3)
        assert eviction.vpn == 0
        assert eviction.owner == 9

    def test_flush(self):
        tlb = tiny_tlb()
        tlb.fill(5, 500)
        tlb.flush()
        assert tlb.resident == 0


class TestLRUDepth:
    def test_mru_hit_depth_zero(self):
        tlb = tiny_tlb(entries=4, assoc=4)
        tlb.fill(0, 1)
        assert tlb.lookup(0).lru_depth == 0

    def test_depth_counts_from_mru(self):
        tlb = tiny_tlb(entries=4, assoc=4)
        for vpn in range(4):
            tlb.fill(vpn, vpn)
        # vpn 0 is now the LRU entry of the set (depth 3).
        assert tlb.lookup(0).lru_depth == 3
        # After that hit it is MRU again.
        assert tlb.lookup(0).lru_depth == 0


class TestWarpHistory:
    def test_history_records_prior_warps(self):
        tlb = tiny_tlb()
        tlb.fill(5, 500, warp_id=1)
        first = tlb.lookup(5, warp_id=2)
        assert first.prior_history == (1,)
        second = tlb.lookup(5, warp_id=3)
        assert second.prior_history == (2, 1)

    def test_history_bounded_to_two(self):
        tlb = tiny_tlb()
        tlb.fill(5, 500, warp_id=1)
        for warp in (2, 3, 4):
            tlb.lookup(5, warp_id=warp)
        assert len(tlb.lookup(5, warp_id=9).prior_history) == 2

    def test_repeat_hitter_not_duplicated(self):
        tlb = tiny_tlb()
        tlb.fill(5, 500, warp_id=1)
        tlb.lookup(5, warp_id=1)
        assert tlb.lookup(5, warp_id=2).prior_history == (1,)
