"""Calibration of the six workloads against the paper's Figure 3 bands.

These run full (single-core) simulations and are the slowest unit tests
in the suite (~10 s total).
"""

import pytest

from repro.core import presets
from repro.core.simulator import Simulator
from repro.workloads.registry import get_workload, workload_names

#: name -> (miss_lo, miss_hi, pdiv_lo, pdiv_hi, memfrac_hi)
BANDS = {
    "bfs": (0.5, 0.85, 3.0, 7.0, 0.15),
    "kmeans": (0.10, 0.35, 1.0, 2.0, 0.25),
    "streamcluster": (0.20, 0.45, 1.3, 2.7, 0.30),
    "mummergpu": (0.6, 0.95, 5.0, 12.0, 0.20),
    "pathfinder": (0.12, 0.40, 1.0, 2.5, 0.12),
    "memcached": (0.25, 0.55, 1.6, 3.2, 0.17),
}


@pytest.fixture(scope="module")
def characterization():
    results = {}
    for name in workload_names():
        config = presets.naive_tlb(ports=4, warmup_instructions=20)
        workload = get_workload(name)
        results[name] = Simulator(
            config, workload.build(config), name
        ).run()
    return results


@pytest.mark.parametrize("name", workload_names())
def test_miss_rate_band(characterization, name):
    lo, hi, _, _, _ = BANDS[name]
    assert lo <= characterization[name].stats.tlb_miss_rate <= hi


@pytest.mark.parametrize("name", workload_names())
def test_page_divergence_band(characterization, name):
    _, _, lo, hi, _ = BANDS[name]
    assert lo <= characterization[name].stats.average_page_divergence <= hi


@pytest.mark.parametrize("name", workload_names())
def test_memory_fraction_band(characterization, name):
    # Paper: memory references are under 25 % of instructions for all.
    _, _, _, _, hi = BANDS[name]
    frac = characterization[name].stats.memory_instruction_fraction
    assert 0.03 <= frac <= hi


def test_divergence_ordering(characterization):
    # mummergpu > bfs > everything else (Figure 3 right).
    pdiv = {
        name: result.stats.average_page_divergence
        for name, result in characterization.items()
    }
    assert pdiv["mummergpu"] > pdiv["bfs"]
    assert pdiv["bfs"] > max(
        pdiv[n] for n in ("kmeans", "streamcluster", "pathfinder")
    )


def test_miss_rate_ordering(characterization):
    rates = {
        name: result.stats.tlb_miss_rate
        for name, result in characterization.items()
    }
    assert rates["mummergpu"] >= rates["bfs"] > rates["kmeans"]
