"""Workload generator structure."""

from helpers import small_config, small_workload

from repro.gpu.instruction import ComputeInstruction, MemoryInstruction
from repro.gpu.tbc.blocks import ThreadBlock


class TestLinearForm:
    def test_shape(self):
        config = small_config()
        work = small_workload().build_linear(config)
        assert len(work) == config.num_cores
        assert len(work[0]) == config.warps_per_core
        assert all(len(t.instructions) == 20 for t in work[0])

    def test_deterministic(self):
        config = small_config()
        a = small_workload().build_linear(config)
        b = small_workload().build_linear(config)
        first_a = next(i for i in a[0][0].instructions if isinstance(i, MemoryInstruction))
        first_b = next(i for i in b[0][0].instructions if isinstance(i, MemoryInstruction))
        assert first_a.addresses == first_b.addresses

    def test_seed_changes_stream(self):
        config = small_config()
        a = small_workload(seed=1).build_linear(config)
        b = small_workload(seed=2).build_linear(config)
        mem_a = [i for i in a[0][0].instructions if isinstance(i, MemoryInstruction)]
        mem_b = [i for i in b[0][0].instructions if isinstance(i, MemoryInstruction)]
        assert any(x.addresses != y.addresses for x, y in zip(mem_a, mem_b))

    def test_alternates_compute_and_memory(self):
        config = small_config()
        trace = small_workload().build_linear(config)[0][0]
        kinds = [type(i) for i in trace.instructions]
        assert ComputeInstruction in kinds and MemoryInstruction in kinds

    def test_private_pages_disjoint_across_warps(self):
        wl = small_workload()
        pages_a = set(wl._warp_pages(0, 0, 8))
        pages_b = set(wl._warp_pages(0, 1, 8))
        assert not pages_a & pages_b

    def test_miss_scale_reduces_cold_picks(self):
        config = small_config()
        def cold_count(scale):
            work = small_workload(cold_fraction=0.5).build_linear(config, miss_scale=scale)
            count = 0
            for trace in work[0]:
                for instr in trace.instructions:
                    if isinstance(instr, MemoryInstruction):
                        count += sum(
                            1 for a in instr.addresses
                            if a is not None and a >= (1 << 31) * 4096
                        )
            return count
        assert cold_count(1.0) > cold_count(0.1)


class TestBlockForm:
    def test_shape(self):
        config = small_config()
        work = small_workload().build_blocks(config)
        assert len(work) == config.num_cores
        blocks = work[0]
        assert all(isinstance(b, ThreadBlock) for b in blocks)
        assert len(blocks) == config.warps_per_core // 4  # block_warps=4

    def test_pairs_share_page_sets(self):
        wl = small_workload()
        assert wl._pair_pages(0, 2, 8) == wl._pair_pages(0, 3, 8)
        assert wl._pair_pages(0, 0, 8) != wl._pair_pages(0, 2, 8)

    def test_build_dispatch(self):
        config = small_config()
        wl = small_workload()
        linear = wl.build(config, form="linear")
        blocks = wl.build(config, form="blocks")
        assert not isinstance(linear[0][0], ThreadBlock)
        assert isinstance(blocks[0][0], ThreadBlock)

    def test_unknown_form_rejected(self):
        config = small_config()
        try:
            small_workload().build(config, form="nope")
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")
