"""The engine contract: event == cycle, byte for byte.

Each golden pin runs one (config, workload) cell — shrunk versions of
the Figure 2 and Figure 11 machines, the same matrix the snapshot
resume tests pin — under both engines and asserts the serialized
results are identical (``canonical_json``).  The observed variants
repeat the pin with the event tracer, the phase profiler, and the
causal span recorder enabled (alone and together): the event engine
emits instrumentation natively from its own next-event loop (no
cycle-loop fallback), and the contract must hold on every path.

``fig02-tbc`` and ``fig02-tlb-tbc`` are regression pins for warp-id
aliasing: TBC compaction can field two *live* warps with the same
hardware warp id, where every stock scheduler breaks the tie by
candidate-list position — an engine that reorders its ready list
diverges on exactly these cells.
"""

from __future__ import annotations

import contextlib
import dataclasses

import pytest

from repro.api import simulate
from repro.core import presets
from repro.core.config import GPUConfig, TraceConfig
from repro.obs.spans import SpanRecorder, record_spans
from repro.prof import profiler

_TINY = dict(num_cores=1, warps_per_core=8, warp_width=8)


def _preset(name: str, **overrides) -> GPUConfig:
    merged = dict(_TINY)
    merged.update(overrides)
    return GPUConfig.preset(name, **merged)


#: name -> (config, workload, form)
GOLDENS = {
    # Figure 2: the naive-TLB degradation matrix.
    "fig02-no-tlb": (_preset("no_tlb"), "bfs", None),
    "fig02-naive": (_preset("naive", ports=3), "bfs", None),
    "fig02-ccws": (presets.with_ccws(_preset("naive", ports=3)), "kmeans", None),
    "fig02-tbc": (
        presets.with_tbc(_preset("naive", ports=3, warmup_instructions=0), "tbc"),
        "bfs",
        "blocks",
    ),
    "fig02-tlb-tbc": (
        presets.with_tbc(
            _preset("naive", ports=3, warmup_instructions=0), "tlb-tbc"
        ),
        "bfs",
        "blocks",
    ),
    # Figure 11: walker pools vs the augmented walker.
    "fig11-ptw4": (presets.multi_ptw_tlb(4, **_TINY), "kmeans", None),
    "fig11-aug": (_preset("augmented"), "bfs", None),
}


def _run(
    config: GPUConfig,
    workload: str,
    form,
    engine: str,
    traced: bool = False,
    profiled: bool = False,
    spanned: bool = False,
) -> str:
    if traced:
        config = dataclasses.replace(
            config,
            trace=TraceConfig(
                enabled=True, ring_capacity=4096, interval_cycles=250
            ),
        )
    prof_guard = profiler.profile() if profiled else contextlib.nullcontext()
    span_guard = (
        record_spans(SpanRecorder(keep_slowest=5))
        if spanned
        else contextlib.nullcontext()
    )
    with prof_guard, span_guard:
        result = simulate(
            config=config, workload=workload, form=form, engine=engine
        )
    return result.canonical_json()


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_event_matches_cycle(name):
    config, workload, form = GOLDENS[name]
    assert _run(config, workload, form, "event") == _run(
        config, workload, form, "cycle"
    )


@pytest.mark.parametrize("name", ["fig02-naive", "fig02-tbc", "fig11-aug"])
@pytest.mark.parametrize(
    "traced,profiled,spanned",
    [
        (True, False, False),
        (False, True, False),
        (False, False, True),
        (True, True, True),
    ],
    ids=["traced", "profiled", "spanned", "all-observers"],
)
def test_event_matches_cycle_under_observation(name, traced, profiled, spanned):
    config, workload, form = GOLDENS[name]
    kwargs = dict(traced=traced, profiled=profiled, spanned=spanned)
    assert _run(config, workload, form, "event", **kwargs) == _run(
        config, workload, form, "cycle", **kwargs
    )
