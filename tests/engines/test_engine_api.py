"""The engine selection surface: registry, config, API, CLI, caching.

Engines are first-class configuration: ``repro.engines`` is the
registry, ``GPUConfig.engine`` the validated field, ``engine=`` the
keyword on :func:`repro.api.simulate`/``sweep``/``figure``, ``--engine``
the CLI flag, and the choice participates in canonical config JSON —
hence config hashes, result-cache keys, and serve job ids.
"""

from __future__ import annotations

import pytest

from repro import engines
from repro.api import figure, simulate, sweep
from repro.core.config import GPUConfig, canonical_config_json
from repro.core.simulator import Simulator
from repro.parallel.cache import cache_key
from repro.parallel.cells import Cell
from repro.workloads.base import TIMING_MISS_SCALE
from repro.workloads.registry import get_workload

_TINY = dict(num_cores=1, warps_per_core=8, warp_width=8)


class TestRegistry:
    def test_both_engines_registered(self):
        assert set(engines.available_engines()) == {"cycle", "event"}

    def test_event_is_the_default(self):
        assert engines.DEFAULT_ENGINE == "event"
        assert GPUConfig().engine == "event"

    def test_get_engine_resolves_classes(self):
        for name in engines.available_engines():
            cls = engines.get_engine(name)
            assert cls.name == name

    def test_get_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            engines.get_engine("verilog")

    def test_register_engine(self):
        engines.register_engine(
            "cycle-alias", "repro.engines.cycle:CycleEngine"
        )
        try:
            assert "cycle-alias" in engines.available_engines()
            assert engines.get_engine("cycle-alias").name == "cycle"
        finally:
            engines._REGISTRY.pop("cycle-alias")

    def test_register_engine_rejects_bad_target(self):
        with pytest.raises(ValueError):
            engines.register_engine("", "repro.engines.cycle:CycleEngine")
        with pytest.raises(ValueError):
            engines.register_engine("x", "no-colon-here")


class TestConfig:
    def test_config_validates_engine(self):
        with pytest.raises(ValueError, match="engine"):
            GPUConfig(engine="verilog")

    def test_preset_accepts_engine(self):
        config = GPUConfig.preset("augmented", engine="cycle", **_TINY)
        assert config.engine == "cycle"

    def test_engine_is_in_canonical_config_json(self):
        event = GPUConfig.preset("no_tlb", **_TINY)
        cycle = GPUConfig.preset("no_tlb", engine="cycle", **_TINY)
        assert '"engine":"event"' in canonical_config_json(event)
        assert canonical_config_json(event) != canonical_config_json(cycle)

    def test_engine_separates_cache_keys(self):
        event = Cell("c", "bfs", GPUConfig.preset("no_tlb", **_TINY))
        cycle = Cell(
            "c", "bfs", GPUConfig.preset("no_tlb", engine="cycle", **_TINY)
        )
        assert cache_key(event) != cache_key(cycle)


class TestApi:
    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(config="no_tlb", workload="bfs", engine="verilog")

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            sweep(
                configs={"a": "no_tlb"}, workloads=["bfs"], engine="verilog"
            )

    def test_figure_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            figure(name="fig02", engine="verilog")

    def test_simulate_engine_override_wins(self):
        config = GPUConfig.preset("no_tlb", **_TINY)
        result = simulate(config=config, workload="bfs", engine="cycle")
        # The override never mutates the caller's config object.
        assert config.engine == "event"
        reference = simulate(
            config=GPUConfig.preset("no_tlb", engine="cycle", **_TINY),
            workload="bfs",
        )
        assert result.canonical_json() == reference.canonical_json()


class TestDeprecatedConstruction:
    def test_direct_simulator_warns(self):
        config = GPUConfig.preset("no_tlb", **_TINY)
        source = get_workload("bfs")
        work = source.build(config, miss_scale=TIMING_MISS_SCALE)
        with pytest.warns(DeprecationWarning, match="direct Simulator"):
            Simulator(config, work, source.name)

    def test_build_does_not_warn(self, recwarn):
        config = GPUConfig.preset("no_tlb", **_TINY)
        source = get_workload("bfs")
        work = source.build(config, miss_scale=TIMING_MISS_SCALE)
        Simulator._build(config, work, source.name)
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]


class TestCli:
    @pytest.mark.parametrize(
        "argv",
        [
            pytest.param(["fig04", "--engine", "verilog"], id="figure"),
            pytest.param(
                ["bench", "--engine", "verilog"], id="bench"
            ),
            pytest.param(
                ["trace", "bfs", "--engine", "verilog"], id="trace"
            ),
            pytest.param(
                ["explain", "bfs", "--engine", "verilog"], id="explain"
            ),
            pytest.param(
                ["faults", "--engine", "verilog"], id="faults"
            ),
            pytest.param(
                ["chaos", "--engine", "verilog"], id="chaos"
            ),
        ],
    )
    def test_unknown_engine_exits_2(self, argv, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "verilog" in capsys.readouterr().err
