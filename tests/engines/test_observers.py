"""Cross-engine observer differential: observers see the same run.

``test_identity`` pins that both engines produce byte-identical
*results*; this suite pins that the **observer outputs themselves** are
equivalent — the event engine emits traces, spans, and interval
samples natively from its next-event loop, and what every observer
records must match what it records under the reference cycle loop:

- the JSONL trace stream, compared both raw (the engines emit events
  in the same order, so the files are byte-identical) and after the
  canonical sort (the documented equivalence bar: order within a cycle
  is an implementation detail);
- the span recorder's aggregates — request count, total cycles,
  per-component cycle/count decompositions — with the additive-tiling
  ``mismatches`` counter at zero on both engines;
- the ring-derived histograms and the interval-sampler series carried
  on the result.

Plus the no-fallback guarantee: a traced + spanned event-engine run
never touches the cycle engine (its loop is poisoned during the run).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import simulate
from repro.core import presets
from repro.core.config import GPUConfig, TraceConfig
from repro.obs.spans import SpanRecorder, record_spans

_TINY = dict(num_cores=1, warps_per_core=8, warp_width=8)


def _preset(name: str, **overrides) -> GPUConfig:
    merged = dict(_TINY)
    merged.update(overrides)
    return GPUConfig.preset(name, **merged)


#: name -> (config, workload, form); a slice through the design space
#: (no-TLB baseline, port-limited naive TLB, CCWS scheduling, TBC
#: compaction in blocks form, the augmented walker).
CASES = {
    "no-tlb": (_preset("no_tlb"), "bfs", None),
    "naive": (_preset("naive", ports=3), "bfs", None),
    "ccws": (presets.with_ccws(_preset("naive", ports=3)), "kmeans", None),
    "tbc": (
        presets.with_tbc(_preset("naive", ports=3, warmup_instructions=0), "tbc"),
        "bfs",
        "blocks",
    ),
    "augmented": (_preset("augmented"), "bfs", None),
}


def _observed_run(name: str, engine: str, tmp_path):
    """One traced + spanned + sampled run; returns every observer's
    output alongside the result."""
    config, workload, form = CASES[name]
    jsonl = tmp_path / f"{name}-{engine}.jsonl"
    config = dataclasses.replace(
        config,
        trace=TraceConfig(
            enabled=True,
            ring_capacity=4096,
            interval_cycles=250,
            jsonl_path=str(jsonl),
        ),
    )
    recorder = SpanRecorder(keep_slowest=5)
    with record_spans(recorder):
        result = simulate(
            config=config, workload=workload, form=form, engine=engine
        )
    return {
        "result": result.canonical_json(),
        "raw_trace": jsonl.read_text(),
        "spans": {
            "requests": recorder.requests,
            "total_cycles": recorder.total_cycles,
            "mismatches": recorder.mismatches,
            "component_cycles": dict(recorder.component_cycles),
            "component_counts": dict(recorder.component_counts),
            "histograms": {
                name: hist.to_dict()
                for name, hist in recorder.histograms.items()
            },
        },
        "histograms": result.histograms,
        "interval_series": result.interval_series,
    }


def _canonical(trace_text: str):
    """The documented equivalence bar: events sorted by (cycle, kind,
    core, track, payload) — ordering within a cycle is not contractual."""
    events = [json.loads(line) for line in trace_text.splitlines()]
    events.sort(
        key=lambda e: (
            e["cycle"],
            e["kind"],
            e.get("core", -1),
            e.get("track", ""),
            json.dumps(e.get("args"), sort_keys=True),
        )
    )
    return events


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Both engines over every case, once per module (runs are slow)."""
    tmp_path = tmp_path_factory.mktemp("observer-diff")
    return {
        (name, engine): _observed_run(name, engine, tmp_path)
        for name in CASES
        for engine in ("event", "cycle")
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_results_identical(runs, name):
    assert runs[(name, "event")]["result"] == runs[(name, "cycle")]["result"]


@pytest.mark.parametrize("name", sorted(CASES))
def test_trace_streams_equal_after_canonical_sort(runs, name):
    event = _canonical(runs[(name, "event")]["raw_trace"])
    cycle = _canonical(runs[(name, "cycle")]["raw_trace"])
    assert len(event) > 0
    assert event == cycle


@pytest.mark.parametrize("name", sorted(CASES))
def test_trace_streams_byte_identical(runs, name):
    """Stronger than the canonical bar and currently true: the event
    engine emits in the reference loop's exact order."""
    assert (
        runs[(name, "event")]["raw_trace"]
        == runs[(name, "cycle")]["raw_trace"]
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_span_decompositions_equal_and_tile(runs, name):
    event = runs[(name, "event")]["spans"]
    cycle = runs[(name, "cycle")]["spans"]
    assert event["mismatches"] == 0
    assert cycle["mismatches"] == 0
    assert event == cycle
    if name != "no-tlb":
        assert event["requests"] > 0


@pytest.mark.parametrize("name", sorted(CASES))
def test_histograms_and_interval_series_equal(runs, name):
    event = runs[(name, "event")]
    cycle = runs[(name, "cycle")]
    assert event["histograms"] == cycle["histograms"]
    assert event["interval_series"] == cycle["interval_series"]
    assert len(event["interval_series"]) > 0


def test_observed_event_run_never_touches_cycle_engine(
    tmp_path, monkeypatch
):
    """The no-fallback pin: poison the cycle engine's loop; a fully
    observed event-engine run must still complete."""
    from repro.engines.cycle import CycleEngine

    def poisoned(self, poll=None):  # pragma: no cover - must not run
        raise AssertionError(
            "cycle engine invoked during an event-engine observed run"
        )

    monkeypatch.setattr(CycleEngine, "run", poisoned)
    monkeypatch.setattr(CycleEngine, "step_to", poisoned)
    out = _observed_run("naive", "event", tmp_path)
    assert out["spans"]["requests"] > 0
    assert out["raw_trace"]
