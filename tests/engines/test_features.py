"""Engine capability declarations: no silent fallback, ever.

A ``SimEngine`` declares the observers it supports natively in
``FEATURES``; asking an engine to run with an observer it lacks raises
:class:`repro.engines.EngineFeatureError` (CLI: exit status 2) instead
of quietly substituting another engine.  The stub engine here is the
event engine minus every capability, so any observer request against
it must fail loudly — these tests pin the error surface end to end:
``require_features`` → ``Simulator.run`` → ``repro.api.simulate`` →
each harness subcommand.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.api import simulate
from repro.core.config import GPUConfig, TraceConfig
from repro.engines import (
    OBSERVER_FEATURES,
    EngineFeatureError,
    available_engines,
    engine_features,
    get_engine,
    register_engine,
    require_features,
    unregister_engine,
)
from repro.engines.event import EventEngine
from repro.obs.spans import SpanRecorder, record_spans
from repro.prof import profiler as _prof


class CrippledEngine(EventEngine):
    """Event mechanics, zero declared observer capabilities."""

    name = "crippled"
    FEATURES = frozenset()


@contextlib.contextmanager
def crippled_registered():
    register_engine("crippled", CrippledEngine)
    try:
        yield
    finally:
        unregister_engine("crippled")


TINY = dict(
    num_cores=1, warps_per_core=8, warp_width=8, warmup_instructions=0
)


def test_builtin_engines_declare_every_observer_feature():
    for name in ("cycle", "event"):
        assert engine_features(name) == frozenset(OBSERVER_FEATURES)


def test_require_features_passes_for_builtins():
    require_features("event", {"trace", "spans"})
    require_features("cycle", OBSERVER_FEATURES)


def test_require_features_raises_with_sorted_missing():
    with crippled_registered():
        with pytest.raises(EngineFeatureError) as info:
            require_features("crippled", {"trace", "spans"})
    assert info.value.engine == "crippled"
    assert info.value.missing == ("spans", "trace")
    assert "never silently moved" in str(info.value)


def test_register_engine_accepts_class_and_unregister_cleans_up():
    register_engine("crippled", CrippledEngine)
    try:
        assert "crippled" in available_engines()
        assert get_engine("crippled") is CrippledEngine
    finally:
        unregister_engine("crippled")
    assert "crippled" not in available_engines()


def test_unregister_refuses_builtins():
    with pytest.raises(ValueError):
        unregister_engine("event")


def test_untraced_run_on_crippled_engine_still_works():
    with crippled_registered():
        config = GPUConfig.preset("no_tlb", **TINY).with_(engine="crippled")
        result = simulate(config=config, workload="bfs")
    assert result.cycles > 0


def test_traced_simulate_on_crippled_engine_raises():
    with crippled_registered():
        config = GPUConfig.preset("no_tlb", **TINY).with_(
            engine="crippled",
            trace=TraceConfig(enabled=True, ring_capacity=256),
        )
        with pytest.raises(EngineFeatureError) as info:
            simulate(config=config, workload="bfs")
    assert "trace" in info.value.missing


def test_spanned_simulate_on_crippled_engine_raises():
    with crippled_registered():
        config = GPUConfig.preset("no_tlb", **TINY).with_(engine="crippled")
        with record_spans(SpanRecorder()):
            with pytest.raises(EngineFeatureError) as info:
                simulate(config=config, workload="bfs")
    assert info.value.missing == ("spans",)


def test_profiled_simulate_on_crippled_engine_raises():
    with crippled_registered():
        config = GPUConfig.preset("no_tlb", **TINY).with_(engine="crippled")
        profiler = _prof.PhaseProfiler()
        _prof.install(profiler)
        try:
            with pytest.raises(EngineFeatureError) as info:
                simulate(config=config, workload="bfs")
        finally:
            _prof.uninstall()
    assert info.value.missing == ("profile",)


@pytest.mark.parametrize(
    "subcommand",
    [
        ["trace", "bfs", "--tiny", "--engine", "crippled"],
        ["explain", "bfs", "--quick", "--engine", "crippled"],
    ],
    ids=["trace", "explain"],
)
def test_harness_subcommands_exit_2_not_fallback(subcommand, tmp_path, capsys):
    """``--engine crippled`` with observers on: exit 2 + clear message,
    never a quiet run on a different engine."""
    from repro.harness.__main__ import main

    if subcommand[0] == "trace":
        subcommand = subcommand + ["--out", str(tmp_path)]
    with crippled_registered():
        code = main(subcommand)
    assert code == 2
    err = capsys.readouterr().err
    assert "crippled" in err
    assert "never silently moved" in err
