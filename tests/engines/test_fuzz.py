"""Seeded differential fuzz: random machines, both engines, one answer.

Twenty seeded (config, workload) draws over the preset space — TLB
geometry, port counts, schedulers (including CCWS and both TBC modes),
warp counts, address-stream shapes — each run under the cycle and
event engines.  The full serialized result *and* the aggregated core
statistics must match exactly.  Any divergence is an engine bug by
definition: the cycle engine is the reference oracle.
"""

from __future__ import annotations

import random
import sys

import pytest

from helpers import small_workload

from repro.api import simulate
from repro.core import presets
from repro.core.config import GPUConfig

assert "helpers" in sys.modules  # conftest puts tests/ on sys.path

SEEDS = list(range(20))

_PRESETS = ("no_tlb", "naive", "blocking", "augmented", "ideal")


def _draw(seed: int):
    """One seeded (config, workload, form) draw."""
    rng = random.Random(0xE7C1 + seed)
    name = rng.choice(_PRESETS)
    overrides = dict(
        num_cores=1,
        warps_per_core=rng.choice([4, 8]),
        warp_width=8,
    )
    if name == "naive":
        overrides["ports"] = rng.choice([1, 2, 3, 4])
    config = GPUConfig.preset(name, **overrides)
    form = None
    sched = rng.random()
    if sched < 0.25:
        config = presets.with_ccws(config)
    elif sched < 0.5:
        config = config.with_(warmup_instructions=0)
        config = presets.with_tbc(config, rng.choice(["tbc", "tlb-tbc"]))
        form = "blocks"
    workload = small_workload(
        seed=rng.randrange(1 << 16),
        instructions_per_warp=rng.choice([10, 20, 30]),
        shared_fraction=rng.choice([0.0, 0.4, 0.8]),
        cold_fraction=rng.choice([0.0, 0.1, 0.3]),
        page_div_mean=rng.choice([1.0, 2.0, 4.0]),
        page_div_max=4,
    )
    return config, workload, form


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree(seed):
    config, workload, form = _draw(seed)
    results = {
        engine: simulate(
            config=config, workload=workload, form=form, engine=engine
        )
        for engine in ("cycle", "event")
    }
    cycle, event = results["cycle"], results["event"]
    # The aggregated core statistics, field by field...
    assert event.stats == cycle.stats, config.describe()
    # ...and the full serialized result, byte for byte.
    assert event.canonical_json() == cycle.canonical_json(), config.describe()
