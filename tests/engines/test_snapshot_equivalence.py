"""Snapshots cross engines: step_to(N) under one, finish under the other.

The :class:`repro.engines.base.SimEngine` protocol promises that
engines share the core's snapshot format — a snapshot taken at any
safe point under one engine restores under any other.  Each case here
advances a run to (at least) cycle N with ``step_to`` under engine A,
snapshots the whole simulator, restores the snapshot into a fresh
simulator configured for engine B, finishes under B, and requires the
final result byte-identical to an uninterrupted single-engine run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import GPUConfig
from repro.core.simulator import Simulator
from repro.workloads.base import TIMING_MISS_SCALE
from repro.workloads.registry import get_workload

_TINY = dict(num_cores=1, warps_per_core=8, warp_width=8)

CASES = {
    "naive": (GPUConfig.preset("naive", ports=3, **_TINY), "bfs"),
    "augmented": (GPUConfig.preset("augmented", **_TINY), "kmeans"),
}


def _sim(config: GPUConfig, workload: str, engine: str) -> Simulator:
    config = dataclasses.replace(config, engine=engine)
    source = get_workload(workload)
    work = source.build(config, miss_scale=TIMING_MISS_SCALE)
    return Simulator._build(config, work, source.name)


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize(
    "first,second",
    [("event", "cycle"), ("cycle", "event")],
    ids=["event-then-cycle", "cycle-then-event"],
)
def test_step_to_snapshot_crosses_engines(name, first, second):
    config, workload = CASES[name]
    reference = _sim(config, workload, second).run().canonical_json()

    # Advance to the middle of the run under the first engine; a full
    # first-engine run tells us how long the cell is.
    full = _sim(config, workload, first).run()
    midpoint = max(1, full.cycles // 2)

    stepped = _sim(config, workload, first)
    core = stepped.cores[0]
    reached = core.engine.step_to(midpoint)
    assert reached >= midpoint
    assert reached < full.cycles, "midpoint step ran the cell to completion"
    state = stepped.state_dict()

    resumed = _sim(config, workload, second)
    resumed.load_state(state)
    assert resumed.run().canonical_json() == reference


@pytest.mark.parametrize("engine", ["event", "cycle"])
def test_step_to_then_run_matches_plain_run(engine):
    config, workload = CASES["naive"]
    reference = _sim(config, workload, engine).run().canonical_json()
    full = _sim(config, workload, engine).run()
    sim = _sim(config, workload, engine)
    sim.cores[0].engine.step_to(max(1, full.cycles // 3))
    assert sim.run().canonical_json() == reference
