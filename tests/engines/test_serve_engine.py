"""The optional ``engine`` field in serve job requests."""

from __future__ import annotations

import pytest

from repro.serve.jobs import RequestError, job_id_for, normalize_request


def test_engine_folds_into_sweep_configs():
    request = normalize_request(
        {
            "kind": "sweep",
            "params": {"configs": {"a": "no_tlb"}, "workloads": ["bfs"]},
            "engine": "cycle",
        }
    )
    assert request["params"]["configs"]["a"]["engine"] == "cycle"
    # The engine lives in the canonical configs, not at top level.
    assert "engine" not in request


def test_engine_folds_into_simulate_config():
    request = normalize_request(
        {
            "kind": "simulate",
            "params": {"config": "no_tlb", "workload": "bfs"},
            "engine": "cycle",
        }
    )
    assert request["params"]["config"]["engine"] == "cycle"


def test_config_override_beats_request_engine():
    request = normalize_request(
        {
            "kind": "sweep",
            "params": {
                "configs": {
                    "a": {
                        "preset": "no_tlb",
                        "overrides": {"engine": "event"},
                    }
                },
                "workloads": ["bfs"],
            },
            "engine": "cycle",
        }
    )
    assert request["params"]["configs"]["a"]["engine"] == "event"


def test_figure_records_engine_in_params():
    with_engine = normalize_request(
        {"kind": "figure", "params": {"name": "fig02"}, "engine": "cycle"}
    )
    without = normalize_request({"kind": "figure", "params": {"name": "fig02"}})
    assert with_engine["params"]["engine"] == "cycle"
    assert "engine" not in without["params"]
    assert job_id_for(with_engine) != job_id_for(without)


def test_engine_changes_simulate_job_id():
    base = {"kind": "simulate", "params": {"config": "no_tlb", "workload": "bfs"}}
    default = normalize_request(dict(base))
    explicit = normalize_request(dict(base, engine="event"))
    cycle = normalize_request(dict(base, engine="cycle"))
    # Spelling the default engine explicitly is the same job; a
    # different engine is a different job.
    assert job_id_for(default) == job_id_for(explicit)
    assert job_id_for(default) != job_id_for(cycle)


def test_unknown_engine_is_a_request_error():
    with pytest.raises(RequestError, match="engine"):
        normalize_request(
            {
                "kind": "figure",
                "params": {"name": "fig02"},
                "engine": "verilog",
            }
        )
