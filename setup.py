"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so editable installs
work on environments whose setuptools predates PEP 660 editable wheels
(e.g. ``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
