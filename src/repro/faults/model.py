"""Demand paging: the page-fault model the paper's setup avoids.

The paper pre-maps every page its workloads touch ("our workloads never
page-fault", Section 6.2), so the costliest event a GPU MMU can see is
unmodeled there.  With ``FaultConfig.demand_paging`` pages start
*unmapped*: the first hardware walk to touch one faults at the missing
entry, the OS/CPU-assist handler maps it (charging a far-fault penalty of
``major_fault_cycles``, or ``minor_fault_cycles`` when the page happened
to be resident), and the walk retries once the handler completes.  The
faulting warp therefore stalls for the full penalty — its memory
instruction cannot complete before the retried walk does.

Functional mapping is immediate (the page table is updated at fault
time) while the *timing* is deferred: :meth:`FaultModel.pending_ready`
lets later walks of the same page — e.g. another warp touching the page
while the handler is still "running" — wait for the handler instead of
faulting again.  Such merged accesses count as neither minor nor major
faults, mirroring how real OS fault handlers coalesce duplicate faults
on one page.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.faults.config import FaultConfig
from repro.obs import events as _ev
from repro.obs import tracer as _trace
from repro.vm.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K
from repro.vm.page_table import PageTable

#: Decorrelates the paging RNG stream from the injector's (same seed,
#: independent draws — toggling injection must not move fault sites).
_PAGING_STREAM = 0x9E3779B9


class FaultModel:
    """OS-handler model: maps faulting pages and charges the penalty.

    Parameters
    ----------
    page_table:
        The process page table faulting pages are installed into.
    config:
        Penalties, minor-fault probability, and the seed.
    page_shift:
        The machine's page size (12 for 4 KB, 21 for 2 MB); determines
        whether a fault installs a 4 KB or a 2 MB mapping.
    """

    def __init__(
        self,
        page_table: PageTable,
        config: FaultConfig,
        page_shift: int = PAGE_SHIFT_4K,
    ):
        self.page_table = page_table
        self.config = config
        self.page_shift = page_shift
        self._large = page_shift == PAGE_SHIFT_2M
        self._rng = random.Random(config.seed ^ _PAGING_STREAM)
        #: page key (4 KB vpn, or 2 MB page number) -> handler done cycle.
        self._pending: Dict[int, int] = {}
        self.minor_faults = 0
        self.major_faults = 0
        self.fault_stall_cycles = 0

    def _key(self, vpn: int) -> int:
        """Fault granularity: the leaf page the handler installs."""
        return vpn >> (PAGE_SHIFT_2M - PAGE_SHIFT_4K) if self._large else vpn

    def page_fault(self, vpn: int, now: int) -> int:
        """Handle a fault on 4 KB-granular ``vpn`` raised at cycle ``now``.

        Maps the page, charges the minor/major penalty, and returns the
        cycle the handler completes (the earliest the retried walk may
        observe the new mapping).
        """
        key = self._key(vpn)
        pending = self._pending.get(key, 0)
        if pending > now:
            # A concurrent fault on the same page is already being
            # handled; merge into it (no second penalty).
            return pending
        minor = (
            self.config.minor_fraction > 0.0
            and self._rng.random() < self.config.minor_fraction
        )
        if minor:
            self.minor_faults += 1
            penalty = self.config.minor_fault_cycles
        else:
            self.major_faults += 1
            penalty = self.config.major_fault_cycles
        ready = now + penalty
        self.fault_stall_cycles += penalty
        if self._large:
            self.page_table.ensure_mapped_large(key)
        else:
            self.page_table.ensure_mapped(vpn)
        self._pending[key] = ready
        if _trace.ENABLED:
            _trace.emit(
                _ev.PAGE_FAULT,
                cycle=now,
                track="faults",
                dur=penalty,
                vpn=vpn,
                fault="minor" if minor else "major",
            )
        return ready

    def pending_ready(self, vpn: int) -> int:
        """Cycle the in-flight handler for ``vpn``'s page completes (0 if none).

        Walks that functionally succeed must still wait for the handler
        that installed the mapping; callers take
        ``max(walk_done, pending_ready(vpn))``.
        """
        if not self._pending:
            return 0
        return self._pending.get(self._key(vpn), 0)

    def state_dict(self) -> dict:
        from repro.snapshot.codec import encode_rng

        return {
            "rng": encode_rng(self._rng),
            "pending": [[key, ready] for key, ready in self._pending.items()],
            "minor_faults": self.minor_faults,
            "major_faults": self.major_faults,
            "fault_stall_cycles": self.fault_stall_cycles,
        }

    def load_state(self, state: dict) -> None:
        from repro.snapshot.codec import decode_rng

        self._rng = decode_rng(state["rng"])
        self._pending = {key: ready for key, ready in state["pending"]}
        self.minor_faults = state["minor_faults"]
        self.major_faults = state["major_faults"]
        self.fault_stall_cycles = state["fault_stall_cycles"]

    @property
    def faults(self) -> int:
        """Total faults handled (minor + major)."""
        return self.minor_faults + self.major_faults
