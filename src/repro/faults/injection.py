"""Deterministic, seeded fault injection.

One :class:`FaultInjector` per simulation draws every injected fault
from a single ``random.Random(seed)`` stream.  The simulator executes
cores sequentially, so draw order is deterministic and two runs with the
same seed (and configuration) inject faults at *identical* sites —
``tests/faults/test_injection.py`` asserts byte-identical results.

The injector only decides *whether* a fault fires; the component that
asked (walker, shader core) models the consequences.  Every fired fault
is appended to :attr:`FaultInjector.log` so tests and post-mortems can
compare fault sites across runs.
"""

from __future__ import annotations

import random
from typing import Any, List, Tuple

from repro.faults.config import FaultConfig

#: Cap on the retained fault-site log (a sweep with a high error rate
#: would otherwise grow it unboundedly; the counters keep exact totals).
_LOG_LIMIT = 1 << 16


class FaultInjector:
    """Seeded source of injected faults.

    Parameters
    ----------
    config:
        The fault knobs (rates, backoffs, seed).
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        #: Fired faults as ``(kind, site)`` tuples, in injection order.
        self.log: List[Tuple[str, Any]] = []
        self.ptw_errors_injected = 0
        self.shootdowns_injected = 0
        self.invalidations_injected = 0

    def _record(self, kind: str, site: Any) -> None:
        if len(self.log) < _LOG_LIMIT:
            self.log.append((kind, site))

    def state_dict(self) -> dict:
        from repro.snapshot.codec import encode_rng

        return {
            "rng": encode_rng(self._rng),
            "log": [[kind, site] for kind, site in self.log],
            "ptw_errors_injected": self.ptw_errors_injected,
            "shootdowns_injected": self.shootdowns_injected,
            "invalidations_injected": self.invalidations_injected,
        }

    def load_state(self, state: dict) -> None:
        from repro.snapshot.codec import decode_rng

        self._rng = decode_rng(state["rng"])
        self.log = [(kind, site) for kind, site in state["log"]]
        self.ptw_errors_injected = state["ptw_errors_injected"]
        self.shootdowns_injected = state["shootdowns_injected"]
        self.invalidations_injected = state["invalidations_injected"]

    def ptw_transient_error(self, paddr: int) -> bool:
        """Whether the walk load of ``paddr`` suffers a transient error."""
        rate = self.config.ptw_error_rate
        if rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self.ptw_errors_injected += 1
        self._record("ptw_error", paddr)
        return True

    def tlb_shootdown(self, core_id: int) -> bool:
        """Whether a full-TLB shootdown hits this memory instruction."""
        rate = self.config.tlb_shootdown_rate
        if rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self.shootdowns_injected += 1
        self._record("tlb_shootdown", core_id)
        return True

    def tlb_invalidate(self, vpn: int) -> bool:
        """Whether an invalidation races the fill of ``vpn``."""
        rate = self.config.tlb_invalidate_rate
        if rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self.invalidations_injected += 1
        self._record("tlb_invalidate", vpn)
        return True
