"""The structured error hierarchy of the fault subsystem.

Every abnormal termination the simulator can detect raises a subclass of
:class:`SimulationError`, carrying enough structured state (``diagnostics``)
for the harness to log, retry, or skip the offending sweep cell instead of
crashing or — worse — spinning forever.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class SimulationError(RuntimeError):
    """Base class for structured simulator failures.

    Attributes
    ----------
    diagnostics:
        Free-form machine-readable context (core id, cycle, warp states,
        counter snapshot...) attached at raise time and enriched as the
        error propagates outward (the :class:`repro.core.simulator.Simulator`
        adds workload and configuration labels).
    """

    def __init__(self, message: str, diagnostics: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.diagnostics: Dict[str, Any] = dict(diagnostics or {})

    def add_context(self, **context: Any) -> "SimulationError":
        """Merge extra diagnostic keys (without overwriting existing ones)."""
        for key, value in context.items():
            self.diagnostics.setdefault(key, value)
        return self


class SimulationHang(SimulationError):
    """The forward-progress watchdog detected a deadlock/livelock.

    Raised instead of spinning when no instruction retires for
    ``FaultConfig.watchdog_cycles`` simulated cycles; ``diagnostics``
    holds the watchdog's state dump (also emitted as a ``hang_dump``
    trace event when a tracer is installed).
    """


class PTWError(SimulationError):
    """A page-walk load failed permanently.

    Raised when an injected transient walk error persists past
    ``FaultConfig.ptw_max_retries`` retries.
    """


class WalkTimeout(SimulationError):
    """A page walk exceeded ``FaultConfig.walk_timeout_cycles`` twice.

    The walker retries a timed-out walk once from scratch; a second
    timeout is treated as a wedged walk and surfaces as this error.
    """


class CellTimeout(SimulationError):
    """A sweep cell exceeded its wall-clock budget.

    The cycle-based watchdog (:class:`SimulationHang`) catches livelocks
    whose clock still advances; this is its wall-clock twin for cells
    whose host-side execution wedges entirely (pathological configs,
    runaway traces).  Raised by
    :func:`repro.faults.watchdog.wall_clock_guard` and handled by the
    sweep machinery exactly like any structured simulator failure:
    retried with a perturbed seed, then recorded to the checkpoint.
    """


class WorkerCrashed(SimulationError):
    """A supervised sweep worker died and exhausted its restart budget.

    The supervised pool (:mod:`repro.parallel.supervisor`) restarts a
    killed/OOMed/hung worker from its latest snapshot a bounded number
    of times; when the budget runs out, the *cell* fails with this
    error — the sweep itself continues, and the failure is recorded to
    the checkpoint like any structured simulator error.  ``diagnostics``
    carries the cell key, spawn count, and the last observed exit code.
    """


class InvariantViolation(SimulationError):
    """A post-run counter invariant does not hold.

    The simulator cross-checks cheap accounting identities (TLB hits +
    misses == lookups, memory instructions <= instructions, no negative
    counters) after every core run; a violation indicates a simulator
    bug rather than a modeled fault.
    """
