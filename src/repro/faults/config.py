"""Fault-subsystem configuration (wired into ``GPUConfig.faults``).

Kept dependency-free so :mod:`repro.core.config` can import it without
cycles.  All knobs default *off*: a default :class:`FaultConfig` leaves
every simulated quantity byte-identical to a machine without the fault
subsystem (``tests/faults/test_regression.py`` pins this against golden
results generated before the subsystem existed).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper-style far-fault cost: a GPU page fault forwarded to the CPU's
#: IOMMU/OS handler costs thousands of GPU cycles (the paper's workloads
#: avoid this entirely by pre-mapping; see EXPERIMENTS.md).
DEFAULT_MAJOR_FAULT_CYCLES = 5000

#: Near fault: the page is CPU-resident and only needs a PTE installed.
DEFAULT_MINOR_FAULT_CYCLES = 700

#: Cycles with no retired instruction before the watchdog declares a
#: hang.  Orders of magnitude above any legitimate memory round trip
#: (DRAM ~350 cycles, a faulting walk ~5000), far below "pytest hung".
DEFAULT_WATCHDOG_CYCLES = 2_000_000


@dataclass(frozen=True)
class FaultConfig:
    """Demand paging, deterministic fault injection, and the watchdog.

    Attributes
    ----------
    enabled:
        Master switch for the *modeled* faults (demand paging and
        injection).  The watchdog is protective rather than modeled and
        arms whenever ``watchdog_cycles > 0``, independent of this flag.
    demand_paging:
        Pages start unmapped and fault in at the walker on first touch
        (instead of the paper's pre-mapped setup).  Applies to
        translated (TLB-enabled) machines; the no-TLB baseline models
        pinned physical memory and always pre-maps.
    major_fault_cycles / minor_fault_cycles:
        CPU-assist penalty charged to a faulting walk.  A *major* (far)
        fault allocates/migrates the page; a *minor* (near) fault only
        installs the PTE for an already-resident page.
    minor_fraction:
        Seeded probability that a first-touch fault is minor (the page
        happened to be CPU-resident).  0 makes every fault major.
    seed:
        Seeds every random draw of the subsystem.  Identical seeds give
        identical fault sites, counters, and cycle counts.
    ptw_error_rate:
        Per-walk-load probability of an injected transient memory error;
        the walker retries the load after ``ptw_retry_backoff`` cycles,
        up to ``ptw_max_retries`` times before raising
        :class:`repro.faults.errors.PTWError`.
    ptw_retry_backoff:
        Cycles between a failed walk load and its retry.
    ptw_max_retries:
        Retries allowed per walk load before giving up.
    tlb_shootdown_rate:
        Per-memory-instruction probability of a full-TLB shootdown
        (models inter-processor invalidation of a shared address space).
    tlb_invalidate_rate:
        Per-TLB-fill probability that the just-installed entry is
        immediately invalidated (models an invalidation racing the
        fill); the next access to the page misses and re-walks.
    walk_timeout_cycles:
        Upper bound on a single walk's latency; 0 disables.  A walk
        exceeding it is retried once from scratch, then raises
        :class:`repro.faults.errors.WalkTimeout`.
    watchdog_cycles:
        Forward-progress bound: a core that retires no instruction for
        this many cycles aborts with
        :class:`repro.faults.errors.SimulationHang` (plus an obs
        ``hang_dump``).  0 disables the watchdog.  Observation-only:
        it never alters the timing of runs that do make progress.
    """

    enabled: bool = False
    demand_paging: bool = False
    major_fault_cycles: int = DEFAULT_MAJOR_FAULT_CYCLES
    minor_fault_cycles: int = DEFAULT_MINOR_FAULT_CYCLES
    minor_fraction: float = 0.0
    seed: int = 0
    ptw_error_rate: float = 0.0
    ptw_retry_backoff: int = 20
    ptw_max_retries: int = 3
    tlb_shootdown_rate: float = 0.0
    tlb_invalidate_rate: float = 0.0
    walk_timeout_cycles: int = 0
    watchdog_cycles: int = DEFAULT_WATCHDOG_CYCLES

    def __post_init__(self):
        for name in ("minor_fraction", "ptw_error_rate", "tlb_shootdown_rate",
                     "tlb_invalidate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
        for name in ("major_fault_cycles", "minor_fault_cycles",
                     "ptw_retry_backoff", "walk_timeout_cycles",
                     "watchdog_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.ptw_max_retries < 0:
            raise ValueError("ptw_max_retries must be >= 0")
        if self.major_fault_cycles < self.minor_fault_cycles:
            raise ValueError(
                "major_fault_cycles must be >= minor_fault_cycles "
                f"({self.major_fault_cycles} < {self.minor_fault_cycles})"
            )

    @property
    def injection_active(self) -> bool:
        """Whether any injection knob can actually fire."""
        return self.enabled and (
            self.ptw_error_rate > 0.0
            or self.tlb_shootdown_rate > 0.0
            or self.tlb_invalidate_rate > 0.0
            or self.walk_timeout_cycles > 0
        )

    @property
    def paging_active(self) -> bool:
        """Whether demand paging is in effect."""
        return self.enabled and self.demand_paging
