"""The forward-progress watchdog.

An event-driven core loop cannot spin without advancing its clock, but a
buggy scheduler or fault configuration *can* advance the clock forever
without retiring an instruction (a livelock) — historically this hung
whole sweeps silently.  Each shader core arms a :class:`Watchdog`; every
retired instruction feeds it, and every stall checks it.  When no
instruction retires for ``limit`` cycles the watchdog dumps diagnostic
state through the :mod:`repro.obs` tracer (a ``hang_dump`` event, when a
tracer is installed) and raises
:class:`repro.faults.errors.SimulationHang` carrying the same dump.

The watchdog is observation-only: on runs that make progress it never
alters timing or statistics (a boolean comparison per stall is its whole
footprint), so arming it by default keeps results byte-identical.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
from typing import Any, Callable, Dict, Iterator, Optional

from repro.faults.errors import CellTimeout, SimulationHang
from repro.obs import events as _ev
from repro.obs import tracer as _trace

DiagnosticsFn = Callable[[], Dict[str, Any]]


class Watchdog:
    """Detects cores that stop retiring instructions.

    Parameters
    ----------
    limit:
        Cycles without progress before firing (must be positive; a
        disabled watchdog is simply not constructed).
    core_id:
        The core being watched (diagnostic labeling only).
    """

    def __init__(self, limit: int, core_id: int = -1):
        if limit <= 0:
            raise ValueError("watchdog limit must be positive")
        self.limit = limit
        self.core_id = core_id
        self.last_progress = 0
        self.fired = False

    def progress(self, now: int) -> None:
        """An instruction retired at ``now``; reset the countdown."""
        self.last_progress = now

    def expired(self, now: int) -> bool:
        """Whether the no-progress window has been exceeded."""
        return now - self.last_progress > self.limit

    def check(self, now: int, diagnostics: Optional[DiagnosticsFn] = None) -> None:
        """Raise :class:`SimulationHang` when progress stopped.

        ``diagnostics`` is invoked only on firing (gathering warp state
        is not free, so it must not run on the healthy path).
        """
        if not self.expired(now):
            return
        self.fired = True
        dump: Dict[str, Any] = {
            "core": self.core_id,
            "cycle": now,
            "last_progress_cycle": self.last_progress,
            "stalled_cycles": now - self.last_progress,
            "watchdog_limit": self.limit,
        }
        if diagnostics is not None:
            dump.update(diagnostics())
        if _trace.ENABLED:
            _trace.emit(
                _ev.HANG_DUMP,
                cycle=now,
                core=self.core_id,
                track="faults",
                **{k: v for k, v in dump.items() if k not in ("core", "cycle")},
            )
        raise SimulationHang(
            f"core {self.core_id}: no instruction retired for "
            f"{now - self.last_progress} cycles (limit {self.limit}) — "
            f"deadlock/livelock at cycle {now}",
            diagnostics=dump,
        )


@contextlib.contextmanager
def wall_clock_guard(seconds: float, label: str = "sweep cell") -> Iterator[None]:
    """Bound a block of host execution by wall-clock time.

    The cycle-based :class:`Watchdog` needs the simulated clock to keep
    moving; a cell that wedges the *host* (or whose simulated clock
    crawls) escapes it.  This guard raises
    :class:`repro.faults.errors.CellTimeout` after ``seconds`` of real
    time, so one hung cell cannot stall a whole sweep — the same
    contract the watchdog gives per-core, lifted to wall-clock.

    Degrades to a no-op when ``seconds`` is falsy/non-positive, on
    platforms without ``SIGALRM``, or off the main thread (POSIX timers
    only fire there); sweeps still complete, just without the bound.
    Guards do not nest: the inner one wins for its duration.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    started = time.monotonic()

    def _fire(signum, frame):
        elapsed = time.monotonic() - started
        raise CellTimeout(
            f"{label}: exceeded wall-clock budget of {seconds:g}s "
            f"(ran {elapsed:.1f}s)",
            diagnostics={
                "wall_clock_limit_s": seconds,
                "elapsed_s": round(elapsed, 3),
                "label": label,
            },
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
