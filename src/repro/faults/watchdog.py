"""The forward-progress watchdog.

An event-driven core loop cannot spin without advancing its clock, but a
buggy scheduler or fault configuration *can* advance the clock forever
without retiring an instruction (a livelock) — historically this hung
whole sweeps silently.  Each shader core arms a :class:`Watchdog`; every
retired instruction feeds it, and every stall checks it.  When no
instruction retires for ``limit`` cycles the watchdog dumps diagnostic
state through the :mod:`repro.obs` tracer (a ``hang_dump`` event, when a
tracer is installed) and raises
:class:`repro.faults.errors.SimulationHang` carrying the same dump.

The watchdog is observation-only: on runs that make progress it never
alters timing or statistics (a boolean comparison per stall is its whole
footprint), so arming it by default keeps results byte-identical.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
from typing import Any, Callable, Dict, Iterator, Optional

from repro.faults.errors import CellTimeout, SimulationHang
from repro.obs import events as _ev
from repro.obs import tracer as _trace

DiagnosticsFn = Callable[[], Dict[str, Any]]


class Watchdog:
    """Detects cores that stop retiring instructions.

    Parameters
    ----------
    limit:
        Cycles without progress before firing (must be positive; a
        disabled watchdog is simply not constructed).
    core_id:
        The core being watched (diagnostic labeling only).
    """

    def __init__(self, limit: int, core_id: int = -1):
        if limit <= 0:
            raise ValueError("watchdog limit must be positive")
        self.limit = limit
        self.core_id = core_id
        self.last_progress = 0
        self.fired = False

    def progress(self, now: int) -> None:
        """An instruction retired at ``now``; reset the countdown."""
        self.last_progress = now

    def expired(self, now: int) -> bool:
        """Whether the no-progress window has been exceeded."""
        return now - self.last_progress > self.limit

    def check(self, now: int, diagnostics: Optional[DiagnosticsFn] = None) -> None:
        """Raise :class:`SimulationHang` when progress stopped.

        ``diagnostics`` is invoked only on firing (gathering warp state
        is not free, so it must not run on the healthy path).
        """
        if not self.expired(now):
            return
        self.fired = True
        dump: Dict[str, Any] = {
            "core": self.core_id,
            "cycle": now,
            "last_progress_cycle": self.last_progress,
            "stalled_cycles": now - self.last_progress,
            "watchdog_limit": self.limit,
        }
        if diagnostics is not None:
            dump.update(diagnostics())
        if _trace.ENABLED:
            _trace.emit(
                _ev.HANG_DUMP,
                cycle=now,
                core=self.core_id,
                track="faults",
                **{k: v for k, v in dump.items() if k not in ("core", "cycle")},
            )
        raise SimulationHang(
            f"core {self.core_id}: no instruction retired for "
            f"{now - self.last_progress} cycles (limit {self.limit}) — "
            f"deadlock/livelock at cycle {now}",
            diagnostics=dump,
        )


class _GuardTimeout(BaseException):
    """Async-raised sentinel of the timer-thread guard path.

    Derives from ``BaseException`` so guarded cell code catching
    ``Exception`` (or :class:`SimulationError`) cannot swallow the
    timeout before the guard converts it to :class:`CellTimeout`.
    Raised *as a class* via ``PyThreadState_SetAsyncExc``, which is why
    it must be constructible with no arguments (unlike CellTimeout).
    """


def _timeout_error(seconds: float, started: float, label: str) -> CellTimeout:
    elapsed = time.monotonic() - started
    return CellTimeout(
        f"{label}: exceeded wall-clock budget of {seconds:g}s "
        f"(ran {elapsed:.1f}s)",
        diagnostics={
            "wall_clock_limit_s": seconds,
            "elapsed_s": round(elapsed, 3),
            "label": label,
        },
    )


@contextlib.contextmanager
def _sigalrm_guard(seconds: float, label: str) -> Iterator[None]:
    """Main-thread POSIX path: an ITIMER_REAL alarm interrupts even
    CPU-bound C extensions, so prefer it where it works."""
    started = time.monotonic()

    def _fire(signum, frame):
        raise _timeout_error(seconds, started, label)

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@contextlib.contextmanager
def _timer_thread_guard(seconds: float, label: str) -> Iterator[None]:
    """Portable fallback: a daemon timer thread asynchronously raises
    :class:`_GuardTimeout` in the guarded thread.

    Works off the main thread and on platforms without ``SIGALRM``
    (where POSIX timers cannot fire).  The async exception is delivered
    at the next bytecode boundary — instant for the pure-Python
    simulator loop, though a wedged C extension could outlive its
    budget (the SIGALRM path has no such blind spot, which is why it
    remains the default where available).
    """
    import ctypes

    set_async_exc = ctypes.pythonapi.PyThreadState_SetAsyncExc
    target_id = threading.get_ident()
    started = time.monotonic()
    fired = threading.Event()

    def _fire():
        fired.set()
        set_async_exc(
            ctypes.c_ulong(target_id), ctypes.py_object(_GuardTimeout)
        )

    timer = threading.Timer(seconds, _fire)
    timer.daemon = True
    timer.start()
    try:
        try:
            yield
        finally:
            timer.cancel()
            if fired.is_set():
                # The timer fired but the sentinel may not have been
                # delivered yet; clear it so it cannot surface later in
                # unrelated code.
                set_async_exc(ctypes.c_ulong(target_id), None)
    except _GuardTimeout:
        raise _timeout_error(seconds, started, label) from None


@contextlib.contextmanager
def wall_clock_guard(seconds: float, label: str = "sweep cell") -> Iterator[None]:
    """Bound a block of host execution by wall-clock time.

    The cycle-based :class:`Watchdog` needs the simulated clock to keep
    moving; a cell that wedges the *host* (or whose simulated clock
    crawls) escapes it.  This guard raises
    :class:`repro.faults.errors.CellTimeout` after ``seconds`` of real
    time, so one hung cell cannot stall a whole sweep — the same
    contract the watchdog gives per-core, lifted to wall-clock.

    On the main thread of a POSIX host this uses ``SIGALRM``; off the
    main thread, or on platforms without it, a daemon timer thread
    asynchronously raises the timeout instead — so embedding a sweep in
    a GUI/server worker thread (or running on Windows) keeps the bound
    rather than silently losing it.  A non-positive ``seconds``
    disables the guard.  Guards do not nest: the inner one wins for its
    duration.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        with _sigalrm_guard(seconds, label):
            yield
    else:
        with _timer_thread_guard(seconds, label):
            yield
