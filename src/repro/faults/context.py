"""The per-simulation bundle of fault machinery.

The simulator builds one :class:`FaultContext` and threads it through
shader cores into the walkers, so component constructors take a single
optional handle instead of a model/injector/config triple.  When nothing
in the :class:`repro.faults.config.FaultConfig` is active the build
returns ``None`` and every consumer keeps its pre-fault-subsystem code
path (the byte-identity guarantee rests on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.config import FaultConfig
from repro.faults.injection import FaultInjector
from repro.faults.model import FaultModel
from repro.vm.address import PAGE_SHIFT_4K
from repro.vm.page_table import PageTable


@dataclass
class FaultContext:
    """Live fault machinery for one simulation.

    Attributes
    ----------
    config:
        The knobs everything was built from.
    model:
        Demand-paging handler, or None when paging is off.
    injector:
        Seeded injector, or None when no injection knob is active.
    """

    config: FaultConfig
    model: Optional[FaultModel] = None
    injector: Optional[FaultInjector] = None

    @classmethod
    def build(
        cls,
        config: FaultConfig,
        page_table: PageTable,
        tlb_enabled: bool = True,
        page_shift: int = PAGE_SHIFT_4K,
    ) -> Optional["FaultContext"]:
        """Construct the context, or ``None`` when nothing is active.

        Demand paging requires a TLB-enabled machine: the no-TLB
        baseline models pinned, pre-mapped physical memory by
        definition (see EXPERIMENTS.md).
        """
        model = None
        if config.paging_active and tlb_enabled:
            model = FaultModel(page_table, config, page_shift=page_shift)
        injector = FaultInjector(config) if config.injection_active else None
        if model is None and injector is None:
            return None
        return cls(config=config, model=model, injector=injector)

    def state_dict(self) -> dict:
        return {
            "model": self.model.state_dict() if self.model else None,
            "injector": self.injector.state_dict() if self.injector else None,
        }

    def load_state(self, state: dict) -> None:
        if self.model is not None and state["model"] is not None:
            self.model.load_state(state["model"])
        if self.injector is not None and state["injector"] is not None:
            self.injector.load_state(state["injector"])
