"""Fault injection, demand paging, and hang detection (``repro.faults``).

The subsystem has four parts:

- :mod:`repro.faults.model` — demand paging: pages start unmapped,
  fault at the walker, and are mapped by a CPU-assist handler charging
  paper-style far-fault penalties;
- :mod:`repro.faults.injection` — seeded, deterministic injection of
  transient PTW errors, TLB shootdowns/invalidations, and walk
  timeouts;
- :mod:`repro.faults.watchdog` — the forward-progress watchdog that
  turns silent livelocks into structured
  :class:`~repro.faults.errors.SimulationHang` errors;
- :mod:`repro.faults.errors` — the :class:`~repro.faults.errors.SimulationError`
  hierarchy the harness retries or reports on.

Everything defaults off; a default :class:`FaultConfig` is
byte-identical to a machine without the subsystem.
"""

from repro.faults.config import FaultConfig
from repro.faults.context import FaultContext
from repro.faults.errors import (
    InvariantViolation,
    PTWError,
    SimulationError,
    SimulationHang,
    WalkTimeout,
)
from repro.faults.injection import FaultInjector
from repro.faults.model import FaultModel
from repro.faults.watchdog import Watchdog

__all__ = [
    "FaultConfig",
    "FaultContext",
    "FaultInjector",
    "FaultModel",
    "InvariantViolation",
    "PTWError",
    "SimulationError",
    "SimulationHang",
    "WalkTimeout",
    "Watchdog",
]
