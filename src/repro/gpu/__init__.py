"""GPU execution model: warps, coalescing, the SIMT shader core."""

from repro.gpu.instruction import (
    ComputeInstruction,
    MemoryInstruction,
    WarpTrace,
)
from repro.gpu.coalescer import CoalescedAccess, coalesce
from repro.gpu.warp import Warp
from repro.gpu.shader_core import ShaderCore

__all__ = [
    "ComputeInstruction",
    "MemoryInstruction",
    "WarpTrace",
    "CoalescedAccess",
    "coalesce",
    "Warp",
    "ShaderCore",
]
