"""Warp scheduler interface and the baseline policies.

The scheduler picks which ready warp issues each cycle and receives
notifications from the memory unit (cache accesses/evictions, TLB
hits/misses/evictions) that the CCWS family turns into lost-locality
scores.  Baseline policies ignore the notifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class Candidate:
    """A warp eligible to issue this cycle.

    ``is_memory`` flags that its next instruction is a load/store; CCWS
    restricts *memory* issue to the prioritized pool while compute may
    proceed from any warp.
    """

    warp_id: int
    is_memory: bool


class WarpScheduler:
    """Base class: selection plus memory-system notification hooks."""

    def __init__(self, num_warps: int):
        if num_warps <= 0:
            raise ValueError("need at least one warp")
        self.num_warps = num_warps

    def select(
        self, candidates: List[Candidate], now: int, inflight: bool
    ) -> Optional[int]:
        """Pick the warp to issue at cycle ``now``.

        ``candidates`` is non-empty; ``inflight`` reports whether any
        warp is currently waiting on memory (so a scheduler that declines
        to issue — returns None — knows whether time will advance on its
        own).  Returning None stalls the issue slot this cycle.
        """
        raise NotImplementedError

    def on_warp_done(self, warp_id: int) -> None:
        """A warp retired its trace."""

    def on_l1_access(
        self,
        warp_id: int,
        line_addr: int,
        hit: bool,
        tlb_missed: bool,
        evicted_line: Optional[int],
        evicted_warp: Optional[int],
    ) -> None:
        """An L1 access completed lookup; eviction info included on fills."""

    def on_tlb_hit(self, warp_id: int, vpn: int, lru_depth: int) -> None:
        """The warp hit the TLB at the given LRU stack depth."""

    def on_tlb_miss(self, warp_id: int, vpn: int) -> None:
        """The warp missed the TLB on ``vpn``."""

    def on_tlb_evict(self, vpn: int, owner_warp: Optional[int]) -> None:
        """A translation was evicted; ``owner_warp`` last touched it."""

    def state_dict(self) -> dict:
        """Snapshot scheduler state; stateless bases return ``{}``."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""


class RoundRobinScheduler(WarpScheduler):
    """Loose round-robin: the GPU default the paper's baseline uses."""

    def __init__(self, num_warps: int):
        super().__init__(num_warps)
        self._next = 0

    def select(
        self, candidates: List[Candidate], now: int, inflight: bool
    ) -> Optional[int]:
        chosen = min(
            candidates,
            key=lambda c: (c.warp_id - self._next) % self.num_warps,
        )
        self._next = (chosen.warp_id + 1) % self.num_warps
        return chosen.warp_id

    def state_dict(self) -> dict:
        return {"next": self._next}

    def load_state(self, state: dict) -> None:
        self._next = state["next"]


class GreedyThenOldestScheduler(WarpScheduler):
    """Keep issuing the same warp until it stalls, then pick the oldest."""

    def __init__(self, num_warps: int):
        super().__init__(num_warps)
        self._current: Optional[int] = None
        self._last_issue = [0] * num_warps

    def select(
        self, candidates: List[Candidate], now: int, inflight: bool
    ) -> Optional[int]:
        by_id = {c.warp_id for c in candidates}
        if self._current in by_id:
            chosen = self._current
        else:
            chosen = min(by_id, key=lambda w: self._last_issue[w])
            self._current = chosen
        self._last_issue[chosen] = now
        return chosen

    def on_warp_done(self, warp_id: int) -> None:
        if self._current == warp_id:
            self._current = None

    def state_dict(self) -> dict:
        return {"current": self._current, "last_issue": list(self._last_issue)}

    def load_state(self, state: dict) -> None:
        self._current = state["current"]
        self._last_issue = list(state["last_issue"])
