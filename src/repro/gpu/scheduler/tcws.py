"""TLB-conscious warp scheduling (TCWS, paper Section 7.2, Figure 15).

TCWS observes that TLB and cache behaviour are highly correlated — a TLB
miss implies the page's cache lines were referenced long ago — so it
*replaces* CCWS's cache-line victim tag arrays with page-grain TLB VTAs
fed by TLB evictions.  Pages being 32× coarser than 128-byte lines,
"TLB-based VTAs in TCWS require half the area overhead of cache
line-based CCWS" yet outperform TA-CCWS.

Because score updates only on TLB misses would adapt too slowly, TCWS
also updates scores on TLB *hits*, weighted by how deep in the set's LRU
stack the hit landed (deep hits mean the entry was close to eviction —
thrashing is near).  Figure 17 sweeps VTA entries per warp (8 is best);
Figure 18 sweeps the LRU depth weights (``(1, 2, 4, 8)`` is best).

Weights are applied relative to the MRU weight (an MRU hit is the
healthy common case and adds nothing), which keeps score totals bounded
by locality loss rather than by raw TLB traffic.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.gpu.scheduler.ccws import LostLocalityScheduler


class TCWSScheduler(LostLocalityScheduler):
    """Lost-locality scheduling driven purely by TLB behaviour.

    Parameters
    ----------
    lru_hit_weights:
        Score increments per LRU stack depth of a TLB hit, MRU first;
        length must equal the TLB associativity.  Applied relative to
        the MRU weight.
    vta_hit_score:
        Score added when a TLB miss hits the warp's page VTA.
    """

    def __init__(
        self,
        num_warps: int,
        vta_entries_per_warp: int = 8,
        vta_associativity: int = 8,
        lls_cutoff: int = 32,
        base_score: int = 1,
        score_halflife: int = 4096,
        min_active_warps: int = 2,
        lru_hit_weights: Sequence[int] = (1, 2, 4, 8),
        vta_hit_score: Optional[int] = None,
    ):
        super().__init__(
            num_warps,
            vta_entries_per_warp=vta_entries_per_warp,
            vta_associativity=vta_associativity,
            lls_cutoff=lls_cutoff,
            base_score=base_score,
            score_halflife=score_halflife,
            min_active_warps=min_active_warps,
        )
        if not lru_hit_weights:
            raise ValueError("lru_hit_weights must be non-empty")
        self.lru_hit_weights: Tuple[int, ...] = tuple(lru_hit_weights)
        # A VTA hit on a missed page signals the same lost locality the
        # deepest LRU hit foreshadows, so it scores at least that much.
        self.vta_hit_score = (
            vta_hit_score if vta_hit_score is not None else max(self.lru_hit_weights)
        )
        self.tlb_vta_hits = 0

    def _depth_weight(self, lru_depth: int) -> float:
        index = min(lru_depth, len(self.lru_hit_weights) - 1)
        return self.lru_hit_weights[index] - self.lru_hit_weights[0]

    def on_tlb_hit(self, warp_id: int, vpn: int, lru_depth: int) -> None:
        weight = self._depth_weight(lru_depth)
        if weight:
            self._bump(warp_id, self.base_score * weight)

    def on_tlb_miss(self, warp_id: int, vpn: int) -> None:
        if self.vta.probe(warp_id, vpn):
            self.tlb_vta_hits += 1
            self.vta_hits += 1
            self._bump(warp_id, self.base_score * self.vta_hit_score)

    def on_tlb_evict(self, vpn: int, owner_warp: Optional[int]) -> None:
        if owner_warp is not None:
            self.vta.insert(owner_warp, vpn)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["tlb_vta_hits"] = self.tlb_vta_hits
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.tlb_vta_hits = state["tlb_vta_hits"]

    def storage_tags(self) -> int:
        """Total VTA tags — the hardware-cost comparison of Section 7.2."""
        return self.vta.storage_tags()
