"""Cache-conscious wavefront scheduling (CCWS) and its scoring core.

CCWS [Rogers, O'Connor, Aamodt — MICRO 2012], as described in the
paper's Section 7.1 / Figure 12: each warp owns a small victim tag array
(VTA) of recently evicted cache lines.  A cache miss that hits in the
missing warp's own VTA means the warp's data was evicted by interleaving
— *lost intra-warp locality* — and bumps that warp's lost-locality score
(LLS).  When the summed scores exceed a cutoff, the scheduler throttles
multithreading: only the highest-scoring warps (whose working sets are
being thrashed) may issue memory instructions, letting them rebuild
reuse before the rest re-enter.

:class:`LostLocalityScheduler` implements the scoring, decay and
throttling shared by CCWS, TA-CCWS and TCWS; subclasses differ only in
*which events* update scores and which granule their VTAs hold.
"""

from __future__ import annotations

from typing import List, Optional

from repro.gpu.scheduler.base import Candidate, WarpScheduler
from repro.obs import events as _ev
from repro.obs import tracer as _trace
from repro.tlb.victim_array import VictimTagArray


class LostLocalityScheduler(WarpScheduler):
    """Shared LLS machinery: per-warp scores, decay, throttled issue.

    Parameters
    ----------
    num_warps:
        Hardware warp slots.
    vta_entries_per_warp / vta_associativity:
        Victim tag array geometry (paper baseline: 16-entry, 8-way).
    lls_cutoff:
        Score sum beyond which multithreading is throttled.
    base_score:
        Score added on a VTA hit.
    score_halflife:
        Cycles for scores to decay by half (keeps the scheduler
        adaptive, standing in for CCWS's per-cycle score decrements).
    min_active_warps:
        Floor on the prioritized pool size.
    """

    def __init__(
        self,
        num_warps: int,
        vta_entries_per_warp: int = 16,
        vta_associativity: int = 8,
        lls_cutoff: int = 32,
        base_score: int = 1,
        score_halflife: int = 4096,
        min_active_warps: int = 2,
    ):
        super().__init__(num_warps)
        self.vta = VictimTagArray(num_warps, vta_entries_per_warp, vta_associativity)
        self.lls_cutoff = lls_cutoff
        self.base_score = base_score
        self.score_halflife = score_halflife
        self.min_active_warps = min_active_warps
        self.scores: List[float] = [0.0] * num_warps
        self._done = [False] * num_warps
        self._last_decay = 0
        self._rr_next = 0
        self.throttled_cycles = 0
        self.vta_hits = 0

    # -- scoring -------------------------------------------------------

    def _decay(self, now: int) -> None:
        elapsed = now - self._last_decay
        if elapsed < self.score_halflife // 8:
            return
        factor = 0.5 ** (elapsed / self.score_halflife)
        self.scores = [score * factor for score in self.scores]
        self._last_decay = now

    def _bump(self, warp_id: int, amount: float) -> None:
        self.scores[warp_id] += amount

    def on_warp_done(self, warp_id: int) -> None:
        self._done[warp_id] = True
        self.scores[warp_id] = 0.0

    def state_dict(self) -> dict:
        """Snapshot the score table, VTA, and selection state.

        Scores are floats; JSON round-trips Python floats exactly
        (shortest-repr), so decayed scores restore bit-for-bit.
        Covers TA-CCWS too, which adds no mutable state.
        """
        return {
            "vta": self.vta.state_dict(),
            "scores": list(self.scores),
            "done": list(self._done),
            "last_decay": self._last_decay,
            "rr_next": self._rr_next,
            "throttled_cycles": self.throttled_cycles,
            "vta_hits": self.vta_hits,
        }

    def load_state(self, state: dict) -> None:
        self.vta.load_state(state["vta"])
        self.scores = [float(score) for score in state["scores"]]
        self._done = list(state["done"])
        self._last_decay = state["last_decay"]
        self._rr_next = state["rr_next"]
        self.throttled_cycles = state["throttled_cycles"]
        self.vta_hits = state["vta_hits"]

    # -- throttled selection -------------------------------------------

    def _allowed_pool(self) -> Optional[set]:
        """The warps allowed to issue memory; None means unrestricted."""
        total = sum(self.scores)
        if total <= self.lls_cutoff:
            return None
        live = [w for w in range(self.num_warps) if not self._done[w]]
        if not live:
            return None
        pool_size = max(
            self.min_active_warps,
            round(len(live) * self.lls_cutoff / total),
        )
        live.sort(key=lambda w: self.scores[w], reverse=True)
        return set(live[:pool_size])

    def select(
        self, candidates: List[Candidate], now: int, inflight: bool
    ) -> Optional[int]:
        self._decay(now)
        allowed = self._allowed_pool()
        if allowed is None:
            eligible = candidates
        else:
            eligible = [
                c for c in candidates if not c.is_memory or c.warp_id in allowed
            ]
        if not eligible:
            if inflight:
                # Deschedule: wait for a prioritized warp to return.
                self.throttled_cycles += 1
                if _trace.ENABLED:
                    _trace.emit(
                        _ev.SCHEDULER_DECISION,
                        cycle=now,
                        track="sched",
                        action="throttle",
                        pool=len(allowed) if allowed is not None else 0,
                        score_sum=round(sum(self.scores), 2),
                    )
                return None
            # Nothing in flight — issuing is the only way to make progress.
            eligible = candidates
        # Prefer high-scoring warps (most lost locality), round-robin ties.
        chosen = max(
            eligible,
            key=lambda c: (
                self.scores[c.warp_id],
                -((c.warp_id - self._rr_next) % self.num_warps),
            ),
        )
        self._rr_next = (chosen.warp_id + 1) % self.num_warps
        return chosen.warp_id


class CCWSScheduler(LostLocalityScheduler):
    """Baseline CCWS: cache-line VTAs updated by L1 evictions/misses."""

    def on_l1_access(
        self,
        warp_id: int,
        line_addr: int,
        hit: bool,
        tlb_missed: bool,
        evicted_line: Optional[int],
        evicted_warp: Optional[int],
    ) -> None:
        if evicted_line is not None and evicted_warp is not None:
            self.vta.insert(evicted_warp, evicted_line)
        if not hit and self.vta.probe(warp_id, line_addr):
            self.vta_hits += 1
            self._bump(warp_id, self.base_score)
