"""Warp schedulers: round-robin, GTO, and the CCWS family.

``make_scheduler`` builds the scheduler a :class:`repro.core.GPUConfig`
asks for; the CCWS variants (CCWS, TA-CCWS, TCWS) share the
lost-locality scoring machinery in :mod:`repro.gpu.scheduler.ccws`.
"""

from repro.gpu.scheduler.base import (
    Candidate,
    GreedyThenOldestScheduler,
    RoundRobinScheduler,
    WarpScheduler,
)
from repro.gpu.scheduler.ccws import CCWSScheduler, LostLocalityScheduler
from repro.gpu.scheduler.ta_ccws import TACCWSScheduler
from repro.gpu.scheduler.tcws import TCWSScheduler
from repro.gpu.scheduler.factory import make_scheduler

__all__ = [
    "Candidate",
    "GreedyThenOldestScheduler",
    "RoundRobinScheduler",
    "WarpScheduler",
    "CCWSScheduler",
    "LostLocalityScheduler",
    "TACCWSScheduler",
    "TCWSScheduler",
    "make_scheduler",
]
