"""TLB-aware CCWS (TA-CCWS, paper Section 7.2, Figure 14).

CCWS treats all cache misses equivalently, but "some cache misses are
accompanied by TLB misses, others with TLB hits" — and a TLB miss costs
roughly twice an L1 miss (Figure 4).  TA-CCWS keeps CCWS's cache-line
VTAs and scoring structure, and simply weights a VTA hit whose access
also missed the TLB ``tlb_miss_weight`` times as heavily (weights are
powers of two so real hardware updates with shifters).  Figure 16 sweeps
the weight; 4:1 performs best.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.scheduler.ccws import CCWSScheduler


class TACCWSScheduler(CCWSScheduler):
    """CCWS whose lost-locality scoring knows about TLB misses."""

    def __init__(self, *args, tlb_miss_weight: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        if tlb_miss_weight < 1:
            raise ValueError("tlb_miss_weight must be >= 1")
        if tlb_miss_weight & (tlb_miss_weight - 1):
            raise ValueError(
                "tlb_miss_weight must be a power of two (hardware uses shifters)"
            )
        self.tlb_miss_weight = tlb_miss_weight

    def on_l1_access(
        self,
        warp_id: int,
        line_addr: int,
        hit: bool,
        tlb_missed: bool,
        evicted_line: Optional[int],
        evicted_warp: Optional[int],
    ) -> None:
        if evicted_line is not None and evicted_warp is not None:
            self.vta.insert(evicted_warp, evicted_line)
        if not hit and self.vta.probe(warp_id, line_addr):
            self.vta_hits += 1
            weight = self.tlb_miss_weight if tlb_missed else 1
            self._bump(warp_id, self.base_score * weight)
