"""Build the warp scheduler a configuration asks for."""

from __future__ import annotations

from repro.core.config import SchedulerConfig
from repro.gpu.scheduler.base import (
    GreedyThenOldestScheduler,
    RoundRobinScheduler,
    WarpScheduler,
)
from repro.gpu.scheduler.ccws import CCWSScheduler
from repro.gpu.scheduler.ta_ccws import TACCWSScheduler
from repro.gpu.scheduler.tcws import TCWSScheduler


def make_scheduler(config: SchedulerConfig, num_warps: int) -> WarpScheduler:
    """Instantiate the scheduler described by ``config``."""
    if config.kind == "rr":
        return RoundRobinScheduler(num_warps)
    if config.kind == "gto":
        return GreedyThenOldestScheduler(num_warps)
    common = dict(
        vta_entries_per_warp=config.vta_entries_per_warp,
        vta_associativity=config.vta_associativity,
        lls_cutoff=config.lls_cutoff,
        base_score=config.base_score,
        score_halflife=config.score_halflife,
        min_active_warps=config.min_active_warps,
    )
    if config.kind == "ccws":
        return CCWSScheduler(num_warps, **common)
    if config.kind == "ta-ccws":
        return TACCWSScheduler(
            num_warps, tlb_miss_weight=config.tlb_miss_weight, **common
        )
    if config.kind == "tcws":
        return TCWSScheduler(
            num_warps, lru_hit_weights=config.lru_hit_weights, **common
        )
    raise ValueError(f"unknown scheduler kind {config.kind!r}")
