"""Runtime warp state tracked by the shader core."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.instruction import WarpTrace


@dataclass
class Warp:
    """One warp's execution state.

    Attributes
    ----------
    trace:
        The instruction stream to execute.
    pc:
        Index of the next instruction.
    ready_at:
        Earliest cycle the warp may issue again (its last instruction's
        completion, or the cycle a blocking structure frees up).
    issued:
        Instructions issued so far (for stats).
    """

    trace: WarpTrace
    pc: int = 0
    ready_at: int = 0
    issued: int = 0

    @property
    def warp_id(self) -> int:
        """Hardware warp slot identifier."""
        return self.trace.warp_id

    @property
    def done(self) -> bool:
        """Whether the warp has retired its whole trace."""
        return self.pc >= len(self.trace.instructions)

    def current_instruction(self):
        """The instruction at the warp's PC (caller checks ``done``)."""
        return self.trace.instructions[self.pc]
