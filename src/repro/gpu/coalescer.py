"""The memory unit's intra-warp coalescer.

"The memory unit's address generator calculates virtual addresses, which
are coalesced into unique cache line references.  We enhance this logic
by also coalescing multiple intra-warp requests to the same virtual page
(and hence PTE).  This reduces TLB access traffic and port counts.  At
this point, two sets of accesses are available: (1) unique cache
accesses; and (2) unique PTE accesses." — Section 6.2, Figure 5.

The number of unique pages a warp instruction requests is its *page
divergence* (Figure 3, right), the central quantity of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CoalescedAccess:
    """The two request sets for one warp memory instruction.

    Attributes
    ----------
    lines:
        Unique cache-line virtual addresses (line aligned), in first-lane
        order.
    vpns:
        Unique virtual page numbers, in first-lane order.
    lines_by_vpn:
        For each vpn, the lines that fall in that page — needed by the
        cache-overlap optimization, where lines whose page hit in the TLB
        access the cache before the missing pages translate.
    """

    lines: Tuple[int, ...]
    vpns: Tuple[int, ...]
    lines_by_vpn: Dict[int, Tuple[int, ...]]

    @property
    def page_divergence(self) -> int:
        """Distinct translations this warp instruction needs."""
        return len(self.vpns)


def coalesce(
    addresses: Sequence[Optional[int]],
    line_bytes: int = 128,
    page_shift: int = 12,
) -> CoalescedAccess:
    """Coalesce per-lane addresses into unique line and page requests."""
    line_mask = line_bytes - 1
    if line_bytes & line_mask:
        raise ValueError("line size must be a power of two")
    lines: Dict[int, None] = {}
    vpns: Dict[int, None] = {}
    lines_by_vpn: Dict[int, Dict[int, None]] = {}
    for addr in addresses:
        if addr is None:
            continue
        line = addr & ~line_mask
        vpn = addr >> page_shift
        lines[line] = None
        vpns[vpn] = None
        lines_by_vpn.setdefault(vpn, {})[line] = None
    return CoalescedAccess(
        lines=tuple(lines),
        vpns=tuple(vpns),
        lines_by_vpn={vpn: tuple(page_lines) for vpn, page_lines in lines_by_vpn.items()},
    )
