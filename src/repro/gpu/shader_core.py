"""The SIMT shader core: issue loop, memory unit, MMU integration.

One core owns the structures of the paper's Figure 5: 48 warp slots, a
warp scheduler, a memory unit with intra-warp coalescing, a
virtually-indexed physically-tagged L1 (lookup overlapped with TLB
access), a per-core TLB with per-warp-thread MSHRs, and one (or a pool
of) hardware page table walkers.

Timing is cycle driven with event fast-forwarding: one warp instruction
issues per cycle when any warp is ready, and the clock jumps straight to
the next warp-ready event otherwise (the skipped span is the core's idle
time, the quantity the paper reports dropping from 5-15 % to 4-6 % with
PTW scheduling).

Execution modes
---------------
*Linear*: the workload hands each warp slot a complete instruction
trace (used by every non-TBC experiment).

*Block* (TBC): the workload is thread blocks of divergence regions;
warps of a block synchronize at region boundaries and the thread
compactor re-forms dynamic warps per region — with the Common Page
Matrix gating compaction in ``tlb-tbc`` mode (Section 8.2).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import GPUConfig
from repro.engines import DEFAULT_ENGINE, get_engine
from repro.faults.context import FaultContext
from repro.faults.watchdog import Watchdog
from repro.gpu.coalescer import coalesce
from repro.gpu.instruction import ComputeInstruction, MemoryInstruction, WarpTrace
from repro.gpu.scheduler.base import Candidate
from repro.gpu.scheduler.factory import make_scheduler
from repro.gpu.tbc.blocks import ThreadBlock
from repro.gpu.tbc.compactor import form_region_warps
from repro.gpu.tbc.cpm import CommonPageMatrix
from repro.gpu.warp import Warp
from repro.mem.hierarchy import CoreMemory, SharedMemory
from repro.obs import events as _ev
from repro.obs import spans as _spans
from repro.obs import tracer as _trace
from repro.obs.interval import IntervalSampler
from repro.prof import profiler as _prof
from repro.ptw.multi import WalkerPool
from repro.ptw.scheduler import ScheduledPageTableWalker
from repro.ptw.walker import PageTableWalker
from repro.stats.counters import CoreStats
from repro.tlb.cacti import access_latency
from repro.tlb.tlb import SetAssociativeTLB
from repro.vm.page_table import PageTable


@dataclass
class _BlockRun:
    """Progress of one thread block through its regions (TBC modes)."""

    block: ThreadBlock
    slot_base: int
    region_index: int = 0
    live_warps: int = 0


def _encode_instruction(instr) -> list:
    """JSON-safe encoding of a warp instruction (snapshot protocol)."""
    if isinstance(instr, ComputeInstruction):
        return ["c", instr.latency]
    return [
        "m",
        list(instr.addresses),
        list(instr.origins) if instr.origins is not None else None,
    ]


def _decode_instruction(entry: list):
    if entry[0] == "c":
        return ComputeInstruction(latency=entry[1])
    return MemoryInstruction(
        addresses=tuple(entry[1]),
        origins=tuple(entry[2]) if entry[2] is not None else None,
    )


class ShaderCore:
    """One shader core executing its share of a workload.

    Parameters
    ----------
    core_id:
        Index of this core.
    config:
        Machine description.
    page_table:
        The process page table (shared with every core and the walkers).
    shared_memory:
        The L2/DRAM subsystem shared by all cores.
    work:
        Either a list of :class:`WarpTrace` (linear mode) or a list of
        :class:`ThreadBlock` (TBC modes, per ``config.tbc.mode``).
    """

    def __init__(
        self,
        core_id: int,
        config: GPUConfig,
        page_table: PageTable,
        shared_memory: SharedMemory,
        work: Union[Sequence[WarpTrace], Sequence[ThreadBlock]],
        frame_map: Optional[Dict[int, int]] = None,
        faults: Optional[FaultContext] = None,
    ):
        self.core_id = core_id
        self.config = config
        self.page_table = page_table
        #: Fault machinery (None on fault-free machines); the injector
        #: drives TLB shootdowns/invalidations here and walk errors in
        #: the walker, the model handles demand-paging faults.
        self.faults = faults
        self._injector = faults.injector if faults is not None else None
        # Whole-run injected-fault tallies (kept off CoreStats so the
        # warmup counter reset cannot window them; copied into the stats
        # at the end of run()).
        self._shootdowns = 0
        self._injected_invalidations = 0
        #: Optional interval-metrics sampler, installed by the simulator
        #: when tracing is configured (observation only — never timing).
        self.sampler: Optional[IntervalSampler] = None
        self._stall_seq = 0
        # vpn -> pfn at the configured page size; used for zero-latency
        # physical addressing in the no-TLB baseline and for merged-walk
        # translations (avoids re-walking for a result already in
        # flight).
        self.frame_map = frame_map if frame_map is not None else {}
        self.stats = CoreStats()
        cache = config.cache
        self.memory = CoreMemory(
            shared_memory,
            l1_bytes=cache.l1_bytes,
            line_bytes=cache.line_bytes,
            l1_associativity=cache.l1_associativity,
            l1_latency=cache.l1_latency,
            mshr_entries=cache.l1_mshr_entries,
        )
        self.scheduler = make_scheduler(config.scheduler, config.warps_per_core)
        self.page_shift = config.page_shift
        self.page_mask = (1 << config.page_shift) - 1
        self.line_bytes = cache.line_bytes

        self.tlb: Optional[SetAssociativeTLB] = None
        self.walker = None
        self.tlb_extra_latency = 0
        self.tlb_blocked_until = 0
        self.tlb_port_busy_until = 0
        self._pending_walks: Dict[int, int] = {}  # vpn -> translation ready
        if config.tlb.enabled:
            self.tlb = SetAssociativeTLB(
                entries=config.tlb.entries,
                associativity=config.tlb.associativity,
                ports=config.tlb.ports,
            )
            self.tlb_extra_latency = access_latency(
                config.tlb.entries, config.tlb.ports, ideal=config.tlb.ideal_latency
            )
            if config.ptw.scheduled:
                self.walker = ScheduledPageTableWalker(
                    page_table, shared_memory, faults=faults
                )
            elif config.ptw.count > 1:
                self.walker = WalkerPool(
                    page_table, shared_memory, config.ptw.count, faults=faults
                )
            else:
                self.walker = PageTableWalker(
                    page_table, shared_memory, faults=faults
                )

        self.tbc_mode = config.tbc.mode
        self.cpm: Optional[CommonPageMatrix] = None
        self._block_runs: List[_BlockRun] = []
        self.warps: List[Warp] = []
        if work and isinstance(work[0], ThreadBlock):
            if self.tbc_mode == "tlb-tbc":
                self.cpm = CommonPageMatrix(
                    num_warps=config.warps_per_core,
                    counter_bits=config.tbc.cpm_counter_bits,
                    flush_interval=config.tbc.cpm_flush_interval,
                )
            slot_base = 0
            for block in work:
                run = _BlockRun(block=block, slot_base=slot_base)
                slot_base += block.num_warps
                self._block_runs.append(run)
            if slot_base > config.warps_per_core:
                raise ValueError(
                    f"blocks need {slot_base} warp slots; core has "
                    f"{config.warps_per_core}"
                )
            for run in self._block_runs:
                self._launch_region(run, now=0)
        else:
            if len(work) > config.warps_per_core:
                raise ValueError(
                    f"{len(work)} warps exceed the core's "
                    f"{config.warps_per_core} slots"
                )
            # Warps start staggered (as a real dispatcher would), so
            # statistically identical traces do not produce pathological
            # lockstep memory convoys.
            self.warps = [
                Warp(trace=trace, ready_at=index * 5)
                for index, trace in enumerate(work)
            ]

        # Re-entrant run state.  The issue loop keeps these in locals
        # for speed and syncs them back at safe points, so a snapshot
        # taken from the ``poll`` hook (see :meth:`run`) captures a
        # resumable core; :meth:`begin_run` re-initializes them.
        self._run_begun = False
        self._now = 0
        self._finish = 0
        self._issued_total = 0
        self._measuring = True
        self._warmup_budget = 0
        self._measure_from = 0
        self._warm_mem = (0, 0, 0)
        self._warm_walker = (0, 0, 0, 0)
        self._watchdog: Optional[Watchdog] = None
        # Sampler state restored from a snapshot before the simulator
        # has installed samplers; applied (and cleared) in Simulator.run.
        self._pending_sampler_state: Optional[dict] = None

        #: The issue-loop strategy (see :mod:`repro.engines`).  Engines
        #: keep no simulated state — swapping one mid-run at a safe
        #: point is legal — so the core remains the snapshot unit.
        self.engine = get_engine(getattr(config, "engine", DEFAULT_ENGINE))(self)

    # ------------------------------------------------------------------
    # TBC region management
    # ------------------------------------------------------------------

    def _launch_region(self, run: _BlockRun, now: int) -> None:
        """Form and enqueue the warps of ``run``'s current region."""
        traces = form_region_warps(
            run.block,
            run.region_index,
            mode=self.tbc_mode,
            cpm=self.cpm,
            slot_base=run.slot_base,
        )
        run.live_warps = len(traces)
        self.stats.regions_executed += 1
        self.stats.warp_fetches += len(traces)
        if self.tbc_mode != "stack":
            self.stats.dynamic_warps_formed += len(traces)
        for trace in traces:
            warp = Warp(trace=trace, ready_at=now)
            warp.block_run = run  # type: ignore[attr-defined]
            self.warps.append(warp)

    def _warp_retired(self, warp: Warp, now: int) -> None:
        """Bookkeeping when a warp finishes its trace."""
        run: Optional[_BlockRun] = getattr(warp, "block_run", None)
        if run is None:
            self.scheduler.on_warp_done(warp.warp_id)
            return
        run.live_warps -= 1
        if run.live_warps == 0:
            run.region_index += 1
            if run.region_index < len(run.block.regions):
                # Block-wide synchronization: the next region's warps are
                # formed once every warp of the previous one retires.
                self._launch_region(run, now=now + 1)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _begin_measurement(self, now: int) -> None:
        """Warmup ended: restart the counters, keep the structures warm."""
        self.stats = CoreStats()
        self._measure_from = now
        if self.sampler is not None:
            self.sampler.on_counter_reset()
        self._warm_mem = (
            self.memory.l1_hits,
            self.memory.l1_misses,
            self.memory.total_miss_latency,
        )
        if self.walker is not None:
            self._warm_walker = (
                self.walker.walks,
                self.walker.refs_issued,
                self.walker.refs_naive,
                self.walker.total_walk_cycles,
            )

    def steady_memory_counters(self):
        """(l1_hits, l1_misses, total_miss_latency) in the measured window."""
        h0, m0, lat0 = self._warm_mem
        return (
            self.memory.l1_hits - h0,
            self.memory.l1_misses - m0,
            self.memory.total_miss_latency - lat0,
        )

    def steady_walker_counters(self):
        """(walks, refs_issued, refs_naive, walk_cycles) in the window."""
        if self.walker is None:
            return (0, 0, 0, 0)
        w0, ri0, rn0, wc0 = self._warm_walker
        return (
            self.walker.walks - w0,
            self.walker.refs_issued - ri0,
            self.walker.refs_naive - rn0,
            self.walker.total_walk_cycles - wc0,
        )

    def begin_run(self) -> None:
        """Initialize a fresh run's loop state (and validate warmup).

        Split from :meth:`run` so a snapshot restore can skip it: a
        resumed core re-enters the issue loop with its saved clock,
        warmup progress, and watchdog instead of starting over.
        """
        self._watchdog = None
        if self.config.faults.watchdog_cycles > 0:
            self._watchdog = Watchdog(
                self.config.faults.watchdog_cycles, core_id=self.core_id
            )
        self._measure_from = 0
        self._warm_mem = (0, 0, 0)
        self._warm_walker = (0, 0, 0, 0)
        warmup_budget = self.config.warmup_instructions * max(len(self.warps), 1)
        if warmup_budget and self.warps and not self._block_runs:
            total = sum(len(w.trace.instructions) for w in self.warps)
            if warmup_budget >= total:
                raise ValueError(
                    f"warmup of {self.config.warmup_instructions} "
                    f"instructions per warp ({warmup_budget} total) consumes "
                    f"the whole trace ({total} instructions); nothing would "
                    f"be measured"
                )
        self._warmup_budget = warmup_budget
        self._now = 0
        self._finish = 0
        self._issued_total = 0
        self._measuring = warmup_budget == 0
        self._run_begun = True

    def run(self, poll=None) -> CoreStats:
        """Execute the core's work to completion; return its counters.

        The issue loop itself lives in the configured engine
        (``config.engine``; see :mod:`repro.engines`) — the cycle engine
        is the faithful per-iteration reference loop, the event engine
        the byte-identical fast path.  ``poll``, when given, is called
        with this core at the top of every issue-loop iteration — a
        *safe point* where the hot locals (clock, finish horizon, warmup
        progress) have been synced back to the instance, so
        ``state_dict()`` taken inside the callback captures a resumable
        core.  Normal runs pass None and pay one branch per iteration.

        Raises :class:`repro.faults.errors.SimulationHang` when the
        forward-progress watchdog (``config.faults.watchdog_cycles``)
        detects a deadlock/livelock — no instruction retired for the
        configured window.
        """
        return self.engine.run(poll)

    def _finalize_run(self) -> CoreStats:
        """Close out a completed run (engines call this exactly once)."""
        end = max(self._now, self._finish)
        if self.sampler is not None:
            self.sampler.finalize(end, self.stats)
        self.stats.cycles = end - self._measure_from
        self._record_fault_counters()
        return self.stats

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the core, valid at safe points (loop top / not yet
        begun / finished).

        Linear-mode warp traces are rebuilt deterministically from the
        workload, so only per-warp progress is stored.  TBC dynamic
        warps are compacted from live CPM state at launch time and
        cannot be regenerated, so their traces serialize in full.
        """
        if self._block_runs:
            run_index = {id(run): i for i, run in enumerate(self._block_runs)}
            warps: list = [
                {
                    "warp_id": w.trace.warp_id,
                    "block_id": w.trace.block_id,
                    "instructions": [
                        _encode_instruction(i) for i in w.trace.instructions
                    ],
                    "pc": w.pc,
                    "ready_at": w.ready_at,
                    "issued": w.issued,
                    "block_run": run_index.get(
                        id(getattr(w, "block_run", None))
                    ),
                }
                for w in self.warps
            ]
        else:
            warps = [[w.pc, w.ready_at, w.issued] for w in self.warps]
        return {
            "run_begun": self._run_begun,
            "loop": {
                "now": self._now,
                "finish": self._finish,
                "issued_total": self._issued_total,
                "measuring": self._measuring,
                "warmup_budget": self._warmup_budget,
                "measure_from": self._measure_from,
                "warm_mem": list(self._warm_mem),
                "warm_walker": list(self._warm_walker),
                "watchdog_last_progress": (
                    self._watchdog.last_progress
                    if self._watchdog is not None
                    else None
                ),
            },
            "stats": asdict(self.stats),
            "shootdowns": self._shootdowns,
            "injected_invalidations": self._injected_invalidations,
            "stall_seq": self._stall_seq,
            "tlb_blocked_until": self.tlb_blocked_until,
            "tlb_port_busy_until": self.tlb_port_busy_until,
            "pending_walks": [
                [vpn, ready] for vpn, ready in self._pending_walks.items()
            ],
            "memory": self.memory.state_dict(),
            "scheduler": self.scheduler.state_dict(),
            "tlb": self.tlb.state_dict() if self.tlb is not None else None,
            "walker": (
                self.walker.state_dict() if self.walker is not None else None
            ),
            "cpm": self.cpm.state_dict() if self.cpm is not None else None,
            "sampler": (
                self.sampler.state_dict() if self.sampler is not None else None
            ),
            "warps": warps,
            "block_runs": [
                [run.region_index, run.live_warps] for run in self._block_runs
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this freshly
        constructed core (constructor side effects are overwritten)."""
        self._run_begun = state["run_begun"]
        self.stats = CoreStats(**state["stats"])
        self._shootdowns = state["shootdowns"]
        self._injected_invalidations = state["injected_invalidations"]
        self._stall_seq = state["stall_seq"]
        self.tlb_blocked_until = state["tlb_blocked_until"]
        self.tlb_port_busy_until = state["tlb_port_busy_until"]
        self._pending_walks = {
            vpn: ready for vpn, ready in state["pending_walks"]
        }
        self.memory.load_state(state["memory"])
        self.scheduler.load_state(state["scheduler"])
        if self.tlb is not None and state["tlb"] is not None:
            self.tlb.load_state(state["tlb"])
        if self.walker is not None and state["walker"] is not None:
            self.walker.load_state(state["walker"])
        if self.cpm is not None and state["cpm"] is not None:
            self.cpm.load_state(state["cpm"])
        # The simulator installs samplers inside run(); stash the state
        # until then (Simulator.run applies it after installation).
        self._pending_sampler_state = state["sampler"]
        if self._block_runs:
            for run, (region_index, live_warps) in zip(
                self._block_runs, state["block_runs"]
            ):
                run.region_index = region_index
                run.live_warps = live_warps
            self.warps = []
            for wstate in state["warps"]:
                trace = WarpTrace(
                    warp_id=wstate["warp_id"],
                    instructions=[
                        _decode_instruction(i) for i in wstate["instructions"]
                    ],
                    block_id=wstate["block_id"],
                )
                warp = Warp(
                    trace=trace,
                    pc=wstate["pc"],
                    ready_at=wstate["ready_at"],
                    issued=wstate["issued"],
                )
                if wstate["block_run"] is not None:
                    warp.block_run = self._block_runs[  # type: ignore[attr-defined]
                        wstate["block_run"]
                    ]
                self.warps.append(warp)
        else:
            for warp, (pc, ready_at, issued) in zip(
                self.warps, state["warps"]
            ):
                warp.pc = pc
                warp.ready_at = ready_at
                warp.issued = issued
        loop = state["loop"]
        self._now = loop["now"]
        self._finish = loop["finish"]
        self._issued_total = loop["issued_total"]
        self._measuring = loop["measuring"]
        self._warmup_budget = loop["warmup_budget"]
        self._measure_from = loop["measure_from"]
        self._warm_mem = tuple(loop["warm_mem"])
        self._warm_walker = tuple(loop["warm_walker"])
        self._watchdog = None
        if self._run_begun and self.config.faults.watchdog_cycles > 0:
            self._watchdog = Watchdog(
                self.config.faults.watchdog_cycles, core_id=self.core_id
            )
            if loop["watchdog_last_progress"] is not None:
                self._watchdog.last_progress = loop["watchdog_last_progress"]

    def _record_fault_counters(self) -> None:
        """Copy whole-run fault tallies into the (possibly reset) stats."""
        self.stats.tlb_shootdowns = self._shootdowns
        self.stats.tlb_injected_invalidations = self._injected_invalidations
        walker = self.walker
        if walker is not None:
            self.stats.ptw_transient_errors = walker.transient_errors
            self.stats.ptw_retries = walker.load_retries
            self.stats.ptw_walk_timeouts = walker.walk_timeouts

    def _hang_diagnostics(self) -> Dict[str, object]:
        """State snapshot attached to a watchdog :class:`SimulationHang`."""
        live = [w for w in self.warps if not w.done]
        return {
            "scheduler": self.config.scheduler.kind,
            "live_warps": len(live),
            "tlb_blocked_until": self.tlb_blocked_until,
            "tlb_port_busy_until": self.tlb_port_busy_until,
            "pending_walks": dict(self._pending_walks),
            "instructions_retired": self.stats.instructions,
            "warp_states": [
                {
                    "warp_id": w.warp_id,
                    "ready_at": w.ready_at,
                    "pc": w.pc,
                    "issued": w.issued,
                }
                for w in live[:16]
            ],
        }

    # ------------------------------------------------------------------
    # Memory unit
    # ------------------------------------------------------------------

    def _issue_memory(self, warp: Warp, instr: MemoryInstruction, now: int) -> int:
        """Run one warp memory instruction; return its completion cycle."""
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_COALESCE)
        coal = coalesce(instr.addresses, self.line_bytes, self.page_shift)
        if _prof.ENABLED:
            _prof.end()
        self.stats.page_divergence_sum += coal.page_divergence
        if coal.page_divergence > self.stats.page_divergence_max:
            self.stats.page_divergence_max = coal.page_divergence
        self.stats.coalesced_lines += len(coal.lines)
        if _trace.ENABLED:
            _trace.emit(
                _ev.MEM_COALESCE,
                cycle=now,
                track="coalescer",
                warp=warp.warp_id,
                pages=coal.page_divergence,
                lines=len(coal.lines),
            )

        if self.tlb is None:
            # No-TLB baseline: pinned, physically-addressed memory with
            # zero translation cost; lines issue one per cycle.
            completion = now
            for offset, line in enumerate(coal.lines):
                vpn = line >> self.page_shift
                pfn = self.frame_map.get(vpn)
                if pfn is not None:
                    line = (pfn << 12) + (line & self.page_mask)
                result = self.memory.access(line, now + offset, warp.warp_id)
                self.scheduler.on_l1_access(
                    warp.warp_id,
                    line,
                    result.level == "l1",
                    False,
                    result.evicted_line,
                    result.evicted_warp,
                )
                completion = max(completion, result.ready_time)
            return completion

        return self._issue_translated(warp, instr, coal, now)

    def _vpn_origins(self, instr: MemoryInstruction, vpns) -> Dict[int, int]:
        """Map each accessed page to the original warp that touches it
        (dynamic warps carry per-lane origins; otherwise empty)."""
        origins: Dict[int, int] = {}
        if instr.origins is None:
            return origins
        for addr, origin in zip(instr.addresses, instr.origins):
            if addr is None or origin is None:
                continue
            vpn = addr >> self.page_shift
            origins.setdefault(vpn, origin)
        return origins

    def _fill_tlb(self, vpn: int, pfn: int, owner: int, now: int) -> None:
        """Install a translation, then apply any injected invalidation.

        An injected single-entry invalidation models an OS unmapping the
        page on another core right after the fill (a lost-translation
        race); the next access re-walks.
        """
        eviction = self.tlb.fill(vpn, pfn, owner)
        if eviction is not None:
            self.scheduler.on_tlb_evict(eviction.vpn, eviction.owner)
        if self._injector is not None and self._injector.tlb_invalidate(vpn):
            self.tlb.invalidate(vpn)
            self._injected_invalidations += 1
            if _trace.ENABLED:
                _trace.emit(
                    _ev.FAULT_INJECT,
                    cycle=now,
                    track="faults",
                    fault="tlb_invalidate",
                    vpn=vpn,
                )

    def _issue_translated(self, warp: Warp, instr: MemoryInstruction, coal, now: int) -> int:
        shootdown = False
        if self._injector is not None and self._injector.tlb_shootdown(
            self.core_id
        ):
            # Full-TLB shootdown (e.g. an munmap broadcast): every cached
            # translation on this core is dropped before the lookup.
            self.tlb.flush()
            self._shootdowns += 1
            shootdown = True
            if _trace.ENABLED:
                _trace.emit(
                    _ev.FAULT_INJECT,
                    cycle=now,
                    track="faults",
                    fault="tlb_shootdown",
                    core=self.core_id,
                )
        config = self.config.tlb
        n_pages = coal.page_divergence
        lookup_cycles = -(-n_pages // config.ports)  # ceil division
        # The TLB's read ports arbitrate across warps: a lookup batch
        # occupies them for lookup_cycles, queueing behind earlier
        # batches still in flight.
        port_start = max(now, self.tlb_port_busy_until)
        self.tlb_port_busy_until = port_start + lookup_cycles
        tlb_done = port_start + self.tlb_extra_latency + lookup_cycles
        origins = self._vpn_origins(instr, coal.vpns)
        self.stats.tlb_lookups += n_pages

        translations: Dict[int, int] = {}
        page_ready: Dict[int, int] = {}
        misses: List[int] = []
        if self.cpm is not None:
            self.cpm.maybe_flush(now)
        for vpn in coal.vpns:
            history_id = origins.get(vpn, warp.warp_id)
            lookup = self.tlb.lookup(vpn, history_id)
            if lookup.hit:
                self.stats.tlb_hits += 1
                self.scheduler.on_tlb_hit(warp.warp_id, vpn, lookup.lru_depth)
                if self.cpm is not None and lookup.prior_history:
                    self.cpm.update(history_id, lookup.prior_history)
                translations[vpn] = lookup.pfn
                page_ready[vpn] = tlb_done
            else:
                self.stats.tlb_misses += 1
                self.scheduler.on_tlb_miss(warp.warp_id, vpn)
                misses.append(vpn)

        if misses:
            if _trace.ENABLED:
                for vpn in misses:
                    _trace.emit(
                        _ev.TLB_MISS_BEGIN,
                        cycle=tlb_done,
                        track="tlb",
                        vpn=vpn,
                        warp=warp.warp_id,
                    )
            walk_ready = self._handle_misses(warp, misses, tlb_done, origins)
            for vpn, (pfn, ready) in walk_ready.items():
                translations[vpn] = pfn
                page_ready[vpn] = ready
                self.stats.total_tlb_miss_cycles += ready - tlb_done
                if _trace.ENABLED:
                    _trace.emit(
                        _ev.TLB_MISS_END,
                        cycle=ready,
                        track="tlb",
                        vpn=vpn,
                        latency=ready - tlb_done,
                    )
            all_ready = max(r for _, r in walk_ready.values())
            if config.blocking:
                # A blocking TLB services nothing until its misses resolve.
                self.tlb_blocked_until = max(self.tlb_blocked_until, all_ready)
        else:
            all_ready = tlb_done

        # Cache stage.  Without cache_overlap every line waits for all
        # translations; with it, lines of TLB-hitting pages go at once.
        # Queue state is sampled in present time (the hierarchy's
        # structural queues must see near-monotone arrivals); the
        # translation wait is then added as a serial shift, preserving
        # the translate-then-access dependency.
        completion = tlb_done
        cursor: Dict[int, int] = {"t": now}
        span_fills: Optional[Dict[int, list]] = (
            {} if (_spans.ENABLED and misses) else None
        )

        def access_line(line_vaddr: int, available_at: int, tlb_missed: bool) -> None:
            nonlocal completion
            vpn = line_vaddr >> self.page_shift
            pfn = translations[vpn]
            paddr = (pfn << 12) + (line_vaddr & self.page_mask)
            start = cursor["t"] + 1
            cursor["t"] = start
            result = self.memory.access(paddr, start, warp.warp_id)
            self.scheduler.on_l1_access(
                warp.warp_id,
                paddr,
                result.level == "l1",
                tlb_missed,
                result.evicted_line,
                result.evicted_warp,
            )
            latency = result.ready_time - start
            fill_start = max(available_at, start)
            line_end = fill_start + latency
            completion = max(completion, line_end)
            if span_fills is not None and tlb_missed:
                span_fills.setdefault(vpn, []).append(
                    (result.level, fill_start, line_end)
                )

        if config.cache_overlap:
            missed_set = set(misses)
            for vpn in coal.vpns:
                for line in coal.lines_by_vpn[vpn]:
                    access_line(line, page_ready[vpn], vpn in missed_set)
        else:
            missed_set = set(misses)
            for line in coal.lines:
                vpn = line >> self.page_shift
                access_line(line, all_ready, vpn in missed_set)

        if misses:
            self.stats.tlb_miss_stall_cycles += max(0, all_ready - tlb_done)
            if span_fills is not None:
                self._record_spans(
                    warp,
                    coal,
                    now,
                    port_start,
                    tlb_done,
                    lookup_cycles,
                    walk_ready,
                    span_fills,
                    completion,
                    shootdown,
                )
        return completion

    # ------------------------------------------------------------------
    # Causal request spans (repro.obs.spans; observation only)
    # ------------------------------------------------------------------

    def _record_spans(
        self,
        warp: Warp,
        coal,
        now: int,
        port_start: int,
        tlb_done: int,
        lookup_cycles: int,
        walk_ready: Dict[int, Tuple[int, int]],
        span_fills: Dict[int, list],
        completion: int,
        shootdown: bool,
    ) -> None:
        """Assemble one span tree per missed translation and record it.

        Pure observation: every timestamp was already computed by the
        timing model above; this method only arranges them into a tree
        whose root children tile ``[now, completion]`` exactly.
        """
        policy = self.config.scheduler.kind
        for vpn, (_pfn, ready) in walk_ready.items():
            root = _spans.Span(
                "translation",
                now,
                completion,
                args={
                    "vpn": vpn,
                    "warp": warp.warp_id,
                    "core": self.core_id,
                    "pages": coal.page_divergence,
                    "scheduler": policy,
                },
            )
            probe_args: Dict[str, object] = {
                "port_wait": port_start - now,
                "lookup_cycles": lookup_cycles,
            }
            if shootdown:
                probe_args["shootdown"] = True
            root.add(_spans.Span(_spans.TLB_PROBE, now, tlb_done, probe_args))
            detail = _spans.pop_walk(vpn << (self.page_shift - 12))
            if detail is None:
                # The miss merged into another warp's in-flight walk:
                # no walker involvement, it completes with that MSHR.
                root.add(
                    _spans.Span(
                        _spans.MSHR_MERGE,
                        tlb_done,
                        ready,
                        {"cause": "merged"},
                    )
                )
            else:
                self._add_walk_spans(root, detail, tlb_done, ready)
            fills = span_fills.get(vpn, ())
            chain_end = ready
            for _level, _fill_start, fill_end in fills:
                if fill_end > chain_end:
                    chain_end = fill_end
            if chain_end > ready:
                memory = root.add(
                    _spans.Span(
                        _spans.MEMORY, ready, chain_end, {"fills": len(fills)}
                    )
                )
                for level, fill_start, fill_end in fills:
                    memory.add(
                        _spans.Span(f"fill_{level}", fill_start, fill_end)
                    )
            if completion > chain_end:
                root.add(_spans.Span(_spans.WAKEUP, chain_end, completion))
            _spans.record(root)

    @staticmethod
    def _add_walk_spans(
        root, detail, tlb_done: int, ready: int
    ) -> None:
        """Append the walker-side components of one request tree.

        Chains [tlb_done → ready] from the walk's :class:`WalkDetail`:
        queue wait (or the OS fault handler for re-batched faulting
        walks), deferred-start fault handling, the per-level segments,
        and any stall gaps between/after them (``fault_wait``).
        """
        root.args.update(detail.args)
        edge = tlb_done
        queue_end = min(max(detail.queue_end, edge), ready)
        if queue_end > edge:
            gap_name = (
                _spans.PAGE_FAULT
                if detail.args.get("demand_fault")
                else _spans.PTW_QUEUE
            )
            queue_args: Dict[str, object] = {}
            depth = detail.args.get("queue_depth")
            if depth is not None:
                queue_args["depth"] = depth
            root.add(_spans.Span(gap_name, edge, queue_end, queue_args))
            edge = queue_end
        if detail.start > edge:
            root.add(
                _spans.Span(
                    _spans.PAGE_FAULT,
                    edge,
                    detail.start,
                    {"cause": "demand_fault"},
                )
            )
            edge = detail.start
        for level, seg_start, seg_end in detail.segments:
            if seg_start > edge:
                # A stall between loads: a still-running fault handler
                # or a timed-out walk waiting to retry.
                root.add(_spans.Span(_spans.FAULT_WAIT, edge, seg_start))
                edge = seg_start
            if seg_end > edge:
                root.add(_spans.Span(f"walk_l{level}", edge, seg_end))
                edge = seg_end
        if ready > edge:
            root.add(_spans.Span(_spans.FAULT_WAIT, edge, ready))

    def _handle_misses(
        self,
        warp: Warp,
        misses: List[int],
        walk_start: int,
        origins: Dict[int, int],
    ) -> Dict[int, Tuple[int, int]]:
        """Resolve TLB misses via MSHRs and the walker.

        Returns vpn → (pfn, translation-ready cycle).
        """
        result: Dict[int, Tuple[int, int]] = {}
        # Expire completed walks.
        expired = [v for v, ready in self._pending_walks.items() if ready <= walk_start]
        for vpn in expired:
            del self._pending_walks[vpn]
        to_walk: List[int] = []
        for vpn in misses:
            pending = self._pending_walks.get(vpn)
            if pending is not None:
                # Another warp's walk for the same page is in flight:
                # this miss merges into its MSHR and completes with it.
                pfn = self.frame_map.get(vpn)
                if pfn is None:
                    pfn = self.page_table.translate_vpn(
                        vpn << (self.page_shift - 12)
                    )
                result[vpn] = (pfn, pending)
                # The completing walk installs the translation for the
                # merged requesters too (same treatment as a fresh walk).
                self._fill_tlb(
                    vpn, pfn, origins.get(vpn, warp.warp_id), walk_start
                )
            else:
                to_walk.append(vpn)
        if to_walk:
            free = self.config.tlb.mshr_entries - len(self._pending_walks)
            if len(to_walk) > free:
                self.stats.tlb_mshr_stalls += 1
            if _trace.ENABLED:
                _trace.emit(
                    _ev.WALK_QUEUE,
                    cycle=walk_start,
                    track="walk-queue",
                    depth=len(self._pending_walks) + len(to_walk),
                )
            batch = self.walker.walk_many(
                [vpn << (self.page_shift - 12) for vpn in to_walk], walk_start
            )
            if _spans.ENABLED:
                # Cause annotation: outstanding walks the batch queued
                # behind (the depth the trace's walk-queue counter sees).
                depth = len(self._pending_walks) + len(to_walk)
                for vpn in to_walk:
                    _spans.annotate_walk(
                        vpn << (self.page_shift - 12), queue_depth=depth
                    )
            for vpn in to_walk:
                walk_vpn = vpn << (self.page_shift - 12)
                pfn = batch.translations[walk_vpn]
                ready = batch.ready_times[walk_vpn]
                result[vpn] = (pfn, ready)
                self._pending_walks[vpn] = ready
                self._fill_tlb(
                    vpn, pfn, origins.get(vpn, warp.warp_id), walk_start
                )
            self.stats.walks += len(to_walk)
            self.stats.walk_refs_issued += batch.refs
            self.stats.walk_refs_naive += sum(
                len(self.page_table.walk(vpn << (self.page_shift - 12)))
                for vpn in to_walk
            )
        return result
