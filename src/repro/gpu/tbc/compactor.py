"""The thread compactor: dynamic warp formation per region.

Baseline TBC packs same-path threads into the fewest dynamic warps the
lane constraint allows (a thread never leaves its SIMD lane — the
priority encoders of Figure 21 pick at most one thread per lane per
cycle).  TLB-aware TBC adds one gate: a thread joins a dynamic warp
only if the Common Page Matrix says its original warp has recently
shared PTEs with every original warp already compacted into it — the
difference between the middle and right warp layouts of Figure 19.
TLB-aware TBC may therefore emit *more* dynamic warps, trading SIMD
utilization for page divergence, which nets out ahead (Figure 22).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.gpu.instruction import ComputeInstruction, MemoryInstruction, WarpTrace
from repro.gpu.tbc.blocks import Region, ThreadBlock
from repro.gpu.tbc.cpm import CommonPageMatrix
from repro.gpu.tbc.reconvergence import stack_execution_groups


@dataclass(frozen=True)
class ExecutionGroup:
    """A formed warp for one region: a path and the threads running it."""

    path: int
    threads: Tuple[int, ...]


def _compact_path(
    block: ThreadBlock,
    threads: List[int],
    cpm: Optional[CommonPageMatrix],
    slot_base: int,
) -> List[ExecutionGroup]:
    """Lane-aware greedy packing of one path's threads, optionally gated
    by the CPM."""
    # Each open warp: (lane -> tid map, set of member original warps).
    open_warps: List[Tuple[Dict[int, int], set]] = []
    for tid in threads:
        lane = block.lane(tid)
        origin = slot_base + block.original_warp(tid)
        placed = False
        for lanes, members in open_warps:
            if lane in lanes:
                continue
            if cpm is not None and not cpm.compatible(origin, members):
                continue
            lanes[lane] = tid
            members.add(origin)
            placed = True
            break
        if not placed:
            open_warps.append(({lane: tid}, {origin}))
    path = None  # filled by caller
    return [
        ExecutionGroup(path=path, threads=tuple(sorted(lanes.values())))
        for lanes, _ in open_warps
    ]


def compact_region(
    block: ThreadBlock,
    region: Region,
    cpm: Optional[CommonPageMatrix] = None,
    slot_base: int = 0,
) -> List[ExecutionGroup]:
    """Form dynamic warps for every path of a region.

    ``cpm=None`` is baseline TBC; passing a matrix enables the TLB-aware
    gate.  Paths are emitted in ascending path-id order, matching the
    block-wide reconvergence stack.
    """
    groups: List[ExecutionGroup] = []
    for path in region.paths:
        packed = _compact_path(block, region.threads_on_path(path), cpm, slot_base)
        groups.extend(
            ExecutionGroup(path=path, threads=group.threads) for group in packed
        )
    return groups


#: Memoized _group_trace results.  A formed trace is a pure function of
#: the (immutable) block, region, group shape, and slot assignment, and
#: is never written through once built, so identical groups — the same
#: region compacted the same way in a later run, or by a different TBC
#: mode — can share one WarpTrace.  Values keep the block and region so
#: a recycled id() can never alias.  Sharing also keeps instruction
#: identity stable across runs, which downstream per-instruction
#: coalescing caches key on.
_TRACE_CACHE: Dict[tuple, tuple] = {}
_TRACE_CACHE_LIMIT = 100_000


def _group_trace(
    block: ThreadBlock,
    region: Region,
    group: ExecutionGroup,
    warp_id: int,
    slot_base: int,
) -> WarpTrace:
    """Materialize the warp instructions one execution group runs."""
    key = (id(block), id(region), group.path, group.threads, warp_id, slot_base)
    cached = _TRACE_CACHE.get(key)
    if cached is not None and cached[0] is block and cached[1] is region:
        return cached[2]
    program = region.path_programs[group.path]
    lanes: Dict[int, int] = {block.lane(tid): tid for tid in group.threads}
    if len(lanes) != len(group.threads):
        raise ValueError("execution group has a lane conflict")
    instructions = []
    mem_index = 0
    for template in program:
        if template[0] == "c":
            instructions.append(ComputeInstruction(latency=template[1]))
            continue
        addresses: List[Optional[int]] = [None] * block.warp_width
        origins: List[Optional[int]] = [None] * block.warp_width
        for lane, tid in lanes.items():
            addresses[lane] = region.thread_addresses[tid][mem_index]
            origins[lane] = slot_base + block.original_warp(tid)
        mem_index += 1
        instructions.append(
            MemoryInstruction(addresses=tuple(addresses), origins=tuple(origins))
        )
    trace = WarpTrace(
        warp_id=warp_id, instructions=instructions, block_id=block.block_id
    )
    if len(_TRACE_CACHE) > _TRACE_CACHE_LIMIT:
        _TRACE_CACHE.clear()
    _TRACE_CACHE[key] = (block, region, trace)
    return trace


def form_region_warps(
    block: ThreadBlock,
    region_index: int,
    mode: str,
    cpm: Optional[CommonPageMatrix] = None,
    slot_base: int = 0,
) -> List[WarpTrace]:
    """Build the warp traces that execute one region of a block.

    ``mode`` is ``"stack"`` (per-warp reconvergence, serialized paths),
    ``"tbc"`` (baseline compaction) or ``"tlb-tbc"`` (CPM-gated
    compaction; requires ``cpm``).  Warp ids are assigned cyclically
    over the block's ``num_warps`` hardware slots starting at
    ``slot_base``.
    """
    region = block.regions[region_index]
    if mode == "stack":
        groups = [
            ExecutionGroup(path=masked.path, threads=masked.threads)
            for masked in stack_execution_groups(block, region)
        ]
    elif mode == "tbc":
        groups = compact_region(block, region, cpm=None, slot_base=slot_base)
    elif mode == "tlb-tbc":
        if cpm is None:
            raise ValueError("tlb-tbc formation requires a CommonPageMatrix")
        groups = compact_region(block, region, cpm=cpm, slot_base=slot_base)
    else:
        raise ValueError(f"unknown TBC mode {mode!r}")
    traces = []
    for index, group in enumerate(groups):
        warp_id = slot_base + (index % block.num_warps)
        traces.append(_group_trace(block, region, group, warp_id, slot_base))
    return traces
