"""Baseline per-warp reconvergence-stack execution.

Without dynamic warp formation, a divergent branch masks lanes: each
static warp executes every path its threads took, one path at a time,
with the other lanes idle (the six warp fetches of the paper's
Figure 19, versus TBC's three).  This module enumerates those masked
execution groups for one region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.gpu.tbc.blocks import Region, ThreadBlock


@dataclass(frozen=True)
class MaskedGroup:
    """One (static warp, path) execution: the warp runs the path's
    program with ``threads`` active (block-local ids, all in distinct
    lanes by construction)."""

    original_warp: int
    path: int
    threads: Tuple[int, ...]


def stack_execution_groups(block: ThreadBlock, region: Region) -> List[MaskedGroup]:
    """Enumerate the masked per-warp executions for ``region``.

    Groups are ordered warp-major (warp 0's paths, then warp 1's...),
    matching a per-warp reconvergence stack that serializes taken paths.
    Warps with no active thread in the region contribute nothing.
    """
    groups: List[MaskedGroup] = []
    for warp_index in range(block.num_warps):
        start = warp_index * block.warp_width
        lanes = range(start, start + block.warp_width)
        by_path = {}
        for tid in lanes:
            path = region.thread_paths[tid]
            if path is not None:
                by_path.setdefault(path, []).append(tid)
        for path in sorted(by_path):
            groups.append(
                MaskedGroup(
                    original_warp=warp_index,
                    path=path,
                    threads=tuple(by_path[path]),
                )
            )
    return groups
