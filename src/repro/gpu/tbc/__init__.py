"""Thread block compaction (TBC) and its TLB-aware variant.

TBC [Fung & Aamodt, HPCA 2011] synchronizes the warps of a thread block
at divergent branches and repacks threads that took the same path into
full dynamic warps, recovering SIMD utilization.  The paper shows that
blind compaction mixes threads with far-flung data, raising page
divergence by 2–4 and TLB miss rates by 5–10 % (Section 8.1); its
TLB-aware TBC gates compaction with a Common Page Matrix so only threads
whose original warps historically shared PTEs are packed together
(Section 8.2, Figure 21).
"""

from repro.gpu.tbc.blocks import Region, ThreadBlock
from repro.gpu.tbc.cpm import CommonPageMatrix
from repro.gpu.tbc.reconvergence import stack_execution_groups
from repro.gpu.tbc.compactor import ExecutionGroup, form_region_warps

__all__ = [
    "Region",
    "ThreadBlock",
    "CommonPageMatrix",
    "stack_execution_groups",
    "ExecutionGroup",
    "form_region_warps",
]
