"""The Common Page Matrix (paper Section 8.2, Figure 21).

A table with one row per original warp and one saturating counter per
*other* warp (48 × 47 in the paper's cores).  Counter (a, b) tracks how
often warps *a* and *b* have recently hit the same TLB entries; the
thread compactor only packs a thread into a dynamic warp when its
original warp's counters against every original warp already in that
dynamic warp are saturated.  With 3-bit counters the table is 0.8 KB.
The matrix is flushed every 500 cycles so it keeps adapting to program
behaviour, and all updates happen off the compaction critical path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class CommonPageMatrix:
    """Pairwise warp PTE-sharing confidence counters.

    Parameters
    ----------
    num_warps:
        Rows (original warps per core; the paper uses 48).
    counter_bits:
        Saturating counter width; Figure 22 sweeps 1–3 bits.
    flush_interval:
        Cycles between periodic flushes (paper: 500).
    """

    def __init__(self, num_warps: int = 48, counter_bits: int = 3, flush_interval: int = 500):
        if num_warps < 2:
            raise ValueError("CPM needs at least two warps")
        if not 1 <= counter_bits <= 8:
            raise ValueError("counter_bits must be 1-8")
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.num_warps = num_warps
        self.counter_bits = counter_bits
        self.max_value = (1 << counter_bits) - 1
        self.flush_interval = flush_interval
        self._counters: Dict[Tuple[int, int], int] = {}
        self._last_flush = 0
        self.updates = 0
        self.flushes = 0

    def _check(self, warp_id: int) -> None:
        if not 0 <= warp_id < self.num_warps:
            raise ValueError(f"warp id out of range: {warp_id}")

    def value(self, warp_a: int, warp_b: int) -> int:
        """Current counter between two distinct warps."""
        self._check(warp_a)
        self._check(warp_b)
        if warp_a == warp_b:
            raise ValueError("a warp has no counter against itself")
        return self._counters.get((warp_a, warp_b), 0)

    def update(self, warp_id: int, history: Iterable[int]) -> None:
        """A TLB hit by ``warp_id`` on an entry previously touched by
        ``history`` warps: bump the pairwise counters (both directions —
        the hardware selects the row of the hitting warp and the rows of
        the history warps symmetrically)."""
        self._check(warp_id)
        for other in history:
            if other == warp_id or not 0 <= other < self.num_warps:
                continue
            for pair in ((warp_id, other), (other, warp_id)):
                current = self._counters.get(pair, 0)
                if current < self.max_value:
                    self._counters[pair] = current + 1
            self.updates += 1

    def saturated(self, warp_a: int, warp_b: int) -> bool:
        """Whether the pair's counter is at maximum (compaction allowed)."""
        return self.value(warp_a, warp_b) == self.max_value

    def compatible(self, warp_id: int, members: Iterable[int]) -> bool:
        """Whether ``warp_id`` may be compacted with all ``members``.

        "We compact the candidate thread into the dynamic warp only if
        the counters are at maximum value."  Threads from the same
        original warp are always compatible with each other.
        """
        for member in members:
            if member == warp_id:
                continue
            if not self.saturated(warp_id, member):
                return False
        return True

    def maybe_flush(self, now: int) -> bool:
        """Flush if ``flush_interval`` cycles have elapsed; return whether."""
        if now - self._last_flush >= self.flush_interval:
            self.flush()
            self._last_flush = now
            return True
        return False

    def flush(self) -> None:
        """Clear all counters."""
        self._counters.clear()
        self.flushes += 1

    def state_dict(self) -> dict:
        """Snapshot counters as ``[a, b, value]`` triples (tuple keys do
        not survive JSON) plus flush bookkeeping."""
        return {
            "counters": [
                [a, b, value] for (a, b), value in self._counters.items()
            ],
            "last_flush": self._last_flush,
            "updates": self.updates,
            "flushes": self.flushes,
        }

    def load_state(self, state: dict) -> None:
        self._counters = {
            (a, b): value for a, b, value in state["counters"]
        }
        self._last_flush = state["last_flush"]
        self.updates = state["updates"]
        self.flushes = state["flushes"]

    def storage_bits(self) -> int:
        """Hardware cost: counters × width (0.8 KB at 48×47×3 bits)."""
        return self.num_warps * (self.num_warps - 1) * self.counter_bits
