"""Thread blocks and branch-divergent regions.

A TBC workload is structured the way CUDA/OpenCL issue work: threads
arrive in *thread blocks* of several warps.  Control flow divides each
block's execution into *regions* delimited by divergent branches and
their reconvergence points (the A / B-C / D blocks of the paper's
Figure 19).  Within a region every thread follows exactly one *path*,
and all threads on a path execute the same instruction template with
their own addresses — which is what makes cross-warp compaction legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Instruction templates: ("c", latency) compute, ("m",) memory.
PathProgram = Tuple[Tuple, ...]


@dataclass(frozen=True)
class Region:
    """One divergence region of a thread block.

    Attributes
    ----------
    path_programs:
        path id → instruction template list.  Templates are tuples:
        ``("c", latency)`` for compute, ``("m",)`` for a memory access.
    thread_paths:
        For each thread (block-local id), the path it follows in this
        region, or None when the thread is masked off entirely.
    thread_addresses:
        thread id → the virtual addresses it supplies, one per ``("m",)``
        template in its path's program.
    """

    path_programs: Dict[int, PathProgram]
    thread_paths: Tuple[Optional[int], ...]
    thread_addresses: Dict[int, Tuple[int, ...]]

    def __post_init__(self):
        mem_counts = {
            path: sum(1 for template in program if template[0] == "m")
            for path, program in self.path_programs.items()
        }
        for tid, path in enumerate(self.thread_paths):
            if path is None:
                continue
            if path not in self.path_programs:
                raise ValueError(f"thread {tid} follows unknown path {path}")
            expected = mem_counts[path]
            supplied = len(self.thread_addresses.get(tid, ()))
            if expected != supplied:
                raise ValueError(
                    f"thread {tid} on path {path} needs {expected} addresses, "
                    f"got {supplied}"
                )

    @property
    def paths(self) -> Tuple[int, ...]:
        """Path ids with at least one thread on them."""
        present = {
            path for path in self.thread_paths if path is not None
        }
        return tuple(sorted(present))

    def threads_on_path(self, path: int) -> List[int]:
        """Block-local thread ids following ``path``, ascending."""
        return [
            tid for tid, p in enumerate(self.thread_paths) if p == path
        ]


@dataclass
class ThreadBlock:
    """A thread block: geometry plus its region sequence.

    Attributes
    ----------
    block_id:
        Global block identifier.
    num_warps:
        Original (static) warps in the block.
    warp_width:
        Threads per warp.
    regions:
        Ordered divergence regions.
    """

    block_id: int
    num_warps: int
    warp_width: int
    regions: List[Region] = field(default_factory=list)

    def __post_init__(self):
        if self.num_warps <= 0 or self.warp_width <= 0:
            raise ValueError("block geometry must be positive")
        for index, region in enumerate(self.regions):
            if len(region.thread_paths) != self.num_threads:
                raise ValueError(
                    f"region {index} covers {len(region.thread_paths)} threads; "
                    f"block has {self.num_threads}"
                )

    @property
    def num_threads(self) -> int:
        """Total threads in the block."""
        return self.num_warps * self.warp_width

    def original_warp(self, tid: int) -> int:
        """The static warp (block-local index) thread ``tid`` belongs to."""
        return tid // self.warp_width

    def lane(self, tid: int) -> int:
        """The SIMD lane thread ``tid`` occupies (fixed across compaction)."""
        return tid % self.warp_width
