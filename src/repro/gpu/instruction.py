"""Warp-level instructions and traces.

The simulator is trace driven: a workload supplies, per warp, a sequence
of warp instructions.  A compute instruction occupies the issue slot and
the warp for a fixed latency.  A memory instruction carries one virtual
address per active lane (None for lanes masked off by divergence); the
memory unit coalesces those into unique cache-line and unique page
references, exactly the two request sets Figure 5 presents to the L1 and
the TLB in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class ComputeInstruction:
    """A non-memory warp instruction.

    ``latency`` is the cycles before the warp may issue again (1 for
    simple ALU work; larger values stand in for multi-instruction
    compute phases, keeping traces compact without changing scheduling
    behaviour).
    """

    latency: int = 1

    def __post_init__(self):
        if self.latency <= 0:
            raise ValueError("compute latency must be positive")


@dataclass(frozen=True)
class MemoryInstruction:
    """A warp load/store with per-lane virtual addresses.

    ``addresses[i]`` is lane *i*'s byte virtual address, or None when the
    lane is inactive.  At least one lane must be active.

    ``origins[i]`` optionally records the *original* (static) warp of
    the thread occupying lane *i* — meaningful only inside dynamic warps
    formed by thread block compaction, where the Common Page Matrix
    tracks PTE sharing between original warps.
    """

    addresses: Tuple[Optional[int], ...]
    origins: Optional[Tuple[Optional[int], ...]] = None

    def __post_init__(self):
        if not any(addr is not None for addr in self.addresses):
            raise ValueError("memory instruction with no active lane")
        for addr in self.addresses:
            if addr is not None and addr < 0:
                raise ValueError("virtual addresses must be non-negative")
        if self.origins is not None and len(self.origins) != len(self.addresses):
            raise ValueError("origins must align with addresses lane for lane")

    @property
    def active_lanes(self) -> int:
        """Number of lanes participating in the access."""
        return sum(1 for addr in self.addresses if addr is not None)


WarpInstruction = Union[ComputeInstruction, MemoryInstruction]


@dataclass
class WarpTrace:
    """The instruction stream one warp executes.

    Attributes
    ----------
    warp_id:
        Hardware warp slot (also the identity CCWS/TBC structures key on).
    instructions:
        Ordered warp instructions.
    block_id:
        Thread block this warp belongs to (used by TBC grouping).
    """

    warp_id: int
    instructions: List[WarpInstruction] = field(default_factory=list)
    block_id: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def memory_instruction_count(self) -> int:
        """Memory instructions in the trace."""
        return sum(
            1 for instr in self.instructions if isinstance(instr, MemoryInstruction)
        )

    @property
    def instruction_count(self) -> int:
        """Total warp instructions, counting a compute's latency as its
        folded instruction count (so memory-instruction *fractions* match
        the per-scalar-instruction percentages the paper reports)."""
        total = 0
        for instr in self.instructions:
            if isinstance(instr, ComputeInstruction):
                total += instr.latency
            else:
                total += 1
        return total
