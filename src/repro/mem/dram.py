"""DRAM channel model with service-rate queueing.

Each channel serves one request every ``service_interval`` cycles and
returns data ``access_latency`` cycles after service begins.  Requests
arriving while the channel is busy queue behind it, so bursts of page
table walks and cache misses see realistic contention — the effect that
makes GPU TLB misses roughly twice as expensive as L1 misses (paper
Figure 4).
"""

from __future__ import annotations

from typing import List

from repro.obs import events as _ev
from repro.obs import tracer as _trace
from repro.prof import profiler as _prof


class DRAMChannel:
    """One DRAM channel: fixed service rate, fixed access latency."""

    def __init__(self, access_latency: int = 200, service_interval: int = 8):
        if access_latency <= 0 or service_interval <= 0:
            raise ValueError("latencies must be positive")
        self.access_latency = access_latency
        self.service_interval = service_interval
        self.busy_until = 0
        self.requests = 0
        self.total_queue_delay = 0

    def access(self, now: int) -> int:
        """Issue a request at cycle ``now``; return its data-ready cycle."""
        start = now if now >= self.busy_until else self.busy_until
        self.total_queue_delay += start - now
        self.busy_until = start + self.service_interval
        self.requests += 1
        return start + self.access_latency

    def state_dict(self) -> dict:
        return {
            "busy_until": self.busy_until,
            "requests": self.requests,
            "total_queue_delay": self.total_queue_delay,
        }

    def load_state(self, state: dict) -> None:
        self.busy_until = state["busy_until"]
        self.requests = state["requests"]
        self.total_queue_delay = state["total_queue_delay"]


class DRAM:
    """A set of DRAM channels addressed by line-address interleaving."""

    def __init__(
        self,
        num_channels: int = 8,
        access_latency: int = 200,
        service_interval: int = 8,
        line_bytes: int = 128,
    ):
        if num_channels <= 0:
            raise ValueError("need at least one channel")
        self.num_channels = num_channels
        self.line_bytes = line_bytes
        self.channels: List[DRAMChannel] = [
            DRAMChannel(access_latency, service_interval)
            for _ in range(num_channels)
        ]

    def channel_of(self, line_addr: int) -> int:
        """Channel index a line address maps to (line interleaving)."""
        return (line_addr // self.line_bytes) % self.num_channels

    def access(self, line_addr: int, now: int) -> int:
        """Access DRAM for ``line_addr`` at ``now``; return ready cycle."""
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_DRAM)
        channel_index = self.channel_of(line_addr)
        channel = self.channels[channel_index]
        ready = channel.access(now)
        if _prof.ENABLED:
            _prof.end()
        if _trace.ENABLED:
            start = ready - channel.access_latency
            _trace.emit(
                _ev.DRAM_ACCESS,
                cycle=start,
                track=f"dram-ch{channel_index}",
                dur=channel.access_latency,
                line=line_addr,
                queued=start - now,
            )
        return ready

    def state_dict(self) -> dict:
        return {"channels": [ch.state_dict() for ch in self.channels]}

    def load_state(self, state: dict) -> None:
        for channel, channel_state in zip(self.channels, state["channels"]):
            channel.load_state(channel_state)

    @property
    def requests(self) -> int:
        """Total requests across all channels."""
        return sum(channel.requests for channel in self.channels)

    @property
    def total_queue_delay(self) -> int:
        """Total cycles requests spent queued across all channels."""
        return sum(channel.total_queue_delay for channel in self.channels)
