"""Memory hierarchy substrate: caches, MSHRs, DRAM channels.

Models the GPGPU-Sim memory system the paper evaluates on: per-core
32 KB L1 data caches with 128-byte lines and LRU, a unified L2 split
across 8 memory partitions (128 KB per channel), and DRAM channels with
queueing.  Timing is functional: an access performed at cycle *t* returns
the cycle at which its data is available, advancing channel occupancy so
contention is visible.
"""

from repro.mem.cache import CacheAccess, SetAssociativeCache
from repro.mem.mshr import MSHRFile
from repro.mem.dram import DRAM, DRAMChannel
from repro.mem.hierarchy import (
    CoreMemory,
    MemAccessResult,
    SharedMemory,
)

__all__ = [
    "CacheAccess",
    "SetAssociativeCache",
    "MSHRFile",
    "DRAM",
    "DRAMChannel",
    "CoreMemory",
    "MemAccessResult",
    "SharedMemory",
]
