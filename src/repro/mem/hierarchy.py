"""Composition of the memory system: L1 → interconnect → L2 → DRAM.

Mirrors the paper's evaluation platform (Section 5.2): per-shader-core
32 KB L1 data caches, 8 memory channels each with a 128 KB slice of
unified L2, and DRAM behind each channel.  Page table walker references
are injected into the shared L2 ("MSHR allocation triggers page table
walks, which inject memory requests to the shared caches and main
memory"), and the hierarchy keeps separate counters for them so the PTW
scheduler's cache-hit-rate improvements are measurable (Figure 10).
"""

from __future__ import annotations

from typing import List, Optional

from repro.mem.cache import SetAssociativeCache
from repro.mem.dram import DRAM
from repro.mem.mshr import MSHRFile
from repro.prof import profiler as _prof


class MemAccessResult:
    """Outcome of a demand access through the hierarchy.

    A plain ``__slots__`` value object: one is built per access on the
    hottest simulator path, where slotted construction beats a frozen
    dataclass by a wide margin.

    Attributes
    ----------
    ready_time:
        Cycle at which the requested data is available.
    level:
        Where the request was satisfied: ``"l1"``, ``"l1-mshr"``,
        ``"l2"``, or ``"dram"``.
    evicted_line / evicted_warp:
        L1 victim information for CCWS (None when nothing was evicted).
    """

    __slots__ = ("ready_time", "level", "evicted_line", "evicted_warp")

    def __init__(
        self,
        ready_time: int,
        level: str,
        evicted_line: Optional[int] = None,
        evicted_warp: Optional[int] = None,
    ):
        self.ready_time = ready_time
        self.level = level
        self.evicted_line = evicted_line
        self.evicted_warp = evicted_warp

    def __eq__(self, other):
        return (
            isinstance(other, MemAccessResult)
            and self.ready_time == other.ready_time
            and self.level == other.level
            and self.evicted_line == other.evicted_line
            and self.evicted_warp == other.evicted_warp
        )

    def __repr__(self):
        return (
            f"MemAccessResult(ready_time={self.ready_time}, "
            f"level={self.level!r}, evicted_line={self.evicted_line}, "
            f"evicted_warp={self.evicted_warp})"
        )


class SharedMemory:
    """Shared L2 slices plus DRAM, common to all shader cores."""

    def __init__(
        self,
        num_channels: int = 8,
        l2_bytes_per_channel: int = 128 * 1024,
        line_bytes: int = 128,
        l2_associativity: int = 8,
        l2_latency: int = 20,
        l2_service_interval: int = 4,
        interconnect_latency: int = 8,
        dram_latency: int = 200,
        dram_service_interval: int = 8,
    ):
        self.line_bytes = line_bytes
        self.l2_latency = l2_latency
        self.l2_service_interval = l2_service_interval
        self.interconnect_latency = interconnect_latency
        self.l2_banks: List[SetAssociativeCache] = [
            SetAssociativeCache(
                l2_bytes_per_channel,
                line_bytes,
                l2_associativity,
                label=f"l2-bank{bank}",
            )
            for bank in range(num_channels)
        ]
        # Each L2 bank serves one access per service interval; requests
        # arriving while the bank is busy queue behind it (bank port
        # bandwidth, not just latency, bounds cache-heavy workloads).
        self._bank_busy_until: List[int] = [0] * num_channels
        self.dram = DRAM(
            num_channels=num_channels,
            access_latency=dram_latency,
            service_interval=dram_service_interval,
            line_bytes=line_bytes,
        )
        self.l2_hits = 0
        self.l2_misses = 0
        self.ptw_refs = 0
        self.ptw_l2_hits = 0

    def access_line(self, line_addr: int, now: int, is_ptw: bool = False) -> MemAccessResult:
        """Access a line in the shared levels; returns ready time and level.

        Page-walk references are prioritized past the bank's data queue:
        they are a small fraction of traffic, every cycle they wait is
        multiplied by the walk's four dependent levels, and real memory
        controllers arbitrate request classes rather than FIFO-ing
        translation traffic behind data bursts.  They still consume bank
        bandwidth (the busy window advances).
        """
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_L2)
        channel = self.dram.channel_of(line_addr)
        bank = self.l2_banks[channel]
        arrive = now + self.interconnect_latency
        if is_ptw:
            self.ptw_refs += 1
            start = arrive
            self._bank_busy_until[channel] = (
                max(arrive, self._bank_busy_until[channel])
                + self.l2_service_interval
            )
        else:
            start = max(arrive, self._bank_busy_until[channel])
            self._bank_busy_until[channel] = start + self.l2_service_interval
        if bank.access(line_addr).hit:
            self.l2_hits += 1
            if is_ptw:
                self.ptw_l2_hits += 1
            if _prof.ENABLED:
                _prof.end()
            return MemAccessResult(start + self.l2_latency, "l2")
        self.l2_misses += 1
        ready = self.dram.access(line_addr, start + self.l2_latency)
        if _prof.ENABLED:
            _prof.end()
        return MemAccessResult(ready + self.interconnect_latency, "dram")

    def state_dict(self) -> dict:
        return {
            "l2_banks": [bank.state_dict() for bank in self.l2_banks],
            "bank_busy_until": list(self._bank_busy_until),
            "dram": self.dram.state_dict(),
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "ptw_refs": self.ptw_refs,
            "ptw_l2_hits": self.ptw_l2_hits,
        }

    def load_state(self, state: dict) -> None:
        for bank, bank_state in zip(self.l2_banks, state["l2_banks"]):
            bank.load_state(bank_state)
        self._bank_busy_until = list(state["bank_busy_until"])
        self.dram.load_state(state["dram"])
        self.l2_hits = state["l2_hits"]
        self.l2_misses = state["l2_misses"]
        self.ptw_refs = state["ptw_refs"]
        self.ptw_l2_hits = state["ptw_l2_hits"]

    @property
    def ptw_l2_hit_rate(self) -> float:
        """Fraction of page-walk references that hit in the L2."""
        return self.ptw_l2_hits / self.ptw_refs if self.ptw_refs else 0.0


class CoreMemory:
    """The per-shader-core L1 data cache and its MSHR file.

    The L1 is virtually indexed and physically tagged; lookup proceeds in
    parallel with TLB access and the returned latencies assume the TLB
    delivered the tag in time (the TLB access-latency model charges any
    excess separately).
    """

    def __init__(
        self,
        shared: SharedMemory,
        l1_bytes: int = 32 * 1024,
        line_bytes: int = 128,
        l1_associativity: int = 8,
        l1_latency: int = 1,
        mshr_entries: int = 32,
    ):
        self.shared = shared
        self.l1_latency = l1_latency
        self.l1 = SetAssociativeCache(
            l1_bytes, line_bytes, l1_associativity, label="l1"
        )
        self.mshrs = MSHRFile(mshr_entries)
        self.l1_hits = 0
        self.l1_misses = 0
        self.total_miss_latency = 0

    def access(self, line_addr: int, now: int, warp_id: Optional[int] = None) -> MemAccessResult:
        """Demand access by a warp; models hit, MSHR merge, or fill."""
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_CACHE)
        access = self.l1.access(line_addr, warp_id)
        if access.hit:
            self.l1_hits += 1
            if _prof.ENABLED:
                _prof.end()
            return MemAccessResult(now + self.l1_latency, "l1")
        self.l1_misses += 1
        merge_ready = self.mshrs.lookup(line_addr, now)
        if merge_ready is not None:
            ready = merge_ready if merge_ready > now else now + self.l1_latency
            self.total_miss_latency += ready - now
            if _prof.ENABLED:
                _prof.end()
            return MemAccessResult(
                ready, "l1-mshr", access.evicted_line, access.evicted_warp
            )
        # The request goes out on the wire now; a full MSHR file delays
        # only when the *fill* can land (the returned data waits for a
        # free slot).  Shared-level queues must see arrivals in
        # (near-)present time — forward-dating them would retroactively
        # delay other requesters, such as the page table walker.
        slot_free = self.mshrs.earliest_free(now)
        shared = self.shared.access_line(line_addr, now)
        ready = max(shared.ready_time, slot_free + self.l1_latency)
        self.mshrs.allocate(line_addr, ready, slot_free)
        self.total_miss_latency += ready - now
        if _prof.ENABLED:
            _prof.end()
        return MemAccessResult(
            ready, shared.level, access.evicted_line, access.evicted_warp
        )

    def state_dict(self) -> dict:
        """Per-core L1 state; the shared levels snapshot separately."""
        return {
            "l1": self.l1.state_dict(),
            "mshrs": self.mshrs.state_dict(),
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "total_miss_latency": self.total_miss_latency,
        }

    def load_state(self, state: dict) -> None:
        self.l1.load_state(state["l1"])
        self.mshrs.load_state(state["mshrs"])
        self.l1_hits = state["l1_hits"]
        self.l1_misses = state["l1_misses"]
        self.total_miss_latency = state["total_miss_latency"]

    @property
    def average_miss_latency(self) -> float:
        """Average cycles from L1 miss to data return (Figure 4 metric)."""
        return self.total_miss_latency / self.l1_misses if self.l1_misses else 0.0
