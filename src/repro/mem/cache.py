"""Set-associative cache with LRU replacement.

Each line additionally records the identifier of the warp that allocated
it, which CCWS consults when a line is evicted (the victim's tag and
allocating warp feed the per-warp victim tag arrays; Section 7.1,
Figure 12 of the paper).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import events as _ev
from repro.obs import tracer as _trace


class CacheAccess:
    """Outcome of one cache access.

    A plain ``__slots__`` value object (not a dataclass): one is built
    per access on the simulator's hottest path, and slotted construction
    is measurably cheaper than a frozen dataclass there.

    Attributes
    ----------
    hit:
        Whether the line was resident.
    evicted_line:
        Line address displaced by the fill, or None when the set had a
        free way (or the access hit).
    evicted_warp:
        Warp that had allocated the displaced line, or None.
    """

    __slots__ = ("hit", "evicted_line", "evicted_warp")

    def __init__(
        self,
        hit: bool,
        evicted_line: Optional[int] = None,
        evicted_warp: Optional[int] = None,
    ):
        self.hit = hit
        self.evicted_line = evicted_line
        self.evicted_warp = evicted_warp

    def __eq__(self, other):
        return (
            isinstance(other, CacheAccess)
            and self.hit == other.hit
            and self.evicted_line == other.evicted_line
            and self.evicted_warp == other.evicted_warp
        )

    def __repr__(self):
        return (
            f"CacheAccess(hit={self.hit}, evicted_line={self.evicted_line}, "
            f"evicted_warp={self.evicted_warp})"
        )


#: Shared hit outcome: hits carry no victim info, so every hit can
#: return the same immutable-by-convention instance.
_HIT = CacheAccess(hit=True)


class SetAssociativeCache:
    """An LRU set-associative cache indexed by line address.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    line_bytes:
        Line size; the paper uses 128-byte lines throughout.
    associativity:
        Ways per set.
    label:
        Name stamped onto trace events (and their Perfetto track) so
        L1s and L2 banks are distinguishable in a trace.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 128,
        associativity: int = 8,
        label: str = "cache",
    ):
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines == 0 or num_lines % associativity:
            raise ValueError(
                f"{size_bytes} bytes / {line_bytes} B lines does not divide "
                f"into {associativity}-way sets"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.label = label
        self.num_sets = num_lines // associativity
        # Power-of-two geometry (the paper's throughout) lets the set
        # index be a shift+mask instead of a divide+modulo.
        if line_bytes & (line_bytes - 1) == 0 and self.num_sets & (self.num_sets - 1) == 0:
            self._line_shift: Optional[int] = line_bytes.bit_length() - 1
            self._set_mask = self.num_sets - 1
        else:
            self._line_shift = None
            self._set_mask = 0
        # Per set: insertion-ordered dict of line_addr -> allocating warp.
        # Oldest (LRU) entry first; hits reinsert to move to MRU.
        self._sets: Dict[int, Dict[int, Optional[int]]] = {}
        self.hits = 0
        self.misses = 0

    def _set_index(self, line_addr: int) -> int:
        if self._line_shift is not None:
            return (line_addr >> self._line_shift) & self._set_mask
        return (line_addr // self.line_bytes) % self.num_sets

    def lookup(self, line_addr: int) -> bool:
        """Probe without updating LRU state or filling."""
        cache_set = self._sets.get(self._set_index(line_addr))
        return cache_set is not None and line_addr in cache_set

    def access(self, line_addr: int, warp_id: Optional[int] = None) -> CacheAccess:
        """Access ``line_addr``; fill (and possibly evict) on a miss."""
        index = self._set_index(line_addr)
        cache_set = self._sets.setdefault(index, {})
        if line_addr in cache_set:
            self.hits += 1
            owner = cache_set.pop(line_addr)
            cache_set[line_addr] = owner  # move to MRU
            if _trace.ENABLED:
                _trace.RECORD(
                    (
                        _ev.CACHE_ACCESS,
                        _trace.NOW,
                        _trace.CORE,
                        self.label,
                        None,
                        {"line": line_addr, "hit": True, "warp": warp_id},
                    )
                )
            return _HIT
        self.misses += 1
        evicted_line = None
        evicted_warp = None
        if len(cache_set) >= self.associativity:
            evicted_line, evicted_warp = next(iter(cache_set.items()))
            del cache_set[evicted_line]
        cache_set[line_addr] = warp_id
        if _trace.ENABLED:
            _trace.RECORD(
                (
                    _ev.CACHE_ACCESS,
                    _trace.NOW,
                    _trace.CORE,
                    self.label,
                    None,
                    {
                        "line": line_addr,
                        "hit": False,
                        "warp": warp_id,
                        "evicted": evicted_line,
                    },
                )
            )
        return CacheAccess(
            hit=False, evicted_line=evicted_line, evicted_warp=evicted_warp
        )

    def fill(self, line_addr: int, warp_id: Optional[int] = None) -> CacheAccess:
        """Install a line without counting a demand access (e.g. PTW fill)."""
        index = self._set_index(line_addr)
        cache_set = self._sets.setdefault(index, {})
        if line_addr in cache_set:
            owner = cache_set.pop(line_addr)
            cache_set[line_addr] = owner
            return _HIT
        evicted_line = None
        evicted_warp = None
        if len(cache_set) >= self.associativity:
            evicted_line, evicted_warp = next(iter(cache_set.items()))
            del cache_set[evicted_line]
        cache_set[line_addr] = warp_id
        return CacheAccess(
            hit=False, evicted_line=evicted_line, evicted_warp=evicted_warp
        )

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; return whether it was resident."""
        index = self._set_index(line_addr)
        cache_set = self._sets.get(index)
        if cache_set is not None and line_addr in cache_set:
            del cache_set[line_addr]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (e.g. on a TLB shootdown / context switch)."""
        self._sets.clear()

    def state_dict(self) -> dict:
        """Snapshot sets (LRU order and allocating warps) and counters."""
        return {
            "sets": [
                [index, [[line, warp] for line, warp in cache_set.items()]]
                for index, cache_set in self._sets.items()
            ],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        self._sets = {
            index: {line: warp for line, warp in lines}
            for index, lines in state["sets"]
        }
        self.hits = state["hits"]
        self.misses = state["misses"]

    @property
    def resident_lines(self) -> int:
        """Number of lines currently held."""
        return sum(len(s) for s in self._sets.values())

    @property
    def miss_rate(self) -> float:
        """Demand miss rate observed so far."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
