"""Miss Status Holding Registers.

An MSHR file tracks outstanding misses by line address so that a second
miss to an in-flight line merges with the first instead of issuing a new
request.  Entries retire implicitly when simulated time passes their
fill time; capacity pressure is exposed through :meth:`MSHRFile.earliest_free`
so callers can model structural stalls.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import events as _ev
from repro.obs import tracer as _trace


class MSHRFile:
    """Outstanding-miss tracker with bounded capacity.

    Parameters
    ----------
    capacity:
        Maximum simultaneously outstanding distinct lines.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._inflight: Dict[int, int] = {}  # line -> fill (ready) time
        self.merges = 0
        self.allocations = 0
        self.stalls = 0

    def _expire(self, now: int) -> None:
        if not self._inflight:
            return
        expired = [line for line, ready in self._inflight.items() if ready <= now]
        for line in expired:
            if _trace.ENABLED:
                # Stamped with the entry's fill time, not the (later)
                # cycle the lazy expiry happened to run at.
                _trace.emit(
                    _ev.MSHR_RETIRE,
                    cycle=self._inflight[line],
                    track="mshr",
                    line=line,
                )
            del self._inflight[line]

    def outstanding(self, now: int) -> int:
        """Number of misses still in flight at cycle ``now``."""
        self._expire(now)
        return len(self._inflight)

    def lookup(self, line_addr: int, now: int) -> Optional[int]:
        """If ``line_addr`` is in flight, return its fill time (a merge)."""
        self._expire(now)
        ready = self._inflight.get(line_addr)
        if ready is not None:
            self.merges += 1
            if _trace.ENABLED:
                _trace.emit(
                    _ev.MSHR_MERGE,
                    cycle=now,
                    track="mshr",
                    line=line_addr,
                    ready=ready,
                )
        return ready

    def earliest_free(self, now: int) -> int:
        """Earliest cycle at which an entry can be allocated.

        Returns ``now`` when a slot is already free; otherwise the fill
        time of the soonest-retiring entry.
        """
        self._expire(now)
        if len(self._inflight) < self.capacity:
            return now
        self.stalls += 1
        return min(self._inflight.values())

    def state_dict(self) -> dict:
        """Snapshot in-flight misses (insertion order) and counters."""
        return {
            "inflight": [[line, ready] for line, ready in self._inflight.items()],
            "merges": self.merges,
            "allocations": self.allocations,
            "stalls": self.stalls,
        }

    def load_state(self, state: dict) -> None:
        self._inflight = {line: ready for line, ready in state["inflight"]}
        self.merges = state["merges"]
        self.allocations = state["allocations"]
        self.stalls = state["stalls"]

    def allocate(self, line_addr: int, ready_time: int, now: int) -> None:
        """Record a new outstanding miss filling at ``ready_time``."""
        self._expire(now)
        if len(self._inflight) >= self.capacity:
            raise RuntimeError("MSHR allocate with no free entry; call earliest_free")
        if line_addr in self._inflight:
            raise RuntimeError(f"line {line_addr:#x} already has an MSHR")
        self._inflight[line_addr] = ready_time
        self.allocations += 1
        if _trace.ENABLED:
            _trace.emit(
                _ev.MSHR_ALLOC,
                cycle=now,
                track="mshr",
                line=line_addr,
                ready=ready_time,
                outstanding=len(self._inflight),
            )
