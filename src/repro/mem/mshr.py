"""Miss Status Holding Registers.

An MSHR file tracks outstanding misses by line address so that a second
miss to an in-flight line merges with the first instead of issuing a new
request.  Entries retire implicitly when simulated time passes their
fill time; capacity pressure is exposed through :meth:`MSHRFile.earliest_free`
so callers can model structural stalls.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.obs import events as _ev
from repro.obs import tracer as _trace

#: Sentinel fill time meaning "no entry can expire" (empty file).
_NEVER = float("inf")


class MSHRFile:
    """Outstanding-miss tracker with bounded capacity.

    Parameters
    ----------
    capacity:
        Maximum simultaneously outstanding distinct lines.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._inflight: Dict[int, int] = {}  # line -> fill (ready) time
        # Earliest fill time among in-flight entries; lets _expire skip
        # the retirement work entirely while no entry can have retired.
        self._min_ready = _NEVER
        # (ready, line) min-heap mirroring _inflight, with lazy deletion:
        # an entry is live iff _inflight[line] == ready.  A retired
        # line's later re-allocation always carries a strictly larger
        # fill time, so a stale heap entry can never alias a live one.
        self._heap: List[Tuple[int, int]] = []
        self.merges = 0
        self.allocations = 0
        self.stalls = 0

    def _expire(self, now: int) -> None:
        if now < self._min_ready:
            return
        inflight = self._inflight
        heap = self._heap
        if _trace.ENABLED:
            # Traced path: the heap finds the retirees cheaply, then a
            # positional index (built only for multi-entry batches)
            # restores file (insertion) order so the MSHR_RETIRE event
            # sequence matches the pre-heap behaviour byte for byte.
            expired = []
            while heap and heap[0][0] <= now:
                ready, line = heapq.heappop(heap)
                if inflight.get(line) == ready:
                    expired.append(line)
            if expired:
                if len(expired) > 1:
                    order = {line: i for i, line in enumerate(inflight)}
                    expired.sort(key=order.__getitem__)
                record = _trace.RECORD
                core = _trace.CORE
                for line in expired:
                    # Stamped with the entry's fill time, not the
                    # (later) cycle the lazy expiry happened to run at.
                    record(
                        (
                            _ev.MSHR_RETIRE,
                            inflight.pop(line),
                            core,
                            "mshr",
                            None,
                            {"line": line},
                        )
                    )
            self._min_ready = heap[0][0] if heap else _NEVER
            return
        while heap and heap[0][0] <= now:
            ready, line = heapq.heappop(heap)
            if inflight.get(line) == ready:
                del inflight[line]
        # The heap top is a lower bound on the live minimum (stale
        # entries may linger); a too-small gate only costs a re-check.
        self._min_ready = heap[0][0] if heap else _NEVER

    def outstanding(self, now: int) -> int:
        """Number of misses still in flight at cycle ``now``."""
        self._expire(now)
        return len(self._inflight)

    def lookup(self, line_addr: int, now: int) -> Optional[int]:
        """If ``line_addr`` is in flight, return its fill time (a merge)."""
        self._expire(now)
        ready = self._inflight.get(line_addr)
        if ready is not None:
            self.merges += 1
            if _trace.ENABLED:
                _trace.emit(
                    _ev.MSHR_MERGE,
                    cycle=now,
                    track="mshr",
                    line=line_addr,
                    ready=ready,
                )
        return ready

    def earliest_free(self, now: int) -> int:
        """Earliest cycle at which an entry can be allocated.

        Returns ``now`` when a slot is already free; otherwise the fill
        time of the soonest-retiring entry.
        """
        self._expire(now)
        if len(self._inflight) < self.capacity:
            return now
        self.stalls += 1
        # Exact earliest fill among live entries: the heap top, after
        # discarding stale (lazily deleted) entries.  The file is full,
        # so a live entry — and therefore a live heap top — exists.
        heap = self._heap
        while True:
            ready, line = heap[0]
            if self._inflight.get(line) == ready:
                return ready
            heapq.heappop(heap)

    def state_dict(self) -> dict:
        """Snapshot in-flight misses (insertion order) and counters."""
        return {
            "inflight": [[line, ready] for line, ready in self._inflight.items()],
            "merges": self.merges,
            "allocations": self.allocations,
            "stalls": self.stalls,
        }

    def load_state(self, state: dict) -> None:
        self._inflight = {line: ready for line, ready in state["inflight"]}
        self._min_ready = (
            min(self._inflight.values()) if self._inflight else _NEVER
        )
        self._heap = [(ready, line) for line, ready in self._inflight.items()]
        heapq.heapify(self._heap)
        self.merges = state["merges"]
        self.allocations = state["allocations"]
        self.stalls = state["stalls"]

    def allocate(self, line_addr: int, ready_time: int, now: int) -> None:
        """Record a new outstanding miss filling at ``ready_time``."""
        self._expire(now)
        if len(self._inflight) >= self.capacity:
            raise RuntimeError("MSHR allocate with no free entry; call earliest_free")
        if line_addr in self._inflight:
            raise RuntimeError(f"line {line_addr:#x} already has an MSHR")
        self._inflight[line_addr] = ready_time
        heapq.heappush(self._heap, (ready_time, line_addr))
        if ready_time < self._min_ready:
            self._min_ready = ready_time
        self.allocations += 1
        if _trace.ENABLED:
            _trace.emit(
                _ev.MSHR_ALLOC,
                cycle=now,
                track="mshr",
                line=line_addr,
                ready=ready_time,
                outstanding=len(self._inflight),
            )
