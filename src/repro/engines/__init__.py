"""Pluggable simulator cores (`SimEngine` implementations).

The shader core's issue loop is a strategy: the **cycle** engine is the
faithful reference loop (the oracle every other engine is differenced
against), the **event** engine replays the identical decision sequence
with event-driven mechanics — skipping dead time via a next-event scan
and running the per-warp address math over precomputed arrays — and is
byte-identical to the cycle engine on every simulated quantity.

This module is deliberately import-light: :mod:`repro.core.config`
imports it to validate the ``engine`` field, so pulling in the engine
implementations here (which import gpu/mem/tlb modules) would create an
import cycle.  Engine classes load lazily on first use.

Future cores (e.g. vectorized variants) register here and become
selectable through ``GPUConfig(engine=...)``, ``repro.api``'s
``engine=`` keyword, and ``--engine`` on every harness subcommand
without touching ``api.py``.
"""

from __future__ import annotations

import importlib
from typing import Dict, Tuple, Type

#: Engine name -> "module:ClassName"; resolved lazily.
_REGISTRY: Dict[str, str] = {
    "cycle": "repro.engines.cycle:CycleEngine",
    "event": "repro.engines.event:EventEngine",
}

#: The engine new configs get when none is requested.
DEFAULT_ENGINE = "event"

_loaded: Dict[str, type] = {}


def available_engines() -> Tuple[str, ...]:
    """Names of every registered engine, in registration order."""
    return tuple(_REGISTRY)


def get_engine(name: str) -> Type:
    """Resolve an engine name to its class.

    Raises ``ValueError`` for unknown names (the same error surface as
    config validation, so CLI and API callers report unknown engines
    uniformly).
    """
    cls = _loaded.get(name)
    if cls is not None:
        return cls
    target = _REGISTRY.get(name)
    if target is None:
        raise ValueError(
            f"unknown engine {name!r}; one of {sorted(_REGISTRY)}"
        )
    module_name, _, class_name = target.partition(":")
    cls = getattr(importlib.import_module(module_name), class_name)
    _loaded[name] = cls
    return cls


def register_engine(name: str, target: str) -> None:
    """Register an engine as ``"module:ClassName"`` (plug-in point)."""
    if not name or ":" not in target:
        raise ValueError("register_engine needs a name and 'module:Class'")
    _REGISTRY[name] = target
    _loaded.pop(name, None)


__all__ = [
    "DEFAULT_ENGINE",
    "available_engines",
    "get_engine",
    "register_engine",
]
