"""Pluggable simulator cores (`SimEngine` implementations).

The shader core's issue loop is a strategy: the **cycle** engine is the
faithful reference loop (the oracle every other engine is differenced
against), the **event** engine replays the identical decision sequence
with event-driven mechanics — skipping dead time via a next-event scan
and running the per-warp address math over precomputed arrays — and is
byte-identical to the cycle engine on every simulated quantity.

This module is deliberately import-light: :mod:`repro.core.config`
imports it to validate the ``engine`` field, so pulling in the engine
implementations here (which import gpu/mem/tlb modules) would create an
import cycle.  Engine classes load lazily on first use.

Future cores (e.g. vectorized variants) register here and become
selectable through ``GPUConfig(engine=...)``, ``repro.api``'s
``engine=`` keyword, and ``--engine`` on every harness subcommand
without touching ``api.py``.
"""

from __future__ import annotations

import importlib
from typing import Dict, Tuple, Type

#: Engine name -> "module:ClassName"; resolved lazily.
_REGISTRY: Dict[str, str] = {
    "cycle": "repro.engines.cycle:CycleEngine",
    "event": "repro.engines.event:EventEngine",
}

#: The engine new configs get when none is requested.
DEFAULT_ENGINE = "event"

#: Canonical observer-capability names an engine may declare in its
#: ``FEATURES`` frozenset (see :class:`repro.engines.base.SimEngine`):
#:
#: - ``"trace"``    — emits :mod:`repro.obs.tracer` events natively
#: - ``"spans"``    — records :mod:`repro.obs.spans` request trees
#: - ``"sampling"`` — drives :class:`repro.obs.interval.IntervalSampler`
#: - ``"profile"``  — attributes time to :mod:`repro.prof` phases
#: - ``"snapshot"`` — state_dict/load_state at safe points
OBSERVER_FEATURES = ("trace", "spans", "sampling", "profile", "snapshot")

_loaded: Dict[str, type] = {}


class EngineFeatureError(RuntimeError):
    """An engine was asked to run with observers it does not support.

    Raised instead of silently substituting another engine (the old
    cycle-loop fallback): the user picked this engine explicitly, so a
    capability gap must surface as an error, not as a quiet behaviour
    change.  CLI entry points report it and exit with status 2.
    """

    def __init__(self, engine: str, missing):
        self.engine = engine
        self.missing = tuple(sorted(missing))
        super().__init__(
            f"engine {engine!r} does not support "
            f"{', '.join(self.missing)}; pick an engine that declares "
            f"these features (see repro.engines.engine_features) or "
            f"disable the observer — runs are never silently moved to "
            f"a different engine"
        )


def available_engines() -> Tuple[str, ...]:
    """Names of every registered engine, in registration order."""
    return tuple(_REGISTRY)


def get_engine(name: str) -> Type:
    """Resolve an engine name to its class.

    Raises ``ValueError`` for unknown names (the same error surface as
    config validation, so CLI and API callers report unknown engines
    uniformly).
    """
    cls = _loaded.get(name)
    if cls is not None:
        return cls
    target = _REGISTRY.get(name)
    if target is None:
        raise ValueError(
            f"unknown engine {name!r}; one of {sorted(_REGISTRY)}"
        )
    module_name, _, class_name = target.partition(":")
    cls = getattr(importlib.import_module(module_name), class_name)
    _loaded[name] = cls
    return cls


def register_engine(name: str, target) -> None:
    """Register an engine (plug-in point).

    ``target`` is either a ``"module:ClassName"`` string (resolved
    lazily, keeping this module import-light) or the engine class
    itself (handy for tests and in-process plug-ins).
    """
    if not name:
        raise ValueError("register_engine needs a name")
    if isinstance(target, type):
        _REGISTRY[name] = f"{target.__module__}:{target.__qualname__}"
        _loaded[name] = target
        return
    if not isinstance(target, str) or ":" not in target:
        raise ValueError(
            "register_engine needs 'module:Class' or an engine class"
        )
    _REGISTRY[name] = target
    _loaded.pop(name, None)


def unregister_engine(name: str) -> None:
    """Remove a registered engine (tests clean up stub engines)."""
    if name in ("cycle", "event"):
        raise ValueError(f"refusing to unregister built-in engine {name!r}")
    _REGISTRY.pop(name, None)
    _loaded.pop(name, None)


def engine_features(name: str) -> frozenset:
    """The observer capabilities engine ``name`` declares."""
    return frozenset(getattr(get_engine(name), "FEATURES", frozenset()))


def require_features(name: str, needed) -> None:
    """Raise :class:`EngineFeatureError` unless engine ``name``
    declares every feature in ``needed``.

    Called by :meth:`repro.core.simulator.Simulator.run` with exactly
    the observers active for the run, so a capability gap fails the run
    up front — never a silent fallback to another engine.
    """
    missing = frozenset(needed) - engine_features(name)
    if missing:
        raise EngineFeatureError(name, missing)


__all__ = [
    "DEFAULT_ENGINE",
    "OBSERVER_FEATURES",
    "EngineFeatureError",
    "available_engines",
    "engine_features",
    "get_engine",
    "register_engine",
    "require_features",
    "unregister_engine",
]
