"""The cycle-driven reference engine.

This is the shader core's original issue loop, verbatim: one warp
instruction per cycle when any warp is ready, clock jumps to the next
warp-ready event otherwise, full per-iteration instrumentation
(tracing, spans, interval sampling, profiling).  It is the oracle the
event engine is differenced against — ``tests/engines`` asserts the
two produce byte-identical results *and* identical observer output
(trace streams, span decompositions, interval samples), so it is never
silently substituted for the event engine; selecting it is always an
explicit choice.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.gpu.instruction import ComputeInstruction, MemoryInstruction
from repro.gpu.scheduler.base import Candidate
from repro.gpu.warp import Warp
from repro.obs import events as _ev
from repro.obs import tracer as _trace
from repro.prof import profiler as _prof

from repro.engines.base import SimEngine


class CycleEngine(SimEngine):
    """Faithful cycle-driven issue loop (the reference oracle)."""

    name = "cycle"
    FEATURES = frozenset(
        {"trace", "spans", "sampling", "profile", "snapshot"}
    )

    def run(self, poll=None):
        """Execute the core's work to completion; return its counters.

        ``poll``, when given, is called with the core at the top of
        every issue-loop iteration — a *safe point* where the hot locals
        (clock, finish horizon, warmup progress) have been synced back
        to the core, so ``state_dict()`` taken inside the callback
        captures a resumable core.

        Raises :class:`repro.faults.errors.SimulationHang` when the
        forward-progress watchdog detects no instruction retired for
        the configured window.
        """
        core = self.core
        if not core._run_begun:
            core.begin_run()
        self._loop(poll, None)
        return core._finalize_run()

    def step_to(self, cycle: int, poll=None) -> int:
        """Advance to the first safe point at or past ``cycle``."""
        core = self.core
        if not core._run_begun:
            core.begin_run()
        self._loop(poll, cycle)
        return core._now

    def _loop(self, poll, stop_at) -> bool:
        """The issue loop; returns True when the core ran out of work.

        With ``stop_at`` set, returns (False) at the first safe point
        whose clock is at or past it, locals synced back to the core.
        """
        core = self.core
        watchdog = core._watchdog
        blocking = core.config.tlb.enabled and core.config.tlb.blocking
        warmup_budget = core._warmup_budget
        now = core._now
        finish = core._finish
        issued_total = core._issued_total
        measuring = core._measuring
        events = self._events
        while True:
            if stop_at is not None and now >= stop_at:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                return False
            if events and events[0][0] <= now:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                self._dispatch_events(now)
            if poll is not None:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                poll(core)
            if _trace.ENABLED:
                _trace.CORE = core.core_id
                _trace.NOW = now
            if core.sampler is not None:
                core.sampler.maybe_sample(now, core.stats)
            live = [w for w in core.warps if not w.done]
            if not live:
                break
            candidates: List[Tuple[Warp, Candidate]] = []
            blocked_only = True
            for warp in live:
                if warp.ready_at > now:
                    continue
                instr = warp.current_instruction()
                is_mem = isinstance(instr, MemoryInstruction)
                if is_mem and blocking and now < core.tlb_blocked_until:
                    continue  # blocking TLB: memory warps cannot proceed
                blocked_only = False
                candidates.append((warp, Candidate(warp.warp_id, is_mem)))
            if not candidates:
                if watchdog is not None:
                    watchdog.check(now, core._hang_diagnostics)
                waits = [w.ready_at for w in live if w.ready_at > now]
                if blocking and core.tlb_blocked_until > now:
                    waits.append(core.tlb_blocked_until)
                next_event = min(waits) if waits else now + 1
                tlb_blocked = (
                    blocking and blocked_only and core.tlb_blocked_until > now
                )
                if tlb_blocked:
                    core.stats.tlb_blocked_wait_cycles += (
                        min(next_event, core.tlb_blocked_until) - now
                    )
                core.stats.idle_cycles += next_event - now
                if _trace.ENABLED:
                    core._stall_seq += 1
                    _trace.emit(
                        _ev.WARP_STALL_BEGIN,
                        cycle=now,
                        id=core._stall_seq,
                        reason="tlb_blocked" if tlb_blocked else "memory",
                        live=len(live),
                    )
                    _trace.emit(
                        _ev.WARP_STALL_END, cycle=next_event, id=core._stall_seq
                    )
                now = next_event
                continue
            inflight = any(w.ready_at > now for w in live)
            if _prof.ENABLED:
                _prof.begin(_prof.PHASE_WARP_SCHED)
            chosen_id = core.scheduler.select(
                [c for _, c in candidates], now, inflight
            )
            if _prof.ENABLED:
                _prof.end()
            if _trace.ENABLED:
                _trace.emit(
                    _ev.SCHEDULER_DECISION,
                    cycle=now,
                    track="sched",
                    policy=core.config.scheduler.kind,
                    chosen=chosen_id,
                    candidates=len(candidates),
                )
            if chosen_id is None:
                if watchdog is not None:
                    watchdog.check(now, core._hang_diagnostics)
                waits = [w.ready_at for w in live if w.ready_at > now]
                next_event = min(waits) if waits else now + 1
                core.stats.idle_cycles += next_event - now
                if _trace.ENABLED:
                    core._stall_seq += 1
                    _trace.emit(
                        _ev.WARP_STALL_BEGIN,
                        cycle=now,
                        id=core._stall_seq,
                        reason="throttled",
                        live=len(live),
                    )
                    _trace.emit(
                        _ev.WARP_STALL_END, cycle=next_event, id=core._stall_seq
                    )
                now = next_event
                continue
            warp = next(w for w, c in candidates if c.warp_id == chosen_id)
            instr = warp.current_instruction()
            if isinstance(instr, ComputeInstruction):
                # A compute template folds `latency` scalar instructions;
                # they occupy the single issue port back to back, so the
                # clock advances by the full latency (issue bandwidth is
                # the compute-phase bottleneck with 48 resident warps).
                warp.ready_at = now + instr.latency
                core.stats.scalar_instructions += instr.latency
                advance = instr.latency
            else:
                warp.ready_at = core._issue_memory(warp, instr, now)
                core.stats.memory_instructions += 1
                core.stats.scalar_instructions += 1
                advance = 1
            core.stats.instructions += 1
            if watchdog is not None:
                watchdog.last_progress = now
            warp.issued += 1
            warp.pc += 1
            finish = max(finish, warp.ready_at)
            if warp.done:
                core._warp_retired(warp, now)
            now += advance
            issued_total += 1
            if not measuring and issued_total >= warmup_budget:
                measuring = True
                core._begin_measurement(now)
        core._now = now
        core._finish = finish
        core._issued_total = issued_total
        core._measuring = measuring
        return True
