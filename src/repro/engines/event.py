"""The event-driven engine: next-event advancement, array address math.

Byte-identity is the contract.  The cycle loop already *decides*
sparsely — most iterations either issue exactly one instruction or jump
the clock to the next warp-ready event — so this engine replays the
identical decision sequence with cheaper mechanics and produces results
(CoreStats, result JSON, snapshots, spans, traces) indistinguishable
from the cycle engine's.  Three mechanical changes carry the speedup:

- **No per-iteration rebuild.**  The cycle loop re-filters the live-warp
  list and re-allocates candidate wrappers every iteration; here live
  warps are split into a ready list (scanned for candidates) and a
  ready-time heap (drained as the clock advances), so each iteration
  touches only the warps that could actually issue, and the stock
  scheduler policies are inlined.

- **Vectorized address math.**  Per-warp coalescing — line masking and
  VPN extraction for every lane of every memory instruction — runs as
  two whole-matrix numpy operations up front; per-instruction results
  are memoized by instruction identity.

- **Inlined memory path.**  The TLB probe, L1/MSHR, L2 bank, and DRAM
  channel state transitions are replicated inline (every counter and
  LRU/insertion-order mutation in the exact reference order) instead of
  crossing five method-call layers per line.

The engine never leaves event-driven mechanics.  Two loops share the
ready-list/wait-heap machinery:

- the **fast loop** runs when no per-access observation hook can fire
  (tracing off, spans off, no interval sampler, no fault injector) and
  elides every emission;
- the **observed loop** runs otherwise and emits the reference path's
  instrumentation natively — TraceEvents at the exact cycle stamps the
  cycle engine produces, span fills handed to the shared
  ``_record_spans`` assembler, interval-sampler boundaries at the same
  loop-top clock sequence — so traces, spans, histograms, and interval
  series are equivalent to the cycle engine's (canonical-sorted
  streams byte-identical; ``tests/engines/test_observers.py`` pins
  this).  There is no cycle-loop fallback anywhere.

Schedulers never change the mechanics either: on the fast loop round
robin and greedy-then-oldest are replicated inline, and every other
policy (the CCWS family) runs through its real ``select()`` with its
memory-side hooks — ``on_l1_access``, ``on_tlb_hit`` / ``on_tlb_miss``
/ ``on_tlb_evict`` — invoked with the reference path's exact
arguments.  The page-fault *model* (demand paging) stays on the fast
path: faults surface inside the walker, which is called unchanged.
Seeded fault *injection* (shootdowns, invalidations) runs on the
observed loop with the injector consulted at the reference points, so
fault campaigns get event-speed too.
"""

from __future__ import annotations

import gc as _gc

from bisect import insort as _insort
from heapq import heapify, heappop as _heappop, heappush as _heappush
from typing import Dict, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - optional, plain path is exact
    _np = None

from repro.gpu.coalescer import CoalescedAccess, coalesce
from repro.gpu.instruction import ComputeInstruction, MemoryInstruction
from repro.gpu.scheduler.base import (
    Candidate,
    GreedyThenOldestScheduler,
    RoundRobinScheduler,
)
from repro.obs import events as _ev
from repro.obs import spans as _spans
from repro.obs import tracer as _trace
from repro.prof import profiler as _prof
from repro.vm.pte import HISTORY_LENGTH

from repro.engines.base import SimEngine

_EMPTY_ORIGINS: Dict[int, int] = {}

#: (line_bytes, page_shift) -> {id(instr): (instr, CoalescedAccess)}.
#: Module level so a sweep's cells share the work: workload builds are
#: memoized, so the same instruction objects recur run after run.
#: Values hold the instruction itself, so an id() can never alias.
_COAL_CACHES: Dict[Tuple[int, int], Dict[int, tuple]] = {}

#: Entry cap across all geometries; TBC's dynamically formed warps can
#: mint fresh instructions every run, and a long-lived server must not
#: grow without bound.  Eviction is a full clear — rebuilding is cheap.
_COAL_CACHE_LIMIT = 250_000

#: Scheduler types whose memory-side hooks are base-class no-ops and
#: whose select() is replicated inline below.  Every other policy runs
#: through its real select() and gets its hooks called (hooked path).
_FAST_SCHEDULERS = (RoundRobinScheduler, GreedyThenOldestScheduler)


def _build_fast_access(core):
    """Build the per-line memory access function for one run.

    An inline replica of CoreMemory.access → SharedMemory → DRAM with
    every hot object captured in closure cells — per call this costs
    only the state transitions themselves, no method dispatch and no
    hot-state unpacking.  MSHR expiry runs the file's lazy-deletion
    heap walk inline (tracing is off on the fast path by eligibility),
    and a full file takes its exact earliest fill time from the first
    *live* heap entry instead of scanning all in-flight values.
    """
    mem = core.memory
    l1 = mem.l1
    l1_sets = l1._sets
    l1_shift = l1._line_shift
    l1_mask = l1._set_mask
    l1_assoc = l1.associativity
    l1_latency = mem.l1_latency
    mshrs = mem.mshrs
    inflight = mshrs._inflight
    heap = mshrs._heap
    mshr_capacity = mshrs.capacity
    shm = mem.shared
    banks = shm.l2_banks
    first_bank = banks[0]
    bank_shift = first_bank._line_shift
    bank_mask = first_bank._set_mask
    bank_assoc = first_bank.associativity
    bank_busy = shm._bank_busy_until
    icn_latency = shm.interconnect_latency
    l2_interval = shm.l2_service_interval
    l2_latency = shm.l2_latency
    channels = shm.dram.channels
    num_channels = shm.dram.num_channels
    dram_line = shm.dram.line_bytes
    never = float("inf")

    def fast_access(paddr, start, warp_id):
        index = (paddr >> l1_shift) & l1_mask
        cache_set = l1_sets.get(index)
        if cache_set is None:
            cache_set = l1_sets[index] = {}
        if paddr in cache_set:
            l1.hits += 1
            cache_set[paddr] = cache_set.pop(paddr)  # move to MRU
            mem.l1_hits += 1
            return start + l1_latency
        l1.misses += 1
        if len(cache_set) >= l1_assoc:
            del cache_set[next(iter(cache_set))]
        cache_set[paddr] = warp_id
        mem.l1_misses += 1
        if start >= mshrs._min_ready:
            while heap and heap[0][0] <= start:
                ready, line = _heappop(heap)
                if inflight.get(line) == ready:
                    del inflight[line]
            mshrs._min_ready = heap[0][0] if heap else never
        merge_ready = inflight.get(paddr)
        if merge_ready is not None:
            mshrs.merges += 1
            ready = merge_ready if merge_ready > start else start + l1_latency
            mem.total_miss_latency += ready - start
            return ready
        if len(inflight) < mshr_capacity:
            slot_free = start
        else:
            mshrs.stalls += 1
            # Exact earliest fill among live entries: the heap top,
            # after discarding stale (lazily deleted) entries.
            while True:
                ready0, line0 = heap[0]
                if inflight.get(line0) == ready0:
                    slot_free = ready0
                    break
                _heappop(heap)
        # Shared levels: interconnect, L2 bank port, bank lookup, DRAM.
        channel = (paddr // dram_line) % num_channels
        arrive = start + icn_latency
        busy = bank_busy[channel]
        service_start = arrive if arrive > busy else busy
        bank_busy[channel] = service_start + l2_interval
        bank = banks[channel]
        bank_index = (paddr >> bank_shift) & bank_mask
        bank_sets = bank._sets
        bank_set = bank_sets.get(bank_index)
        if bank_set is None:
            bank_set = bank_sets[bank_index] = {}
        if paddr in bank_set:
            bank.hits += 1
            bank_set[paddr] = bank_set.pop(paddr)
            shm.l2_hits += 1
            shared_ready = service_start + l2_latency
        else:
            bank.misses += 1
            if len(bank_set) >= bank_assoc:
                del bank_set[next(iter(bank_set))]
            bank_set[paddr] = None
            shm.l2_misses += 1
            dram_channel = channels[channel]
            dram_now = service_start + l2_latency
            dram_busy = dram_channel.busy_until
            dram_start = dram_now if dram_now >= dram_busy else dram_busy
            dram_channel.total_queue_delay += dram_start - dram_now
            dram_channel.busy_until = dram_start + dram_channel.service_interval
            dram_channel.requests += 1
            shared_ready = dram_start + dram_channel.access_latency + icn_latency
        ready = slot_free + l1_latency
        if shared_ready > ready:
            ready = shared_ready
        if slot_free >= mshrs._min_ready:
            while heap and heap[0][0] <= slot_free:
                ready0, line0 = _heappop(heap)
                if inflight.get(line0) == ready0:
                    del inflight[line0]
            mshrs._min_ready = heap[0][0] if heap else never
        inflight[paddr] = ready
        _heappush(heap, (ready, paddr))
        if ready < mshrs._min_ready:
            mshrs._min_ready = ready
        mshrs.allocations += 1
        mem.total_miss_latency += ready - start
        return ready

    return fast_access


def _build_observed_access(core):
    """Build the traced per-line memory access function for one run.

    The same inline hierarchy replica as :func:`_build_fast_access` —
    every hot object captured in closure cells — plus the hierarchy's
    trace emissions and the reference return shape ``(ready, level,
    evicted_line, evicted_warp)``, where ``level`` is the satisfying
    level exactly as :class:`~repro.mem.hierarchy.MemAccessResult`
    reports it (``"l1"``, ``"l1-mshr"``, ``"l2"``, ``"dram"``) — the
    span assembler's fill components and the scheduler's hit flag both
    key off it.  MSHR expiry runs the file's real ``_expire`` so traced
    runs retire entries in insertion order with MSHR_RETIRE stamped at
    each entry's fill time, exactly as the reference path does.
    """
    mem = core.memory
    l1 = mem.l1
    l1_label = l1.label
    l1_sets = l1._sets
    l1_shift = l1._line_shift
    l1_mask = l1._set_mask
    l1_assoc = l1.associativity
    l1_latency = mem.l1_latency
    mshrs = mem.mshrs
    expire = mshrs._expire
    inflight = mshrs._inflight
    heap = mshrs._heap
    mshr_capacity = mshrs.capacity
    shm = mem.shared
    banks = shm.l2_banks
    bank_labels = [bank.label for bank in banks]
    first_bank = banks[0]
    bank_shift = first_bank._line_shift
    bank_mask = first_bank._set_mask
    bank_assoc = first_bank.associativity
    bank_busy = shm._bank_busy_until
    icn_latency = shm.interconnect_latency
    l2_interval = shm.l2_service_interval
    l2_latency = shm.l2_latency
    channels = shm.dram.channels
    num_channels = shm.dram.num_channels
    dram_line = shm.dram.line_bytes
    dram_tracks = [f"dram-ch{i}" for i in range(num_channels)]

    def observed_access(paddr, start, warp_id):
        traced = _trace.ENABLED
        if traced:
            record = _trace.RECORD
            ev_now = _trace.NOW
            ev_core = _trace.CORE
        index = (paddr >> l1_shift) & l1_mask
        cache_set = l1_sets.get(index)
        if cache_set is None:
            cache_set = l1_sets[index] = {}
        if paddr in cache_set:
            l1.hits += 1
            cache_set[paddr] = cache_set.pop(paddr)  # move to MRU
            if traced:
                record(
                    (
                        _ev.CACHE_ACCESS,
                        ev_now,
                        ev_core,
                        l1_label,
                        None,
                        {"line": paddr, "hit": True, "warp": warp_id},
                    )
                )
            mem.l1_hits += 1
            return start + l1_latency, "l1", None, None
        l1.misses += 1
        ev_line = ev_warp = None
        if len(cache_set) >= l1_assoc:
            ev_line = next(iter(cache_set))
            ev_warp = cache_set.pop(ev_line)
        cache_set[paddr] = warp_id
        if traced:
            record(
                (
                    _ev.CACHE_ACCESS,
                    ev_now,
                    ev_core,
                    l1_label,
                    None,
                    {
                        "line": paddr,
                        "hit": False,
                        "warp": warp_id,
                        "evicted": ev_line,
                    },
                )
            )
        mem.l1_misses += 1
        if start >= mshrs._min_ready:
            expire(start)
        merge_ready = inflight.get(paddr)
        if merge_ready is not None:
            mshrs.merges += 1
            if traced:
                record(
                    (
                        _ev.MSHR_MERGE,
                        start,
                        ev_core,
                        "mshr",
                        None,
                        {"line": paddr, "ready": merge_ready},
                    )
                )
            ready = merge_ready if merge_ready > start else start + l1_latency
            mem.total_miss_latency += ready - start
            return ready, "l1-mshr", ev_line, ev_warp
        if len(inflight) < mshr_capacity:
            slot_free = start
        else:
            mshrs.stalls += 1
            # Exact earliest fill among live entries: the heap top,
            # after discarding stale (lazily deleted) entries.
            while True:
                ready0, line0 = heap[0]
                if inflight.get(line0) == ready0:
                    slot_free = ready0
                    break
                _heappop(heap)
        channel = (paddr // dram_line) % num_channels
        arrive = start + icn_latency
        busy = bank_busy[channel]
        service_start = arrive if arrive > busy else busy
        bank_busy[channel] = service_start + l2_interval
        bank = banks[channel]
        bank_index = (paddr >> bank_shift) & bank_mask
        bank_sets = bank._sets
        bank_set = bank_sets.get(bank_index)
        if bank_set is None:
            bank_set = bank_sets[bank_index] = {}
        if paddr in bank_set:
            bank.hits += 1
            bank_set[paddr] = bank_set.pop(paddr)
            if traced:
                record(
                    (
                        _ev.CACHE_ACCESS,
                        ev_now,
                        ev_core,
                        bank_labels[channel],
                        None,
                        {"line": paddr, "hit": True, "warp": None},
                    )
                )
            shm.l2_hits += 1
            shared_ready = service_start + l2_latency
            level = "l2"
        else:
            bank.misses += 1
            bank_evicted = None
            if len(bank_set) >= bank_assoc:
                bank_evicted = next(iter(bank_set))
                del bank_set[bank_evicted]
            bank_set[paddr] = None
            if traced:
                record(
                    (
                        _ev.CACHE_ACCESS,
                        ev_now,
                        ev_core,
                        bank_labels[channel],
                        None,
                        {
                            "line": paddr,
                            "hit": False,
                            "warp": None,
                            "evicted": bank_evicted,
                        },
                    )
                )
            shm.l2_misses += 1
            dram_channel = channels[channel]
            dram_now = service_start + l2_latency
            dram_busy = dram_channel.busy_until
            dram_start = dram_now if dram_now >= dram_busy else dram_busy
            dram_channel.total_queue_delay += dram_start - dram_now
            dram_channel.busy_until = dram_start + dram_channel.service_interval
            dram_channel.requests += 1
            if traced:
                record(
                    (
                        _ev.DRAM_ACCESS,
                        dram_start,
                        ev_core,
                        dram_tracks[channel],
                        dram_channel.access_latency,
                        {"line": paddr, "queued": dram_start - dram_now},
                    )
                )
            shared_ready = dram_start + dram_channel.access_latency + icn_latency
            level = "dram"
        ready = slot_free + l1_latency
        if shared_ready > ready:
            ready = shared_ready
        if slot_free >= mshrs._min_ready:
            expire(slot_free)
        inflight[paddr] = ready
        _heappush(heap, (ready, paddr))
        if ready < mshrs._min_ready:
            mshrs._min_ready = ready
        mshrs.allocations += 1
        if traced:
            record(
                (
                    _ev.MSHR_ALLOC,
                    slot_free,
                    ev_core,
                    "mshr",
                    None,
                    {
                        "line": paddr,
                        "ready": ready,
                        "outstanding": len(inflight),
                    },
                )
            )
        mem.total_miss_latency += ready - start
        return ready, level, ev_line, ev_warp

    return observed_access


class EventEngine(SimEngine):
    """Event-driven issue loop, byte-identical to :class:`CycleEngine`."""

    name = "event"
    FEATURES = frozenset(
        {"trace", "spans", "sampling", "profile", "snapshot"}
    )

    def __init__(self, core):
        super().__init__(core)
        self._coal = _COAL_CACHES.setdefault(
            (core.line_bytes, core.page_shift), {}
        )
        self._hot: Optional[tuple] = None
        self._tlb_hot: Optional[tuple] = None
        self._access_fn = None
        self._observed_access_fn = None

    # -- eligibility ---------------------------------------------------

    def _fast_eligible(self) -> bool:
        """Whether the emission-free fast loop can run.

        Checked per run()/step_to() entry (hooks are installed between
        runs, never mid-run), so a traced run uses the observed event
        loop and an untraced run of the same core uses the fast one —
        both event-driven, both byte-identical.
        """
        core = self.core
        if _trace.ENABLED or _spans.ENABLED:
            return False
        if core.sampler is not None or core._injector is not None:
            return False
        return self._inline_geometry_ok()

    def _inline_geometry_ok(self) -> bool:
        """Whether the inlined memory path's shift/mask math applies.

        Non-power-of-two cache geometry or heterogeneous L2 banks fall
        back to the hierarchy's real ``access`` method (still inside the
        event loop), which handles any geometry.
        """
        mem = self.core.memory
        if mem.l1._line_shift is None:
            return False
        banks = mem.shared.l2_banks
        first = banks[0]
        if first._line_shift is None:
            return False
        for bank in banks:
            if (
                bank._line_shift != first._line_shift
                or bank._set_mask != first._set_mask
                or bank.associativity != first.associativity
            ):
                return False
        return True

    # -- execution -----------------------------------------------------

    def run(self, poll=None):
        core = self.core
        if not core._run_begun:
            core.begin_run()
        # The loop allocates at a very high rate (trace tuples, span
        # fills, heap entries) but creates no reference cycles, so the
        # cyclic collector only burns time rescanning the trace ring's
        # retained window over and over.  Refcounting frees everything
        # that matters; park the collector for the bounded loop.
        was_collecting = _gc.isenabled()
        if was_collecting:
            _gc.disable()
        try:
            if self._fast_eligible():
                self._fast_loop(poll, None)
            else:
                self._observed_loop(poll, None)
        finally:
            if was_collecting:
                _gc.enable()
        return core._finalize_run()

    def step_to(self, cycle: int, poll=None) -> int:
        core = self.core
        if not core._run_begun:
            core.begin_run()
        was_collecting = _gc.isenabled()
        if was_collecting:
            _gc.disable()
        try:
            if self._fast_eligible():
                self._fast_loop(poll, cycle)
            else:
                self._observed_loop(poll, cycle)
        finally:
            if was_collecting:
                _gc.enable()
        return core._now

    # -- vectorized coalesce precompute --------------------------------

    def _precompute(self, entries) -> None:
        """Batch the address math of every memory instruction in
        ``entries`` (live-list entries; ``entry[1]`` is the trace).

        Line masking and VPN extraction run as two whole-matrix int64
        operations; per-row first-occurrence dedupe then reconstructs
        exactly what :func:`repro.gpu.coalescer.coalesce` returns.
        Rows with inactive (None) lanes, ragged widths, or addresses
        beyond int64 take the scalar coalescer — same result either way.
        """
        core = self.core
        cache = self._coal
        if len(cache) > _COAL_CACHE_LIMIT:
            cache.clear()
        line_bytes = core.line_bytes
        page_shift = core.page_shift
        todo: List[MemoryInstruction] = []
        for entry in entries:
            for instr in entry[1]:
                if instr.__class__ is ComputeInstruction:
                    continue
                key = id(instr)
                cached = cache.get(key)
                if cached is not None and cached[0] is instr:
                    continue
                todo.append(instr)
        if not todo:
            return
        sparse: List[MemoryInstruction] = []
        dense: List[MemoryInstruction] = []
        rows: List[tuple] = []
        width = None
        for instr in todo:
            addrs = instr.addresses
            if None in addrs:
                sparse.append(instr)
                continue
            if width is None:
                width = len(addrs)
            if len(addrs) != width:
                sparse.append(instr)
                continue
            dense.append(instr)
            rows.append(addrs)
        if _np is not None and dense:
            try:
                mat = _np.asarray(rows, dtype=_np.int64)
            except OverflowError:
                sparse.extend(dense)
            else:
                line_rows = (mat & ~_np.int64(line_bytes - 1)).tolist()
                vpn_rows = (mat >> page_shift).tolist()
                for instr, line_row, vpn_row in zip(dense, line_rows, vpn_rows):
                    vpns: Dict[int, None] = {}
                    by_vpn: Dict[int, Dict[int, None]] = {}
                    for line, vpn in zip(line_row, vpn_row):
                        vpns[vpn] = None
                        sub = by_vpn.get(vpn)
                        if sub is None:
                            sub = by_vpn[vpn] = {}
                        sub[line] = None
                    cache[id(instr)] = (
                        instr,
                        CoalescedAccess(
                            lines=tuple(dict.fromkeys(line_row)),
                            vpns=tuple(vpns),
                            lines_by_vpn={
                                vpn: tuple(sub) for vpn, sub in by_vpn.items()
                            },
                        ),
                    )
        else:
            sparse.extend(dense)
        for instr in sparse:
            cache[id(instr)] = (
                instr,
                coalesce(instr.addresses, line_bytes, page_shift),
            )

    # -- the fast loop -------------------------------------------------

    def _fast_loop(self, poll, stop_at) -> bool:
        """Event-driven replay of the reference loop's decisions."""
        core = self.core
        watchdog = core._watchdog
        cfg = core.config
        blocking = cfg.tlb.enabled and cfg.tlb.blocking
        warmup_budget = core._warmup_budget
        now = core._now
        finish = core._finish
        issued_total = core._issued_total
        measuring = core._measuring
        stats = core.stats
        events = self._events
        sched = core.scheduler
        fast_sched = type(sched) in _FAST_SCHEDULERS
        rr = type(sched) is RoundRobinScheduler
        num_warps = sched.num_warps
        warps = core.warps
        issue_memory = (
            self._fast_issue_memory if fast_sched else self._hooked_issue_memory
        )

        mem = core.memory
        shm = mem.shared
        first_bank = shm.l2_banks[0]
        self._hot = (
            mem.l1,
            mem.l1._sets,
            mem.l1._line_shift,
            mem.l1._set_mask,
            mem.l1.associativity,
            mem.l1_latency,
            mem,
            mem.mshrs,
            shm,
            shm.l2_banks,
            first_bank._line_shift,
            first_bank._set_mask,
            first_bank.associativity,
            shm._bank_busy_until,
            shm.interconnect_latency,
            shm.l2_service_interval,
            shm.l2_latency,
            shm.dram.channels,
            shm.dram.num_channels,
            shm.dram.line_bytes,
        )
        self._tlb_hot = (
            cfg.tlb.ports,
            core.tlb_extra_latency,
            blocking,
            cfg.tlb.cache_overlap,
        )
        self._access_fn = _build_fast_access(core)
        cand_cache: Dict[int, Candidate] = {}

        # Live entries are (warp, instructions, warp_id, n_instrs),
        # split by readiness: ``ready_entries`` holds (seq, entry)
        # pairs for warps whose ready_at has passed (scanned for
        # candidates each iteration), ``wait_heap`` holds the rest as
        # (ready_at, seq, entry) keyed by ready_at (drained as the
        # clock advances).  ``seq`` is the entry's creation rank, which
        # equals its warp's position in core.warps (warps only ever
        # append), and ready_entries stays sorted by it — so candidate
        # order is exactly the reference loop's live order.  That
        # ordering is load-bearing: TBC compaction can field two live
        # warps with the SAME hardware warp_id, and every stock policy
        # breaks such ties by candidate-list position.
        ready_entries: List[tuple] = []
        wait_heap: List[tuple] = []
        seq = 0
        live: List[tuple] = []
        for w in warps:
            instrs = w.trace.instructions
            if w.pc < len(instrs):
                live.append((w, instrs, w.trace.warp_id, len(instrs)))
        self._precompute(live)
        for entry in live:
            ready_at = entry[0].ready_at
            if ready_at > now:
                wait_heap.append((ready_at, seq, entry))
            else:
                ready_entries.append((seq, entry))
            seq += 1
        if wait_heap:
            heapify(wait_heap)

        while True:
            if stop_at is not None and now >= stop_at:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                return False
            if events and events[0][0] <= now:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                self._dispatch_events(now)
                # A callback may have launched warps or changed ready
                # times: rebuild the readiness split from the cores.
                warps = core.warps
                rebuilt: List[tuple] = []
                for w in warps:
                    instrs = w.trace.instructions
                    if w.pc < len(instrs):
                        rebuilt.append((w, instrs, w.trace.warp_id, len(instrs)))
                self._precompute(rebuilt)
                ready_entries = []
                wait_heap = []
                seq = 0
                for entry in rebuilt:
                    ready_at = entry[0].ready_at
                    if ready_at > now:
                        wait_heap.append((ready_at, seq, entry))
                    else:
                        ready_entries.append((seq, entry))
                    seq += 1
                if wait_heap:
                    heapify(wait_heap)
            if poll is not None:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                poll(core)
            while wait_heap and wait_heap[0][0] <= now:
                item = _heappop(wait_heap)
                _insort(ready_entries, (item[1], item[2]))
            chosen = None
            if not ready_entries:
                if not wait_heap:
                    break
                min_wait = wait_heap[0][0]
                cands: Optional[List[tuple]] = None
            else:
                min_wait = wait_heap[0][0] if wait_heap else -1
                tbu = core.tlb_blocked_until
                gate = blocking and now < tbu
                cands = None
                if fast_sched and not gate:
                    # Direct selection over the ready set: no candidate
                    # list and no instruction fetch until the winner is
                    # known — every live entry has a next instruction,
                    # and with the TLB gate inactive all of them
                    # compete, so the candidate set IS ready_entries.
                    if len(ready_entries) == 1:
                        ready_idx = 0
                        entry = ready_entries[0][1]
                        chosen_id = entry[2]
                        if rr:
                            sched._next = (chosen_id + 1) % num_warps
                        else:
                            sched._current = chosen_id
                            sched._last_issue[chosen_id] = now
                    elif rr:
                        # min() by round-robin distance over the
                        # live-ordered ready list; a strict-< scan
                        # matches min()'s first-of-equals tie-break
                        # (TBC can duplicate warp ids, hence distances).
                        nxt = sched._next
                        best_key = num_warps
                        ready_idx = 0
                        idx = 0
                        for pair in ready_entries:
                            key = (pair[1][2] - nxt) % num_warps
                            if key < best_key:
                                best_key = key
                                ready_idx = idx
                            idx += 1
                        entry = ready_entries[ready_idx][1]
                        chosen_id = entry[2]
                        sched._next = (chosen_id + 1) % num_warps
                    else:
                        current = sched._current
                        ready_idx = -1
                        idx = 0
                        for pair in ready_entries:
                            if pair[1][2] == current:
                                ready_idx = idx
                                break
                            idx += 1
                        if ready_idx < 0:
                            # Oldest-first over the deduped id set,
                            # exactly the reference scheduler's min();
                            # the issued warp is the first live-order
                            # holder of the chosen id, matching the
                            # reference loop's next() scan.
                            by_id = set()
                            index = {}
                            idx = 0
                            for pair in ready_entries:
                                warp_id = pair[1][2]
                                if warp_id not in index:
                                    by_id.add(warp_id)
                                    index[warp_id] = idx
                                idx += 1
                            chosen_id = min(
                                by_id, key=sched._last_issue.__getitem__
                            )
                            ready_idx = index[chosen_id]
                            sched._current = chosen_id
                        else:
                            chosen_id = current
                        entry = ready_entries[ready_idx][1]
                        sched._last_issue[chosen_id] = now
                    entry_seq = ready_entries[ready_idx][0]
                    del ready_entries[ready_idx]
                    instr = entry[1][entry[0].pc]
                    chosen = True  # entry/instr already bound
                else:
                    for idx, pair in enumerate(ready_entries):
                        entry = pair[1]
                        instr = entry[1][entry[0].pc]
                        if gate and instr.__class__ is not ComputeInstruction:
                            continue
                        if cands is None:
                            cands = [(entry, instr, idx)]
                        else:
                            cands.append((entry, instr, idx))
            if chosen is None and cands is None:
                tbu = core.tlb_blocked_until
                # Nothing can issue: jump to the next event.  Identical
                # accounting to the reference loop's stall branch (which
                # reaches this state with blocked_only always True).
                if watchdog is not None:
                    watchdog.check(now, core._hang_diagnostics)
                if _prof.ENABLED:
                    _prof.begin(_prof.PHASE_EVENT_SKIP)
                tlb_blocked = blocking and tbu > now
                if tlb_blocked:
                    if min_wait < 0 or tbu < min_wait:
                        next_event = tbu
                    else:
                        next_event = min_wait
                    stats.tlb_blocked_wait_cycles += (
                        next_event if next_event < tbu else tbu
                    ) - now
                elif min_wait >= 0:
                    next_event = min_wait
                else:
                    next_event = now + 1
                stats.idle_cycles += next_event - now
                if _prof.ENABLED:
                    _prof.end()
                now = next_event
                continue
            if chosen is None:
                if not fast_sched:
                    # Stateful policy (CCWS family): run the real
                    # select() with the reference loop's exact candidate
                    # list and in-flight flag; it may throttle (return
                    # None).  Candidate is frozen, so per-(warp,
                    # is_memory) instances are built once and reused.
                    if _prof.ENABLED:
                        _prof.begin(_prof.PHASE_WARP_SCHED)
                    cand_list = []
                    for c in cands:
                        warp_id = c[0][2]
                        key = (warp_id << 1) | isinstance(
                            c[1], MemoryInstruction
                        )
                        cand = cand_cache.get(key)
                        if cand is None:
                            cand = cand_cache[key] = Candidate(
                                warp_id, bool(key & 1)
                            )
                        cand_list.append(cand)
                    chosen_id = sched.select(cand_list, now, min_wait >= 0)
                    if _prof.ENABLED:
                        _prof.end()
                    if chosen_id is None:
                        if watchdog is not None:
                            watchdog.check(now, core._hang_diagnostics)
                        next_event = min_wait if min_wait >= 0 else now + 1
                        stats.idle_cycles += next_event - now
                        now = next_event
                        continue
                    chosen = None
                    for cand in cands:
                        if cand[0][2] == chosen_id:
                            chosen = cand
                            break
                    if chosen is None:  # matches the reference's next() raise
                        raise LookupError(
                            f"scheduler chose non-candidate {chosen_id}"
                        )
                # Inline scheduler select (fast policies, gate active).
                elif len(cands) == 1:
                    chosen = cands[0]
                    chosen_id = chosen[0][2]
                    if rr:
                        sched._next = (chosen_id + 1) % num_warps
                    else:
                        sched._current = chosen_id
                        sched._last_issue[chosen_id] = now
                elif rr:
                    # min() by round-robin distance; warp ids are
                    # unique, so distances are unique and a strict-<
                    # scan matches min().
                    nxt = sched._next
                    best_key = num_warps
                    chosen = cands[0]
                    for cand in cands:
                        key = (cand[0][2] - nxt) % num_warps
                        if key < best_key:
                            best_key = key
                            chosen = cand
                    chosen_id = chosen[0][2]
                    sched._next = (chosen_id + 1) % num_warps
                else:
                    current = sched._current
                    chosen = None
                    for cand in cands:
                        if cand[0][2] == current:
                            chosen = cand
                            chosen_id = current
                            break
                    if chosen is None:
                        # Oldest-first over the deduped id set, exactly
                        # the reference scheduler's min(); first
                        # live-order holder of the id wins (TBC can
                        # duplicate warp ids).
                        by_id = set()
                        index = {}
                        for cand in cands:
                            warp_id = cand[0][2]
                            if warp_id not in index:
                                by_id.add(warp_id)
                                index[warp_id] = cand
                        chosen_id = min(by_id, key=sched._last_issue.__getitem__)
                        chosen = index[chosen_id]
                        sched._current = chosen_id
                    sched._last_issue[chosen_id] = now
                entry, instr, ready_idx = chosen
                entry_seq = ready_entries[ready_idx][0]
                del ready_entries[ready_idx]
            warp = entry[0]
            if instr.__class__ is ComputeInstruction:
                latency = instr.latency
                warp.ready_at = now + latency
                stats.scalar_instructions += latency
                advance = latency
            else:
                warp.ready_at = issue_memory(warp, instr, now, entry[2], stats)
                stats.memory_instructions += 1
                stats.scalar_instructions += 1
                advance = 1
            stats.instructions += 1
            if watchdog is not None:
                watchdog.last_progress = now
            warp.issued += 1
            warp.pc += 1
            if warp.ready_at > finish:
                finish = warp.ready_at
            if warp.pc >= entry[3]:
                before = len(warps)
                core._warp_retired(warp, now)
                if len(warps) > before:
                    fresh = []
                    for new_warp in warps[before:]:
                        instrs = new_warp.trace.instructions
                        if new_warp.pc < len(instrs):
                            fresh.append(
                                (
                                    new_warp,
                                    instrs,
                                    new_warp.trace.warp_id,
                                    len(instrs),
                                )
                            )
                    self._precompute(fresh)
                    for new_entry in fresh:
                        ready_at = new_entry[0].ready_at
                        if ready_at > now:
                            _heappush(wait_heap, (ready_at, seq, new_entry))
                        else:
                            _insort(ready_entries, (seq, new_entry))
                        seq += 1
            else:
                ready_at = warp.ready_at
                if ready_at > now:
                    _heappush(wait_heap, (ready_at, entry_seq, entry))
                else:
                    _insort(ready_entries, (entry_seq, entry))
            now += advance
            issued_total += 1
            if not measuring and issued_total >= warmup_budget:
                measuring = True
                core._begin_measurement(now)
                stats = core.stats  # _begin_measurement replaces it
        core._now = now
        core._finish = finish
        core._issued_total = issued_total
        core._measuring = measuring
        return True

    # -- the observed loop ---------------------------------------------

    def _observed_loop(self, poll, stop_at) -> bool:
        """The event loop with the reference path's instrumentation.

        Identical event-driven mechanics to :meth:`_fast_loop` — ready
        list + wait heap, next-event clock jumps, the same inline
        scheduler selections — with every observer the cycle engine
        serves emitted natively at the same stamps.  The loop-top
        clock sequence is exactly the reference loop's (every
        iteration either issues or jumps, 1:1), so the trace context
        (``_trace.NOW``/``CORE``) and the interval sampler see the
        identical cycle visits; WARP_STALL pairs fire on idle jumps,
        SCHEDULER_DECISION after every selection (inline or real), and
        the memory path's per-event emissions come from
        :meth:`_observed_issue_memory` (or, for cache geometries the
        inline shift/mask math can't index, the core's real
        ``_issue_memory`` — still inside this loop).  Stateful
        policies (the CCWS family) run through their real ``select()``
        with the reference loop's exact candidate list, so their
        memory-side hooks and throttling behave exactly as on the
        reference path.
        """
        core = self.core
        watchdog = core._watchdog
        cfg = core.config
        blocking = cfg.tlb.enabled and cfg.tlb.blocking
        warmup_budget = core._warmup_budget
        now = core._now
        finish = core._finish
        issued_total = core._issued_total
        measuring = core._measuring
        stats = core.stats
        events = self._events
        sched = core.scheduler
        fast_sched = type(sched) in _FAST_SCHEDULERS
        rr = type(sched) is RoundRobinScheduler
        num_warps = sched.num_warps
        policy = cfg.scheduler.kind
        core_id = core.core_id
        sampler = core.sampler
        warps = core.warps

        if self._inline_geometry_ok():
            mem = core.memory
            shm = mem.shared
            first_bank = shm.l2_banks[0]
            self._hot = (
                mem.l1,
                mem.l1._sets,
                mem.l1._line_shift,
                mem.l1._set_mask,
                mem.l1.associativity,
                mem.l1_latency,
                mem,
                mem.mshrs,
                shm,
                shm.l2_banks,
                first_bank._line_shift,
                first_bank._set_mask,
                first_bank.associativity,
                shm._bank_busy_until,
                shm.interconnect_latency,
                shm.l2_service_interval,
                shm.l2_latency,
                shm.dram.channels,
                shm.dram.num_channels,
                shm.dram.line_bytes,
            )
            self._tlb_hot = (
                cfg.tlb.ports,
                core.tlb_extra_latency,
                blocking,
                cfg.tlb.cache_overlap,
            )
            self._observed_access_fn = _build_observed_access(core)
            issue_memory = self._observed_issue_memory
        else:

            def issue_memory(warp, instr, at, warp_id, stats):
                return core._issue_memory(warp, instr, at)

        cand_cache: Dict[int, Candidate] = {}

        ready_entries: List[tuple] = []
        wait_heap: List[tuple] = []
        seq = 0
        live: List[tuple] = []
        for w in warps:
            instrs = w.trace.instructions
            if w.pc < len(instrs):
                live.append((w, instrs, w.trace.warp_id, len(instrs)))
        self._precompute(live)
        for entry in live:
            ready_at = entry[0].ready_at
            if ready_at > now:
                wait_heap.append((ready_at, seq, entry))
            else:
                ready_entries.append((seq, entry))
            seq += 1
        if wait_heap:
            heapify(wait_heap)

        while True:
            if stop_at is not None and now >= stop_at:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                return False
            if events and events[0][0] <= now:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                self._dispatch_events(now)
                warps = core.warps
                rebuilt: List[tuple] = []
                for w in warps:
                    instrs = w.trace.instructions
                    if w.pc < len(instrs):
                        rebuilt.append((w, instrs, w.trace.warp_id, len(instrs)))
                self._precompute(rebuilt)
                ready_entries = []
                wait_heap = []
                seq = 0
                for entry in rebuilt:
                    ready_at = entry[0].ready_at
                    if ready_at > now:
                        wait_heap.append((ready_at, seq, entry))
                    else:
                        ready_entries.append((seq, entry))
                    seq += 1
                if wait_heap:
                    heapify(wait_heap)
            if poll is not None:
                core._now = now
                core._finish = finish
                core._issued_total = issued_total
                core._measuring = measuring
                poll(core)
            if _trace.ENABLED:
                _trace.CORE = core_id
                _trace.NOW = now
            if sampler is not None and now >= sampler._next:
                sampler.maybe_sample(now, core.stats)
            while wait_heap and wait_heap[0][0] <= now:
                item = _heappop(wait_heap)
                _insort(ready_entries, (item[1], item[2]))
            chosen = None
            chosen_id = None
            n_cands = 0
            if not ready_entries:
                if not wait_heap:
                    break
                min_wait = wait_heap[0][0]
                cands: Optional[List[tuple]] = None
            else:
                min_wait = wait_heap[0][0] if wait_heap else -1
                tbu = core.tlb_blocked_until
                gate = blocking and now < tbu
                cands = None
                if fast_sched and not gate:
                    # Direct selection over the ready set, exactly the
                    # fast loop's: with the TLB gate inactive every
                    # ready entry competes, so the reference loop's
                    # candidate count IS len(ready_entries).
                    n_cands = len(ready_entries)
                    if n_cands == 1:
                        ready_idx = 0
                        entry = ready_entries[0][1]
                        chosen_id = entry[2]
                        if rr:
                            sched._next = (chosen_id + 1) % num_warps
                        else:
                            sched._current = chosen_id
                            sched._last_issue[chosen_id] = now
                    elif rr:
                        nxt = sched._next
                        best_key = num_warps
                        ready_idx = 0
                        idx = 0
                        for pair in ready_entries:
                            key = (pair[1][2] - nxt) % num_warps
                            if key < best_key:
                                best_key = key
                                ready_idx = idx
                            idx += 1
                        entry = ready_entries[ready_idx][1]
                        chosen_id = entry[2]
                        sched._next = (chosen_id + 1) % num_warps
                    else:
                        current = sched._current
                        ready_idx = -1
                        idx = 0
                        for pair in ready_entries:
                            if pair[1][2] == current:
                                ready_idx = idx
                                break
                            idx += 1
                        if ready_idx < 0:
                            by_id = set()
                            index = {}
                            idx = 0
                            for pair in ready_entries:
                                warp_id = pair[1][2]
                                if warp_id not in index:
                                    by_id.add(warp_id)
                                    index[warp_id] = idx
                                idx += 1
                            chosen_id = min(
                                by_id, key=sched._last_issue.__getitem__
                            )
                            ready_idx = index[chosen_id]
                            sched._current = chosen_id
                        else:
                            chosen_id = current
                        entry = ready_entries[ready_idx][1]
                        sched._last_issue[chosen_id] = now
                    entry_seq = ready_entries[ready_idx][0]
                    del ready_entries[ready_idx]
                    instr = entry[1][entry[0].pc]
                    chosen = True  # entry/instr already bound
                else:
                    for idx, pair in enumerate(ready_entries):
                        entry = pair[1]
                        instr = entry[1][entry[0].pc]
                        if gate and instr.__class__ is not ComputeInstruction:
                            continue
                        if cands is None:
                            cands = [(entry, instr, idx)]
                        else:
                            cands.append((entry, instr, idx))
            if chosen is None and cands is None:
                # Nothing can issue: jump to the next event.  Identical
                # accounting to the reference loop's stall branch (which
                # reaches this state with blocked_only always True).
                tbu = core.tlb_blocked_until
                if watchdog is not None:
                    watchdog.check(now, core._hang_diagnostics)
                if _prof.ENABLED:
                    _prof.begin(_prof.PHASE_EVENT_SKIP)
                tlb_blocked = blocking and tbu > now
                if tlb_blocked:
                    if min_wait < 0 or tbu < min_wait:
                        next_event = tbu
                    else:
                        next_event = min_wait
                    stats.tlb_blocked_wait_cycles += (
                        next_event if next_event < tbu else tbu
                    ) - now
                elif min_wait >= 0:
                    next_event = min_wait
                else:
                    next_event = now + 1
                stats.idle_cycles += next_event - now
                if _trace.ENABLED:
                    core._stall_seq += 1
                    record = _trace.RECORD
                    record(
                        (
                            _ev.WARP_STALL_BEGIN,
                            now,
                            core_id,
                            "core",
                            None,
                            {
                                "id": core._stall_seq,
                                "reason": (
                                    "tlb_blocked" if tlb_blocked else "memory"
                                ),
                                "live": len(ready_entries) + len(wait_heap),
                            },
                        )
                    )
                    record(
                        (
                            _ev.WARP_STALL_END,
                            next_event,
                            core_id,
                            "core",
                            None,
                            {"id": core._stall_seq},
                        )
                    )
                if _prof.ENABLED:
                    _prof.end()
                now = next_event
                continue
            if chosen is None:
                n_cands = len(cands)
                if not fast_sched:
                    # Stateful policy (CCWS family): run the real
                    # select() with the reference loop's exact candidate
                    # list and in-flight flag; it may throttle (return
                    # None).  Candidate is frozen, so per-(warp,
                    # is_memory) instances are built once and reused.
                    if _prof.ENABLED:
                        _prof.begin(_prof.PHASE_WARP_SCHED)
                    cand_list = []
                    for c in cands:
                        warp_id = c[0][2]
                        key = (warp_id << 1) | isinstance(
                            c[1], MemoryInstruction
                        )
                        cand = cand_cache.get(key)
                        if cand is None:
                            cand = cand_cache[key] = Candidate(
                                warp_id, bool(key & 1)
                            )
                        cand_list.append(cand)
                    chosen_id = sched.select(cand_list, now, min_wait >= 0)
                    if _prof.ENABLED:
                        _prof.end()
                    if _trace.ENABLED:
                        _trace.RECORD(
                            (
                                _ev.SCHEDULER_DECISION,
                                now,
                                core_id,
                                "sched",
                                None,
                                {
                                    "policy": policy,
                                    "chosen": chosen_id,
                                    "candidates": n_cands,
                                },
                            )
                        )
                    if chosen_id is None:
                        if watchdog is not None:
                            watchdog.check(now, core._hang_diagnostics)
                        next_event = min_wait if min_wait >= 0 else now + 1
                        stats.idle_cycles += next_event - now
                        if _trace.ENABLED:
                            core._stall_seq += 1
                            record = _trace.RECORD
                            record(
                                (
                                    _ev.WARP_STALL_BEGIN,
                                    now,
                                    core_id,
                                    "core",
                                    None,
                                    {
                                        "id": core._stall_seq,
                                        "reason": "throttled",
                                        "live": len(ready_entries)
                                        + len(wait_heap),
                                    },
                                )
                            )
                            record(
                                (
                                    _ev.WARP_STALL_END,
                                    next_event,
                                    core_id,
                                    "core",
                                    None,
                                    {"id": core._stall_seq},
                                )
                            )
                        now = next_event
                        continue
                    chosen = None
                    for cand in cands:
                        if cand[0][2] == chosen_id:
                            chosen = cand
                            break
                    if chosen is None:  # matches the reference's next() raise
                        raise LookupError(
                            f"scheduler chose non-candidate {chosen_id}"
                        )
                # Inline scheduler select (fast policies, gate active).
                elif n_cands == 1:
                    chosen = cands[0]
                    chosen_id = chosen[0][2]
                    if rr:
                        sched._next = (chosen_id + 1) % num_warps
                    else:
                        sched._current = chosen_id
                        sched._last_issue[chosen_id] = now
                elif rr:
                    nxt = sched._next
                    best_key = num_warps
                    chosen = cands[0]
                    for cand in cands:
                        key = (cand[0][2] - nxt) % num_warps
                        if key < best_key:
                            best_key = key
                            chosen = cand
                    chosen_id = chosen[0][2]
                    sched._next = (chosen_id + 1) % num_warps
                else:
                    current = sched._current
                    chosen = None
                    for cand in cands:
                        if cand[0][2] == current:
                            chosen = cand
                            chosen_id = current
                            break
                    if chosen is None:
                        by_id = set()
                        index = {}
                        for cand in cands:
                            warp_id = cand[0][2]
                            if warp_id not in index:
                                by_id.add(warp_id)
                                index[warp_id] = cand
                        chosen_id = min(by_id, key=sched._last_issue.__getitem__)
                        chosen = index[chosen_id]
                        sched._current = chosen_id
                    sched._last_issue[chosen_id] = now
                if fast_sched and _trace.ENABLED:
                    _trace.RECORD(
                        (
                            _ev.SCHEDULER_DECISION,
                            now,
                            core_id,
                            "sched",
                            None,
                            {
                                "policy": policy,
                                "chosen": chosen_id,
                                "candidates": n_cands,
                            },
                        )
                    )
                entry, instr, ready_idx = chosen
                entry_seq = ready_entries[ready_idx][0]
                del ready_entries[ready_idx]
            elif _trace.ENABLED:
                # Direct-selection path: the decision event the
                # reference loop emits after its select() call.
                _trace.RECORD(
                    (
                        _ev.SCHEDULER_DECISION,
                        now,
                        core_id,
                        "sched",
                        None,
                        {
                            "policy": policy,
                            "chosen": chosen_id,
                            "candidates": n_cands,
                        },
                    )
                )
            warp = entry[0]
            if instr.__class__ is ComputeInstruction:
                latency = instr.latency
                warp.ready_at = now + latency
                stats.scalar_instructions += latency
                advance = latency
            else:
                warp.ready_at = issue_memory(warp, instr, now, entry[2], stats)
                stats.memory_instructions += 1
                stats.scalar_instructions += 1
                advance = 1
            stats.instructions += 1
            if watchdog is not None:
                watchdog.last_progress = now
            warp.issued += 1
            warp.pc += 1
            if warp.ready_at > finish:
                finish = warp.ready_at
            if warp.pc >= entry[3]:
                before = len(warps)
                core._warp_retired(warp, now)
                if len(warps) > before:
                    fresh = []
                    for new_warp in warps[before:]:
                        instrs = new_warp.trace.instructions
                        if new_warp.pc < len(instrs):
                            fresh.append(
                                (
                                    new_warp,
                                    instrs,
                                    new_warp.trace.warp_id,
                                    len(instrs),
                                )
                            )
                    self._precompute(fresh)
                    for new_entry in fresh:
                        ready_at = new_entry[0].ready_at
                        if ready_at > now:
                            _heappush(wait_heap, (ready_at, seq, new_entry))
                        else:
                            _insort(ready_entries, (seq, new_entry))
                        seq += 1
            else:
                ready_at = warp.ready_at
                if ready_at > now:
                    _heappush(wait_heap, (ready_at, entry_seq, entry))
                else:
                    _insort(ready_entries, (entry_seq, entry))
            now += advance
            issued_total += 1
            if not measuring and issued_total >= warmup_budget:
                measuring = True
                core._begin_measurement(now)
                stats = core.stats  # _begin_measurement replaces it
        core._now = now
        core._finish = finish
        core._issued_total = issued_total
        core._measuring = measuring
        return True

    # -- inlined memory path -------------------------------------------

    def _fast_issue_memory(self, warp, instr, now, warp_id, stats) -> int:
        """Inline replica of ShaderCore._issue_memory (hooks elided).

        Every counter increment and every LRU / insertion-order /
        busy-window mutation happens in the exact order of the reference
        path; the scheduler's memory-side hooks and the per-event trace
        emissions are the only elisions, and eligibility guarantees both
        are no-ops.
        """
        core = self.core
        cached = self._coal.get(id(instr))
        if cached is None or cached[0] is not instr:
            cached = (
                instr,
                coalesce(instr.addresses, core.line_bytes, core.page_shift),
            )
            self._coal[id(instr)] = cached
        coal = cached[1]
        vpns = coal.vpns
        lines = coal.lines
        n_pages = len(vpns)
        stats.page_divergence_sum += n_pages
        if n_pages > stats.page_divergence_max:
            stats.page_divergence_max = n_pages
        stats.coalesced_lines += len(lines)
        page_shift = core.page_shift
        page_mask = core.page_mask
        fast_access = self._access_fn

        tlb = core.tlb
        if tlb is None:
            # No-TLB baseline: pinned physical memory, zero translation
            # cost; lines issue one per cycle.
            completion = now
            frame_map = core.frame_map
            for offset, line in enumerate(lines):
                pfn = frame_map.get(line >> page_shift)
                if pfn is not None:
                    line = (pfn << 12) + (line & page_mask)
                ready = fast_access(line, now + offset, warp_id)
                if ready > completion:
                    completion = ready
            return completion

        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_TLB)
        ports, extra_latency, tlb_blocking, cache_overlap = self._tlb_hot

        if n_pages == 1:
            # Single-page instruction (the common case for coalesced
            # streams): no translation/ready maps, one direct probe.
            # ceil(1 / ports) == 1, and with one vpn the overlap and
            # serial cache stages walk the same lines with the same
            # availability, so both collapse to one loop.
            vpn = vpns[0]
            port_busy = core.tlb_port_busy_until
            port_start = now if now > port_busy else port_busy
            core.tlb_port_busy_until = port_start + 1
            tlb_done = port_start + extra_latency + 1
            stats.tlb_lookups += 1
            cpm = core.cpm
            if cpm is not None:
                cpm.maybe_flush(now)
            tlb_set = tlb._sets.get(vpn % tlb.num_sets)
            if tlb_set is not None and vpn in tlb_set:
                tlb.hits += 1
                stats.tlb_hits += 1
                entry = tlb_set.pop(vpn)
                if instr.origins is not None:
                    history_id = core._vpn_origins(instr, vpns).get(vpn, warp_id)
                else:
                    history_id = warp_id
                history = entry.history
                prior = tuple(history) if cpm is not None else ()
                if history_id in history:
                    history.remove(history_id)
                history.insert(0, history_id)
                del history[HISTORY_LENGTH:]
                tlb_set[vpn] = entry  # move to MRU
                if cpm is not None and prior:
                    cpm.update(history_id, prior)
                pfn_base = entry.pfn << 12
                available = tlb_done
                missed = False
            else:
                tlb.misses += 1
                stats.tlb_misses += 1
                origins = (
                    core._vpn_origins(instr, vpns)
                    if instr.origins is not None
                    else _EMPTY_ORIGINS
                )
                walk_ready = core._handle_misses(warp, [vpn], tlb_done, origins)
                pfn, resolved = walk_ready[vpn]
                stats.total_tlb_miss_cycles += resolved - tlb_done
                all_ready = resolved if resolved > tlb_done else tlb_done
                if tlb_blocking and all_ready > core.tlb_blocked_until:
                    core.tlb_blocked_until = all_ready
                pfn_base = pfn << 12
                # The overlap stage uses the page's own fill time, the
                # serial stage the (clamped) barrier; identical unless
                # a walk somehow resolves before the lookup completes.
                available = resolved if cache_overlap else all_ready
                missed = True
            if _prof.ENABLED:
                _prof.end()
                _prof.begin(_prof.PHASE_CACHE)
            completion = tlb_done
            cursor = now
            for line in lines:
                cursor += 1
                ready = fast_access(pfn_base + (line & page_mask), cursor, warp_id)
                fill_start = available if available > cursor else cursor
                line_end = fill_start + ready - cursor
                if line_end > completion:
                    completion = line_end
            if _prof.ENABLED:
                _prof.end()
            if missed:
                stall = all_ready - tlb_done
                if stall > 0:
                    stats.tlb_miss_stall_cycles += stall
            return completion

        lookup_cycles = -(-n_pages // ports)  # ceil division
        port_busy = core.tlb_port_busy_until
        port_start = now if now > port_busy else port_busy
        core.tlb_port_busy_until = port_start + lookup_cycles
        tlb_done = port_start + extra_latency + lookup_cycles
        origins = (
            core._vpn_origins(instr, vpns)
            if instr.origins is not None
            else _EMPTY_ORIGINS
        )
        stats.tlb_lookups += n_pages
        cpm = core.cpm
        if cpm is not None:
            cpm.maybe_flush(now)
        translations: Dict[int, int] = {}
        page_ready: Dict[int, int] = {}
        misses: Optional[List[int]] = None
        tlb_sets = tlb._sets
        num_sets = tlb.num_sets
        for vpn in vpns:
            tlb_set = tlb_sets.get(vpn % num_sets)
            if tlb_set is None or vpn not in tlb_set:
                tlb.misses += 1
                stats.tlb_misses += 1
                if misses is None:
                    misses = [vpn]
                else:
                    misses.append(vpn)
                continue
            tlb.hits += 1
            stats.tlb_hits += 1
            entry = tlb_set.pop(vpn)
            history_id = origins.get(vpn, warp_id) if origins else warp_id
            history = entry.history
            prior = tuple(history) if cpm is not None else ()
            if history_id in history:
                history.remove(history_id)
            history.insert(0, history_id)
            del history[HISTORY_LENGTH:]
            tlb_set[vpn] = entry  # move to MRU
            if cpm is not None and prior:
                cpm.update(history_id, prior)
            translations[vpn] = entry.pfn
            page_ready[vpn] = tlb_done
        if misses is not None:
            walk_ready = core._handle_misses(warp, misses, tlb_done, origins)
            all_ready = tlb_done
            for vpn, resolved in walk_ready.items():
                pfn, ready = resolved
                translations[vpn] = pfn
                page_ready[vpn] = ready
                stats.total_tlb_miss_cycles += ready - tlb_done
                if ready > all_ready:
                    all_ready = ready
            if tlb_blocking and all_ready > core.tlb_blocked_until:
                core.tlb_blocked_until = all_ready
        else:
            all_ready = tlb_done
        if _prof.ENABLED:
            _prof.end()

        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_CACHE)
        completion = tlb_done
        cursor = now
        if cache_overlap:
            lines_by_vpn = coal.lines_by_vpn
            for vpn in vpns:
                available_at = page_ready[vpn]
                pfn_base = translations[vpn] << 12
                for line in lines_by_vpn[vpn]:
                    cursor += 1
                    ready = fast_access(
                        pfn_base + (line & page_mask), cursor, warp_id
                    )
                    fill_start = (
                        available_at if available_at > cursor else cursor
                    )
                    line_end = fill_start + ready - cursor
                    if line_end > completion:
                        completion = line_end
        else:
            for line in lines:
                pfn_base = translations[line >> page_shift] << 12
                cursor += 1
                ready = fast_access(
                    pfn_base + (line & page_mask), cursor, warp_id
                )
                fill_start = all_ready if all_ready > cursor else cursor
                line_end = fill_start + ready - cursor
                if line_end > completion:
                    completion = line_end
        if _prof.ENABLED:
            _prof.end()
        if misses is not None:
            stall = all_ready - tlb_done
            if stall > 0:
                stats.tlb_miss_stall_cycles += stall
        return completion

    # _fast_access lives in _build_fast_access below: the hot per-line
    # state lands in closure cells instead of a per-call tuple unpack.

    # -- inlined memory path, scheduler hooks active -------------------

    def _hooked_issue_memory(self, warp, instr, now, warp_id, stats) -> int:
        """:meth:`_fast_issue_memory` for stateful schedulers.

        Identical state transitions, plus the scheduler's memory-side
        hooks — ``on_l1_access`` (with L1 eviction info and the per-line
        TLB-missed flag), ``on_tlb_hit`` (with the LRU stack depth the
        reference lookup reports), ``on_tlb_miss`` — called with the
        reference path's exact arguments in the reference order.
        ``on_tlb_evict`` fires inside ``_handle_misses``'s fills, which
        run unchanged.
        """
        core = self.core
        sched = core.scheduler
        on_l1 = sched.on_l1_access
        cached = self._coal.get(id(instr))
        if cached is None or cached[0] is not instr:
            cached = (
                instr,
                coalesce(instr.addresses, core.line_bytes, core.page_shift),
            )
            self._coal[id(instr)] = cached
        coal = cached[1]
        vpns = coal.vpns
        lines = coal.lines
        n_pages = len(vpns)
        stats.page_divergence_sum += n_pages
        if n_pages > stats.page_divergence_max:
            stats.page_divergence_max = n_pages
        stats.coalesced_lines += len(lines)
        page_shift = core.page_shift
        page_mask = core.page_mask
        access = self._hooked_access

        tlb = core.tlb
        if tlb is None:
            completion = now
            frame_map = core.frame_map
            for offset, line in enumerate(lines):
                pfn = frame_map.get(line >> page_shift)
                if pfn is not None:
                    line = (pfn << 12) + (line & page_mask)
                ready, hit, ev_line, ev_warp = access(line, now + offset, warp_id)
                on_l1(warp_id, line, hit, False, ev_line, ev_warp)
                if ready > completion:
                    completion = ready
            return completion

        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_TLB)
        ports, extra_latency, tlb_blocking, cache_overlap = self._tlb_hot
        lookup_cycles = -(-n_pages // ports)  # ceil division
        port_busy = core.tlb_port_busy_until
        port_start = now if now > port_busy else port_busy
        core.tlb_port_busy_until = port_start + lookup_cycles
        tlb_done = port_start + extra_latency + lookup_cycles
        origins = (
            core._vpn_origins(instr, vpns)
            if instr.origins is not None
            else _EMPTY_ORIGINS
        )
        stats.tlb_lookups += n_pages
        cpm = core.cpm
        if cpm is not None:
            cpm.maybe_flush(now)
        translations: Dict[int, int] = {}
        page_ready: Dict[int, int] = {}
        misses: Optional[List[int]] = None
        tlb_sets = tlb._sets
        num_sets = tlb.num_sets
        for vpn in vpns:
            tlb_set = tlb_sets.get(vpn % num_sets)
            if tlb_set is None or vpn not in tlb_set:
                tlb.misses += 1
                stats.tlb_misses += 1
                sched.on_tlb_miss(warp_id, vpn)
                if misses is None:
                    misses = [vpn]
                else:
                    misses.append(vpn)
                continue
            tlb.hits += 1
            stats.tlb_hits += 1
            # LRU stack depth from the MRU end, computed before the
            # reinsertion below disturbs the order (as the reference
            # lookup does); feeds TCWS's depth-weighted scoring.
            depth = 0
            for resident_vpn in reversed(tlb_set):
                if resident_vpn == vpn:
                    break
                depth += 1
            entry = tlb_set.pop(vpn)
            history_id = origins.get(vpn, warp_id) if origins else warp_id
            history = entry.history
            prior = tuple(history) if cpm is not None else ()
            if history_id in history:
                history.remove(history_id)
            history.insert(0, history_id)
            del history[HISTORY_LENGTH:]
            tlb_set[vpn] = entry  # move to MRU
            sched.on_tlb_hit(warp_id, vpn, depth)
            if cpm is not None and prior:
                cpm.update(history_id, prior)
            translations[vpn] = entry.pfn
            page_ready[vpn] = tlb_done
        if misses is not None:
            walk_ready = core._handle_misses(warp, misses, tlb_done, origins)
            all_ready = tlb_done
            for vpn, resolved in walk_ready.items():
                pfn, ready = resolved
                translations[vpn] = pfn
                page_ready[vpn] = ready
                stats.total_tlb_miss_cycles += ready - tlb_done
                if ready > all_ready:
                    all_ready = ready
            if tlb_blocking and all_ready > core.tlb_blocked_until:
                core.tlb_blocked_until = all_ready
            missed = set(misses)
        else:
            all_ready = tlb_done
            missed = ()
        if _prof.ENABLED:
            _prof.end()

        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_CACHE)
        completion = tlb_done
        cursor = now
        if cache_overlap:
            lines_by_vpn = coal.lines_by_vpn
            for vpn in vpns:
                available_at = page_ready[vpn]
                pfn_base = translations[vpn] << 12
                tlb_missed = vpn in missed
                for line in lines_by_vpn[vpn]:
                    cursor += 1
                    paddr = pfn_base + (line & page_mask)
                    ready, hit, ev_line, ev_warp = access(paddr, cursor, warp_id)
                    on_l1(warp_id, paddr, hit, tlb_missed, ev_line, ev_warp)
                    fill_start = (
                        available_at if available_at > cursor else cursor
                    )
                    line_end = fill_start + ready - cursor
                    if line_end > completion:
                        completion = line_end
        else:
            for line in lines:
                vpn = line >> page_shift
                pfn_base = translations[vpn] << 12
                cursor += 1
                paddr = pfn_base + (line & page_mask)
                ready, hit, ev_line, ev_warp = access(paddr, cursor, warp_id)
                on_l1(warp_id, paddr, hit, vpn in missed, ev_line, ev_warp)
                fill_start = all_ready if all_ready > cursor else cursor
                line_end = fill_start + ready - cursor
                if line_end > completion:
                    completion = line_end
        if _prof.ENABLED:
            _prof.end()
        if misses is not None:
            stall = all_ready - tlb_done
            if stall > 0:
                stats.tlb_miss_stall_cycles += stall
        return completion

    def _hooked_access(self, paddr, start, warp_id):
        """:meth:`_fast_access` reporting what ``on_l1_access`` needs.

        Returns ``(ready, l1_hit, evicted_line, evicted_warp)`` — the
        hit flag is True only for a pure L1 hit (an MSHR merge reports
        False, as the reference's ``level == "l1"`` test does).
        """
        (
            l1,
            l1_sets,
            l1_shift,
            l1_mask,
            l1_assoc,
            l1_latency,
            mem,
            mshrs,
            shm,
            banks,
            bank_shift,
            bank_mask,
            bank_assoc,
            bank_busy,
            icn_latency,
            l2_interval,
            l2_latency,
            channels,
            num_channels,
            dram_line,
        ) = self._hot
        index = (paddr >> l1_shift) & l1_mask
        cache_set = l1_sets.get(index)
        if cache_set is None:
            cache_set = l1_sets[index] = {}
        if paddr in cache_set:
            l1.hits += 1
            cache_set[paddr] = cache_set.pop(paddr)  # move to MRU
            mem.l1_hits += 1
            return start + l1_latency, True, None, None
        l1.misses += 1
        ev_line = ev_warp = None
        if len(cache_set) >= l1_assoc:
            ev_line = next(iter(cache_set))
            ev_warp = cache_set.pop(ev_line)
        cache_set[paddr] = warp_id
        mem.l1_misses += 1
        if start >= mshrs._min_ready:
            mshrs._expire(start)
        inflight = mshrs._inflight
        merge_ready = inflight.get(paddr)
        if merge_ready is not None:
            mshrs.merges += 1
            ready = merge_ready if merge_ready > start else start + l1_latency
            mem.total_miss_latency += ready - start
            return ready, False, ev_line, ev_warp
        if len(inflight) < mshrs.capacity:
            slot_free = start
        else:
            mshrs.stalls += 1
            # Exact earliest fill among live entries: the heap top,
            # after discarding stale (lazily deleted) entries.
            heap = mshrs._heap
            while True:
                ready0, line0 = heap[0]
                if inflight.get(line0) == ready0:
                    slot_free = ready0
                    break
                _heappop(heap)
        channel = (paddr // dram_line) % num_channels
        arrive = start + icn_latency
        busy = bank_busy[channel]
        service_start = arrive if arrive > busy else busy
        bank_busy[channel] = service_start + l2_interval
        bank = banks[channel]
        bank_index = (paddr >> bank_shift) & bank_mask
        bank_sets = bank._sets
        bank_set = bank_sets.get(bank_index)
        if bank_set is None:
            bank_set = bank_sets[bank_index] = {}
        if paddr in bank_set:
            bank.hits += 1
            bank_set[paddr] = bank_set.pop(paddr)
            shm.l2_hits += 1
            shared_ready = service_start + l2_latency
        else:
            bank.misses += 1
            if len(bank_set) >= bank_assoc:
                del bank_set[next(iter(bank_set))]
            bank_set[paddr] = None
            shm.l2_misses += 1
            dram_channel = channels[channel]
            dram_now = service_start + l2_latency
            dram_busy = dram_channel.busy_until
            dram_start = dram_now if dram_now >= dram_busy else dram_busy
            dram_channel.total_queue_delay += dram_start - dram_now
            dram_channel.busy_until = dram_start + dram_channel.service_interval
            dram_channel.requests += 1
            shared_ready = dram_start + dram_channel.access_latency + icn_latency
        ready = slot_free + l1_latency
        if shared_ready > ready:
            ready = shared_ready
        if slot_free >= mshrs._min_ready:
            mshrs._expire(slot_free)
        inflight[paddr] = ready
        _heappush(mshrs._heap, (ready, paddr))
        if ready < mshrs._min_ready:
            mshrs._min_ready = ready
        mshrs.allocations += 1
        mem.total_miss_latency += ready - start
        return ready, False, ev_line, ev_warp

    # -- inlined memory path, full observation -------------------------

    def _observed_issue_memory(self, warp, instr, now, warp_id, stats) -> int:
        """:meth:`_hooked_issue_memory` emitting the reference path's
        instrumentation natively.

        Every counter, LRU, and busy-window mutation happens in the
        exact reference order, and so does every observation: scheduler
        memory-side hooks, TraceEvent emissions (same kinds, stamps,
        tracks, args, and ordering as the cycle engine's), span fills
        handed to the shared ``_record_spans`` assembler, and the fault
        injector consulted at the reference points (shootdown before
        the lookup batch; invalidations inside ``_fill_tlb``, which
        runs unchanged via ``_handle_misses``).
        """
        core = self.core
        sched = core.scheduler
        on_l1 = sched.on_l1_access
        cached = self._coal.get(id(instr))
        if cached is None or cached[0] is not instr:
            cached = (
                instr,
                coalesce(instr.addresses, core.line_bytes, core.page_shift),
            )
            self._coal[id(instr)] = cached
        coal = cached[1]
        vpns = coal.vpns
        lines = coal.lines
        n_pages = len(vpns)
        stats.page_divergence_sum += n_pages
        if n_pages > stats.page_divergence_max:
            stats.page_divergence_max = n_pages
        stats.coalesced_lines += len(lines)
        traced = _trace.ENABLED
        if traced:
            record = _trace.RECORD
            ev_core = _trace.CORE
            record(
                (
                    _ev.MEM_COALESCE,
                    now,
                    ev_core,
                    "coalescer",
                    None,
                    {
                        "warp": warp_id,
                        "pages": n_pages,
                        "lines": len(lines),
                    },
                )
            )
        page_shift = core.page_shift
        page_mask = core.page_mask
        access = self._observed_access_fn

        tlb = core.tlb
        if tlb is None:
            completion = now
            frame_map = core.frame_map
            for offset, line in enumerate(lines):
                pfn = frame_map.get(line >> page_shift)
                if pfn is not None:
                    line = (pfn << 12) + (line & page_mask)
                ready, level, ev_line, ev_warp = access(
                    line, now + offset, warp_id
                )
                on_l1(warp_id, line, level == "l1", False, ev_line, ev_warp)
                if ready > completion:
                    completion = ready
            return completion

        injector = core._injector
        shootdown = False
        if injector is not None and injector.tlb_shootdown(core.core_id):
            tlb.flush()
            core._shootdowns += 1
            shootdown = True
            if traced:
                record(
                    (
                        _ev.FAULT_INJECT,
                        now,
                        ev_core,
                        "faults",
                        None,
                        {"fault": "tlb_shootdown", "core": core.core_id},
                    )
                )
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_TLB)
        ports, extra_latency, tlb_blocking, cache_overlap = self._tlb_hot

        if n_pages == 1:
            # Single-page instruction (the common case for coalesced
            # streams): the fast path's specialization -- no
            # translation/ready maps, one direct probe -- with the
            # reference path's emissions, stats, and scheduler hooks
            # kept in the reference order.
            vpn = vpns[0]
            port_busy = core.tlb_port_busy_until
            port_start = now if now > port_busy else port_busy
            core.tlb_port_busy_until = port_start + 1
            tlb_done = port_start + extra_latency + 1
            origins = (
                core._vpn_origins(instr, vpns)
                if instr.origins is not None
                else _EMPTY_ORIGINS
            )
            stats.tlb_lookups += 1
            cpm = core.cpm
            if cpm is not None:
                cpm.maybe_flush(now)
            history_id = origins.get(vpn, warp_id) if origins else warp_id
            tlb_set = tlb._sets.get(vpn % tlb.num_sets)
            if tlb_set is not None and vpn in tlb_set:
                tlb.hits += 1
                # LRU stack depth from the MRU end, computed before the
                # reinsertion below disturbs the order (as the
                # reference lookup does).
                depth = 0
                for resident_vpn in reversed(tlb_set):
                    if resident_vpn == vpn:
                        break
                    depth += 1
                entry = tlb_set.pop(vpn)
                history = entry.history
                prior = tuple(history) if cpm is not None else ()
                if history_id in history:
                    history.remove(history_id)
                history.insert(0, history_id)
                del history[HISTORY_LENGTH:]
                tlb_set[vpn] = entry  # move to MRU
                if traced:
                    record(
                        (
                            _ev.TLB_LOOKUP,
                            now,
                            ev_core,
                            "tlb",
                            None,
                            {
                                "vpn": vpn,
                                "hit": True,
                                "depth": depth,
                                "warp": history_id,
                            },
                        )
                    )
                stats.tlb_hits += 1
                sched.on_tlb_hit(warp_id, vpn, depth)
                if cpm is not None and prior:
                    cpm.update(history_id, prior)
                pfn_base = entry.pfn << 12
                available = tlb_done
                walk_ready = None
                tlb_missed = False
            else:
                tlb.misses += 1
                if traced:
                    record(
                        (
                            _ev.TLB_LOOKUP,
                            now,
                            ev_core,
                            "tlb",
                            None,
                            {"vpn": vpn, "hit": False, "warp": history_id},
                        )
                    )
                stats.tlb_misses += 1
                sched.on_tlb_miss(warp_id, vpn)
                if traced:
                    record(
                        (
                            _ev.TLB_MISS_BEGIN,
                            tlb_done,
                            ev_core,
                            "tlb",
                            None,
                            {"vpn": vpn, "warp": warp_id},
                        )
                    )
                walk_ready = core._handle_misses(
                    warp, [vpn], tlb_done, origins
                )
                pfn, resolved = walk_ready[vpn]
                stats.total_tlb_miss_cycles += resolved - tlb_done
                if traced:
                    record(
                        (
                            _ev.TLB_MISS_END,
                            resolved,
                            ev_core,
                            "tlb",
                            None,
                            {"vpn": vpn, "latency": resolved - tlb_done},
                        )
                    )
                all_ready = resolved if resolved > tlb_done else tlb_done
                if tlb_blocking and all_ready > core.tlb_blocked_until:
                    core.tlb_blocked_until = all_ready
                pfn_base = pfn << 12
                # The overlap stage uses the page's own fill time, the
                # serial stage the (clamped) barrier; identical unless
                # a walk somehow resolves before the lookup completes.
                available = resolved if cache_overlap else all_ready
                tlb_missed = True
            if _prof.ENABLED:
                _prof.end()
                _prof.begin(_prof.PHASE_CACHE)
            completion = tlb_done
            cursor = now
            fills = [] if (_spans.ENABLED and tlb_missed) else None
            for line in lines:
                cursor += 1
                paddr = pfn_base + (line & page_mask)
                ready, level, ev_line, ev_warp = access(paddr, cursor, warp_id)
                on_l1(
                    warp_id, paddr, level == "l1", tlb_missed, ev_line, ev_warp
                )
                fill_start = available if available > cursor else cursor
                line_end = fill_start + ready - cursor
                if line_end > completion:
                    completion = line_end
                if fills is not None:
                    fills.append((level, fill_start, line_end))
            if _prof.ENABLED:
                _prof.end()
            if tlb_missed:
                stall = all_ready - tlb_done
                if stall > 0:
                    stats.tlb_miss_stall_cycles += stall
                if fills is not None:
                    core._record_spans(
                        warp,
                        coal,
                        now,
                        port_start,
                        tlb_done,
                        1,
                        walk_ready,
                        {vpn: fills} if fills else {},
                        completion,
                        shootdown,
                    )
            return completion
        lookup_cycles = -(-n_pages // ports)  # ceil division
        port_busy = core.tlb_port_busy_until
        port_start = now if now > port_busy else port_busy
        core.tlb_port_busy_until = port_start + lookup_cycles
        tlb_done = port_start + extra_latency + lookup_cycles
        origins = (
            core._vpn_origins(instr, vpns)
            if instr.origins is not None
            else _EMPTY_ORIGINS
        )
        stats.tlb_lookups += n_pages
        cpm = core.cpm
        if cpm is not None:
            cpm.maybe_flush(now)
        translations: Dict[int, int] = {}
        page_ready: Dict[int, int] = {}
        misses: Optional[List[int]] = None
        tlb_sets = tlb._sets
        num_sets = tlb.num_sets
        for vpn in vpns:
            history_id = origins.get(vpn, warp_id) if origins else warp_id
            tlb_set = tlb_sets.get(vpn % num_sets)
            if tlb_set is None or vpn not in tlb_set:
                tlb.misses += 1
                if traced:
                    record(
                        (
                            _ev.TLB_LOOKUP,
                            now,
                            ev_core,
                            "tlb",
                            None,
                            {"vpn": vpn, "hit": False, "warp": history_id},
                        )
                    )
                stats.tlb_misses += 1
                sched.on_tlb_miss(warp_id, vpn)
                if misses is None:
                    misses = [vpn]
                else:
                    misses.append(vpn)
                continue
            tlb.hits += 1
            # LRU stack depth from the MRU end, computed before the
            # reinsertion below disturbs the order (as the reference
            # lookup does).
            depth = 0
            for resident_vpn in reversed(tlb_set):
                if resident_vpn == vpn:
                    break
                depth += 1
            entry = tlb_set.pop(vpn)
            history = entry.history
            prior = tuple(history) if cpm is not None else ()
            if history_id in history:
                history.remove(history_id)
            history.insert(0, history_id)
            del history[HISTORY_LENGTH:]
            tlb_set[vpn] = entry  # move to MRU
            if traced:
                record(
                    (
                        _ev.TLB_LOOKUP,
                        now,
                        ev_core,
                        "tlb",
                        None,
                        {
                            "vpn": vpn,
                            "hit": True,
                            "depth": depth,
                            "warp": history_id,
                        },
                    )
                )
            stats.tlb_hits += 1
            sched.on_tlb_hit(warp_id, vpn, depth)
            if cpm is not None and prior:
                cpm.update(history_id, prior)
            translations[vpn] = entry.pfn
            page_ready[vpn] = tlb_done
        if misses is not None:
            if traced:
                for vpn in misses:
                    record(
                        (
                            _ev.TLB_MISS_BEGIN,
                            tlb_done,
                            ev_core,
                            "tlb",
                            None,
                            {"vpn": vpn, "warp": warp_id},
                        )
                    )
            walk_ready = core._handle_misses(warp, misses, tlb_done, origins)
            all_ready = tlb_done
            for vpn, resolved in walk_ready.items():
                pfn, ready = resolved
                translations[vpn] = pfn
                page_ready[vpn] = ready
                stats.total_tlb_miss_cycles += ready - tlb_done
                if traced:
                    record(
                        (
                            _ev.TLB_MISS_END,
                            ready,
                            ev_core,
                            "tlb",
                            None,
                            {"vpn": vpn, "latency": ready - tlb_done},
                        )
                    )
                if ready > all_ready:
                    all_ready = ready
            if tlb_blocking and all_ready > core.tlb_blocked_until:
                core.tlb_blocked_until = all_ready
            missed = set(misses)
        else:
            walk_ready = None
            all_ready = tlb_done
            missed = ()
        if _prof.ENABLED:
            _prof.end()

        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_CACHE)
        completion = tlb_done
        cursor = now
        span_fills: Optional[Dict[int, list]] = (
            {} if (_spans.ENABLED and misses is not None) else None
        )
        if cache_overlap:
            lines_by_vpn = coal.lines_by_vpn
            for vpn in vpns:
                available_at = page_ready[vpn]
                pfn_base = translations[vpn] << 12
                tlb_missed = vpn in missed
                for line in lines_by_vpn[vpn]:
                    cursor += 1
                    paddr = pfn_base + (line & page_mask)
                    ready, level, ev_line, ev_warp = access(
                        paddr, cursor, warp_id
                    )
                    on_l1(
                        warp_id,
                        paddr,
                        level == "l1",
                        tlb_missed,
                        ev_line,
                        ev_warp,
                    )
                    fill_start = (
                        available_at if available_at > cursor else cursor
                    )
                    line_end = fill_start + ready - cursor
                    if line_end > completion:
                        completion = line_end
                    if span_fills is not None and tlb_missed:
                        fills = span_fills.get(vpn)
                        if fills is None:
                            fills = span_fills[vpn] = []
                        fills.append((level, fill_start, line_end))
        else:
            for line in lines:
                vpn = line >> page_shift
                pfn_base = translations[vpn] << 12
                tlb_missed = vpn in missed
                cursor += 1
                paddr = pfn_base + (line & page_mask)
                ready, level, ev_line, ev_warp = access(paddr, cursor, warp_id)
                on_l1(
                    warp_id, paddr, level == "l1", tlb_missed, ev_line, ev_warp
                )
                fill_start = all_ready if all_ready > cursor else cursor
                line_end = fill_start + ready - cursor
                if line_end > completion:
                    completion = line_end
                if span_fills is not None and tlb_missed:
                    fills = span_fills.get(vpn)
                    if fills is None:
                        fills = span_fills[vpn] = []
                    fills.append((level, fill_start, line_end))
        if _prof.ENABLED:
            _prof.end()
        if misses is not None:
            stall = all_ready - tlb_done
            if stall > 0:
                stats.tlb_miss_stall_cycles += stall
            if span_fills is not None:
                core._record_spans(
                    warp,
                    coal,
                    now,
                    port_start,
                    tlb_done,
                    lookup_cycles,
                    walk_ready,
                    span_fills,
                    completion,
                    shootdown,
                )
        return completion

