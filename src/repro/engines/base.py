"""The `SimEngine` protocol: what a pluggable simulator core provides.

An engine owns the *issue loop* of one shader core — the strategy that
decides how simulated time advances — while the core object keeps all
architectural state (warps, TLB, caches, walkers, counters).  Engines
therefore share the core's snapshot format: ``state_dict`` /
``load_state`` delegate to the core, snapshots taken under one engine
restore under any other, and every safe point (issue-loop top) is a
valid snapshot point for every engine.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimEngine:
    """Base class for simulator cores.

    Parameters
    ----------
    core:
        The :class:`repro.gpu.shader_core.ShaderCore` whose work this
        engine executes.  The engine reads and writes the core's state;
        it holds no simulated state of its own (registered user events
        are host-side observation hooks, not simulated state).
    """

    #: Registry name; subclasses override.
    name = "base"

    #: Observer capabilities this engine supports natively (subset of
    #: :data:`repro.engines.OBSERVER_FEATURES`).  An engine must
    #: *declare* a capability to be allowed to run with the matching
    #: observer installed — there is no silent fallback to another
    #: engine; :func:`repro.engines.require_features` raises
    #: :class:`repro.engines.EngineFeatureError` instead, and the CLI
    #: surfaces it as exit status 2.  The conservative default is
    #: "nothing": a plug-in engine that never thought about tracing
    #: fails loudly rather than producing a silently unobserved run.
    FEATURES: frozenset = frozenset()

    def __init__(self, core):
        self.core = core
        # (cycle, seq, callback) min-heap of user-registered events.
        self._events: List[Tuple[int, int, Callable]] = []
        self._event_seq = 0

    # -- execution -----------------------------------------------------

    def run(self, poll=None):
        """Execute the core's work to completion; return its CoreStats."""
        raise NotImplementedError

    def step_to(self, cycle: int, poll=None) -> int:
        """Advance the core to the first safe point at or past ``cycle``.

        Returns the core's clock.  Does not finalize statistics; call
        :meth:`run` afterwards to finish the remaining work.
        """
        raise NotImplementedError

    # -- event registration --------------------------------------------

    def register_event(self, cycle: int, callback: Callable) -> None:
        """Call ``callback(core, now)`` at the first safe point whose
        clock is at or past ``cycle``.

        Observation-only: callbacks run at loop top (the same safe
        points ``poll`` uses) and must not mutate simulated state.
        """
        heapq.heappush(self._events, (cycle, self._event_seq, callback))
        self._event_seq += 1

    def _dispatch_events(self, now: int) -> None:
        events = self._events
        while events and events[0][0] <= now:
            _, _, callback = heapq.heappop(events)
            callback(self.core, now)

    # -- snapshot protocol (shared core state) -------------------------

    def state_dict(self) -> dict:
        """Snapshot the core (valid at safe points); engine-agnostic."""
        return self.core.state_dict()

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken under any engine."""
        self.core.load_state(state)
