"""The serial hardware page table walker.

One walker per shader core, placed next to the TLB (Section 6.2).  A
4 KB page walk performs four dependent loads (PML4 → PDP → PD → PT), each
injected into the shared cache hierarchy; concurrent TLB misses are
handled one walk at a time, which is precisely the serialization the
paper blames for TLB miss penalties being about twice L1 miss penalties
(Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.mem.hierarchy import SharedMemory
from repro.obs import events as _ev
from repro.obs import tracer as _trace
from repro.vm.address import cache_line_of
from repro.vm.page_table import PageTable
from repro.vm.pte import PTE_FLAG_LARGE, unpack_pte


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one page walk: completion time, translation, load count."""

    ready_time: int
    pfn: int
    refs: int


@dataclass(frozen=True)
class WalkBatchResult:
    """Outcome of walking a set of pages that missed together.

    Attributes
    ----------
    ready_time:
        Cycle at which the *last* translation of the batch is available.
    translations:
        vpn → pfn for every requested page.
    ready_times:
        vpn → cycle its individual translation completed (per-walk for
        the serial walker; batch-level milestones for the scheduler).
    refs:
        Total walk loads issued for the batch.
    """

    ready_time: int
    translations: Dict[int, int]
    ready_times: Dict[int, int]
    refs: int


class PageTableWalker:
    """A serial hardware walker bound to one page table and memory system.

    Parameters
    ----------
    page_table:
        The process page table to traverse.
    shared_memory:
        The L2/DRAM path walk loads travel through.
    """

    def __init__(self, page_table: PageTable, shared_memory: SharedMemory):
        self.page_table = page_table
        self.shared = shared_memory
        self.busy_until = 0
        self.walks = 0
        self.refs_issued = 0
        self.refs_naive = 0  # what a 4-loads-per-walk design would issue
        self.total_walk_cycles = 0
        self._walk_seq = 0  # trace span ids

    def _load(self, paddr: int, now: int) -> int:
        """Issue one walk load; return its data-ready cycle."""
        result = self.shared.access_line(cache_line_of(paddr), now, is_ptw=True)
        self.refs_issued += 1
        return result.ready_time

    def walk(self, vpn: int, now: int) -> WalkResult:
        """Walk one page serially starting no earlier than ``now``."""
        start = now if now >= self.busy_until else self.busy_until
        steps = self.page_table.walk(vpn)
        tracing = _trace.ENABLED
        if tracing:
            self._walk_seq += 1
            walk_id = self._walk_seq
            _trace.emit(
                _ev.WALK_BEGIN,
                cycle=start,
                track="walker",
                id=walk_id,
                vpn=vpn,
                queued=start - now,
            )
        clock = start
        for step in steps:
            issued_at = clock
            clock = self._load(step.load_paddr, clock)
            if tracing:
                _trace.emit(
                    _ev.WALK_STEP,
                    cycle=issued_at,
                    track="walker",
                    dur=clock - issued_at,
                    level=step.level,
                    paddr=step.load_paddr,
                )
        if tracing:
            _trace.emit(
                _ev.WALK_END,
                cycle=clock,
                track="walker",
                id=walk_id,
                vpn=vpn,
                refs=len(steps),
            )
        self.busy_until = clock
        self.walks += 1
        self.refs_naive += len(steps)
        self.total_walk_cycles += clock - now
        leaf_pfn, leaf_flags = unpack_pte(steps[-1].entry)
        if leaf_flags & PTE_FLAG_LARGE:
            within = vpn & ((1 << 9) - 1)
            pfn = leaf_pfn + within
        else:
            pfn = leaf_pfn
        return WalkResult(ready_time=clock, pfn=pfn, refs=len(steps))

    def walk_many(self, vpns: Iterable[int], now: int) -> WalkBatchResult:
        """Walk several pages back to back (no scheduling, no overlap)."""
        translations: Dict[int, int] = {}
        ready_times: Dict[int, int] = {}
        refs = 0
        finish = now
        for vpn in dict.fromkeys(vpns):
            result = self.walk(vpn, now)
            translations[vpn] = result.pfn
            ready_times[vpn] = result.ready_time
            refs += result.refs
            finish = max(finish, result.ready_time)
        return WalkBatchResult(
            ready_time=finish,
            translations=translations,
            ready_times=ready_times,
            refs=refs,
        )

    @property
    def average_walk_cycles(self) -> float:
        """Average cycles per completed walk including queueing delay."""
        return self.total_walk_cycles / self.walks if self.walks else 0.0

    @property
    def refs_eliminated_fraction(self) -> float:
        """Fraction of naive walk loads this walker avoided issuing."""
        if not self.refs_naive:
            return 0.0
        return 1.0 - self.refs_issued / self.refs_naive

    def steps_for(self, vpns: Iterable[int]) -> Dict[int, List[Tuple[int, int]]]:
        """Map each vpn to its ``(level, load_paddr)`` walk references."""
        plan: Dict[int, List[Tuple[int, int]]] = {}
        for vpn in vpns:
            plan[vpn] = [
                (step.level, step.load_paddr) for step in self.page_table.walk(vpn)
            ]
        return plan
