"""The serial hardware page table walker.

One walker per shader core, placed next to the TLB (Section 6.2).  A
4 KB page walk performs four dependent loads (PML4 → PDP → PD → PT), each
injected into the shared cache hierarchy; concurrent TLB misses are
handled one walk at a time, which is precisely the serialization the
paper blames for TLB miss penalties being about twice L1 miss penalties
(Figure 4).

Fault path (``repro.faults``)
-----------------------------
With a :class:`repro.faults.context.FaultContext` attached the walker
models the events the paper's pre-mapped setup avoids:

- *demand paging* — a walk that hits a missing entry raises a page
  fault; the OS handler maps the page (charging the minor/major
  CPU-assist penalty) and the walk retries after it completes, so the
  faulting warp stalls for the full penalty;
- *transient walk errors* — injected per-load; the load is reissued
  after ``ptw_retry_backoff`` cycles, up to ``ptw_max_retries`` times
  before :class:`repro.faults.errors.PTWError`;
- *walk timeouts* — a walk exceeding ``walk_timeout_cycles`` is retried
  once from scratch, then raises
  :class:`repro.faults.errors.WalkTimeout`.

Without a context every method follows the exact pre-fault-subsystem
code path, keeping results byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.errors import PTWError, WalkTimeout
from repro.mem.hierarchy import SharedMemory
from repro.obs import events as _ev
from repro.obs import spans as _spans
from repro.obs import tracer as _trace
from repro.prof import profiler as _prof
from repro.vm.address import cache_line_of
from repro.vm.page_table import PageTable, TranslationFault, WalkStep
from repro.vm.pte import PTE_FLAG_LARGE, unpack_pte


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one page walk: completion time, translation, load count."""

    ready_time: int
    pfn: int
    refs: int


@dataclass(frozen=True)
class WalkBatchResult:
    """Outcome of walking a set of pages that missed together.

    Attributes
    ----------
    ready_time:
        Cycle at which the *last* translation of the batch is available.
    translations:
        vpn → pfn for every requested page.
    ready_times:
        vpn → cycle its individual translation completed (per-walk for
        the serial walker; batch-level milestones for the scheduler).
    refs:
        Total walk loads issued for the batch.
    """

    ready_time: int
    translations: Dict[int, int]
    ready_times: Dict[int, int]
    refs: int


class PageTableWalker:
    """A serial hardware walker bound to one page table and memory system.

    Parameters
    ----------
    page_table:
        The process page table to traverse.
    shared_memory:
        The L2/DRAM path walk loads travel through.
    faults:
        Optional :class:`repro.faults.context.FaultContext`; attaches
        the demand-paging model and/or the fault injector.
    """

    def __init__(
        self,
        page_table: PageTable,
        shared_memory: SharedMemory,
        faults=None,
    ):
        self.page_table = page_table
        self.shared = shared_memory
        self.busy_until = 0
        self.walks = 0
        self.refs_issued = 0
        self.refs_naive = 0  # what a 4-loads-per-walk design would issue
        self.total_walk_cycles = 0
        self._walk_seq = 0  # trace span ids
        self.faults = faults
        self._fault_model = faults.model if faults is not None else None
        self._injector = faults.injector if faults is not None else None
        cfg = faults.config if faults is not None else None
        self._retry_backoff = cfg.ptw_retry_backoff if cfg is not None else 0
        self._max_retries = cfg.ptw_max_retries if cfg is not None else 0
        self._timeout = cfg.walk_timeout_cycles if cfg is not None else 0
        # Fault counters (whole-run; aggregated into CoreStats).
        self.transient_errors = 0
        self.load_retries = 0
        self.walk_timeouts = 0

    def _load(self, paddr: int, now: int) -> int:
        """Issue one walk load; return its data-ready cycle.

        With an injector attached, each (re)issue draws a transient
        error; errored loads reissue after the backoff until one
        succeeds or the retry budget is exhausted.
        """
        result = self.shared.access_line(cache_line_of(paddr), now, is_ptw=True)
        self.refs_issued += 1
        injector = self._injector
        if injector is None:
            return result.ready_time
        ready = result.ready_time
        errors = 0
        while injector.ptw_transient_error(paddr):
            self.transient_errors += 1
            errors += 1
            if _trace.ENABLED:
                _trace.emit(
                    _ev.FAULT_INJECT,
                    cycle=ready,
                    track="faults",
                    fault="ptw_error",
                    paddr=paddr,
                    attempt=errors,
                )
            if errors > self._max_retries:
                raise PTWError(
                    f"walk load of paddr {paddr:#x} failed {errors} times "
                    f"(retry budget {self._max_retries})",
                    diagnostics={
                        "paddr": paddr,
                        "errors": errors,
                        "max_retries": self._max_retries,
                        "cycle": ready,
                    },
                )
            retry_at = ready + self._retry_backoff
            result = self.shared.access_line(
                cache_line_of(paddr), retry_at, is_ptw=True
            )
            self.refs_issued += 1
            self.load_retries += 1
            ready = result.ready_time
        return ready

    def _resolve_steps(self, vpn: int, start: int) -> Tuple[List[WalkStep], int]:
        """Walk the table functionally, faulting in the page if needed.

        Returns the walk's memory references and the cycle the hardware
        walk may begin (deferred past the OS handler on a fault).
        """
        if self._fault_model is None:
            return self.page_table.walk(vpn), start
        try:
            return self.page_table.walk(vpn), start
        except TranslationFault:
            ready = self._fault_model.page_fault(vpn, start)
            # The handler mapped the page; the hardware walk retries
            # once it completes.
            return self.page_table.walk(vpn), ready

    def _issue_steps(
        self,
        steps: List[WalkStep],
        start: int,
        tracing: bool,
        segments: Optional[list] = None,
    ) -> int:
        """Issue a walk's loads serially from ``start``; return done cycle.

        ``segments``, when given, collects ``(level, issued_at, ready)``
        per load for the span recorder's per-level decomposition.
        """
        clock = start
        for step in steps:
            issued_at = clock
            clock = self._load(step.load_paddr, clock)
            if segments is not None:
                segments.append((step.level, issued_at, clock))
            if tracing:
                _trace.emit(
                    _ev.WALK_STEP,
                    cycle=issued_at,
                    track="walker",
                    dur=clock - issued_at,
                    level=step.level,
                    paddr=step.load_paddr,
                )
        return clock

    def walk(self, vpn: int, now: int) -> WalkResult:
        """Walk one page serially starting no earlier than ``now``."""
        if _prof.ENABLED:
            # An error raised mid-walk leaves this frame open; the
            # simulator's end_through unwinds it with the run.
            _prof.begin(_prof.PHASE_PTW)
        start = now if now >= self.busy_until else self.busy_until
        queue_end = start  # walker accepted the walk (pre-fault-handler)
        steps, start = self._resolve_steps(vpn, start)
        tracing = _trace.ENABLED
        segments = [] if _spans.ENABLED else None
        if tracing:
            self._walk_seq += 1
            walk_id = self._walk_seq
            _trace.emit(
                _ev.WALK_BEGIN,
                cycle=start,
                track="walker",
                id=walk_id,
                vpn=vpn,
                queued=start - now,
            )
        clock = self._issue_steps(steps, start, tracing, segments)
        if self._fault_model is not None:
            # Another warp's fault on this page may still be in flight;
            # the translation is not architecturally visible before the
            # handler completes.
            pending = self._fault_model.pending_ready(vpn)
            if pending > clock:
                clock = pending
        if self._timeout and clock - start > self._timeout:
            self.walk_timeouts += 1
            if tracing:
                _trace.emit(
                    _ev.FAULT_INJECT,
                    cycle=clock,
                    track="faults",
                    fault="walk_timeout",
                    vpn=vpn,
                    latency=clock - start,
                )
            retry_start = clock
            clock = self._issue_steps(steps, retry_start, tracing, segments)
            if clock - retry_start > self._timeout:
                raise WalkTimeout(
                    f"walk for vpn {vpn:#x} exceeded "
                    f"{self._timeout} cycles twice "
                    f"({clock - retry_start} on retry)",
                    diagnostics={
                        "vpn": vpn,
                        "timeout_cycles": self._timeout,
                        "retry_latency": clock - retry_start,
                    },
                )
        if tracing:
            _trace.emit(
                _ev.WALK_END,
                cycle=clock,
                track="walker",
                id=walk_id,
                vpn=vpn,
                refs=len(steps),
            )
        if segments is not None:
            _spans.note_walk(
                vpn,
                _spans.WalkDetail(
                    enqueued=now,
                    queue_end=queue_end,
                    start=start,
                    segments=segments,
                    ready=clock,
                    args={"refs": len(steps)},
                ),
            )
        self.busy_until = clock
        self.walks += 1
        self.refs_naive += len(steps)
        self.total_walk_cycles += clock - now
        leaf_pfn, leaf_flags = unpack_pte(steps[-1].entry)
        if leaf_flags & PTE_FLAG_LARGE:
            within = vpn & ((1 << 9) - 1)
            pfn = leaf_pfn + within
        else:
            pfn = leaf_pfn
        if _prof.ENABLED:
            _prof.end()
        return WalkResult(ready_time=clock, pfn=pfn, refs=len(steps))

    def walk_many(self, vpns: Iterable[int], now: int) -> WalkBatchResult:
        """Walk several pages back to back (no scheduling, no overlap)."""
        translations: Dict[int, int] = {}
        ready_times: Dict[int, int] = {}
        refs = 0
        finish = now
        for vpn in dict.fromkeys(vpns):
            result = self.walk(vpn, now)
            translations[vpn] = result.pfn
            ready_times[vpn] = result.ready_time
            refs += result.refs
            finish = max(finish, result.ready_time)
        return WalkBatchResult(
            ready_time=finish,
            translations=translations,
            ready_times=ready_times,
            refs=refs,
        )

    def state_dict(self) -> dict:
        """Snapshot the walker's occupancy and counters (covers the
        scheduled subclass, which adds no mutable state)."""
        return {
            "busy_until": self.busy_until,
            "walks": self.walks,
            "refs_issued": self.refs_issued,
            "refs_naive": self.refs_naive,
            "total_walk_cycles": self.total_walk_cycles,
            "walk_seq": self._walk_seq,
            "transient_errors": self.transient_errors,
            "load_retries": self.load_retries,
            "walk_timeouts": self.walk_timeouts,
        }

    def load_state(self, state: dict) -> None:
        self.busy_until = state["busy_until"]
        self.walks = state["walks"]
        self.refs_issued = state["refs_issued"]
        self.refs_naive = state["refs_naive"]
        self.total_walk_cycles = state["total_walk_cycles"]
        self._walk_seq = state["walk_seq"]
        self.transient_errors = state["transient_errors"]
        self.load_retries = state["load_retries"]
        self.walk_timeouts = state["walk_timeouts"]

    @property
    def average_walk_cycles(self) -> float:
        """Average cycles per completed walk including queueing delay."""
        return self.total_walk_cycles / self.walks if self.walks else 0.0

    @property
    def refs_eliminated_fraction(self) -> float:
        """Fraction of naive walk loads this walker avoided issuing."""
        if not self.refs_naive:
            return 0.0
        return 1.0 - self.refs_issued / self.refs_naive

    def steps_for(self, vpns: Iterable[int]) -> Dict[int, List[Tuple[int, int]]]:
        """Map each vpn to its ``(level, load_paddr)`` walk references."""
        plan: Dict[int, List[Tuple[int, int]]] = {}
        for vpn in vpns:
            plan[vpn] = [
                (step.level, step.load_paddr) for step in self.page_table.walk(vpn)
            ]
        return plan
