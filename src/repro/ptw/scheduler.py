"""The coalescing PTW scheduler (paper Figures 8 and 9).

Warps frequently TLB-miss on several pages at once, and those concurrent
walks share structure: upper-level indices change rarely (bits 47–30
cover 1 GB), so PML4/PDP loads are often *identical*, and 128-byte cache
lines hold 16 consecutive PTEs, so distinct same-table references often
share a line.  The scheduler scans the TLB MSHRs with a comparator tree,
one paging level per step, and

1. collapses repeated references into a single load, and
2. orders the remaining loads so same-cache-line references issue back
   to back (the second hits in the cache the first just filled).

The comparator scan of each level proceeds in parallel with the previous
level's loads, so scheduling adds no latency.  On the paper's worked
example (three walks needing 12 naive loads) this issues exactly 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.obs import events as _ev
from repro.obs import spans as _spans
from repro.obs import tracer as _trace
from repro.prof import profiler as _prof
from repro.ptw.walker import PageTableWalker, WalkBatchResult
from repro.vm.address import cache_line_of
from repro.vm.page_table import TranslationFault
from repro.vm.pte import PTE_FLAG_LARGE, unpack_pte


@dataclass(frozen=True)
class BatchPlan:
    """The load schedule for one batch of concurrent page walks.

    Attributes
    ----------
    loads_per_level:
        For each paging level, the ordered distinct load addresses
        (same-cache-line loads adjacent).
    naive_refs:
        Loads a serial walker would have issued (walk lengths summed).
    scheduled_refs:
        Loads this plan issues.
    """

    loads_per_level: Tuple[Tuple[int, ...], ...]
    naive_refs: int
    scheduled_refs: int

    @property
    def refs_eliminated(self) -> int:
        """Loads removed by deduplicating repeated references."""
        return self.naive_refs - self.scheduled_refs


def plan_batch(steps_by_vpn: Dict[int, List[Tuple[int, int]]]) -> BatchPlan:
    """Build the level-by-level load schedule for a set of walks.

    Parameters
    ----------
    steps_by_vpn:
        vpn → list of ``(level, load_paddr)`` references, as produced by
        :meth:`repro.ptw.PageTableWalker.steps_for`.
    """
    max_level = max(
        (level for steps in steps_by_vpn.values() for level, _ in steps),
        default=-1,
    )
    loads_per_level: List[Tuple[int, ...]] = []
    naive_refs = 0
    scheduled_refs = 0
    for steps in steps_by_vpn.values():
        naive_refs += len(steps)
    for level in range(max_level + 1):
        addrs = {
            paddr
            for steps in steps_by_vpn.values()
            for step_level, paddr in steps
            if step_level == level
        }
        # Same-line loads adjacent; deterministic order within a line.
        ordered = tuple(sorted(addrs, key=lambda a: (cache_line_of(a), a)))
        loads_per_level.append(ordered)
        scheduled_refs += len(ordered)
    return BatchPlan(
        loads_per_level=tuple(loads_per_level),
        naive_refs=naive_refs,
        scheduled_refs=scheduled_refs,
    )


class ScheduledPageTableWalker(PageTableWalker):
    """A walker augmented with the coalescing MSHR-scanning scheduler.

    Beyond deduplicating and line-grouping references, the scheduler
    changes the walker's *occupancy model*: because it works out of the
    TLB MSHRs, walks from different misses are independent and overlap —
    the walker is busy only while it is issuing references (one per
    cycle), not while waiting for their data.  A naive serial walker, by
    contrast, sits idle for the full data-dependent chain of every walk
    it performs; this memory-level parallelism is why one scheduled
    walker outperforms even a pool of eight serial walkers (Figure 11).
    """

    def walk_many(self, vpns: Iterable[int], now: int) -> WalkBatchResult:
        vpn_list = list(dict.fromkeys(vpns))
        if not vpn_list:
            return WalkBatchResult(
                ready_time=now, translations={}, ready_times={}, refs=0
            )
        start = now if now >= self.busy_until else self.busy_until
        if self._fault_model is not None:
            return self._walk_many_faulting(vpn_list, now, start)
        walk_steps = {vpn: self.page_table.walk(vpn) for vpn in vpn_list}
        return self._walk_batch(vpn_list, walk_steps, now, start)

    def _walk_many_faulting(
        self, vpn_list: List[int], now: int, start: int
    ) -> WalkBatchResult:
        """Batch walk under demand paging.

        Pages whose walk faults are handed to the OS handler; the
        non-faulting pages proceed through the scheduled batch
        immediately (the scheduler works out of the MSHRs, so healthy
        walks are not serialized behind the handler).  Once the
        handler(s) complete, the faulted pages retry as a second
        scheduled batch.
        """
        walk_steps = {}
        faulted: List[int] = []
        handler_ready = start
        for vpn in vpn_list:
            try:
                walk_steps[vpn] = self.page_table.walk(vpn)
            except TranslationFault:
                ready = self._fault_model.page_fault(vpn, start)
                handler_ready = max(handler_ready, ready)
                faulted.append(vpn)
        if walk_steps:
            batch = self._walk_batch(
                list(walk_steps), walk_steps, now, start
            )
        else:
            batch = WalkBatchResult(
                ready_time=now, translations={}, ready_times={}, refs=0
            )
        if not faulted:
            return batch
        retry_at = max(handler_ready, self.busy_until)
        retry = self.walk_many(faulted, retry_at)
        if _spans.ENABLED:
            for vpn in faulted:
                _spans.annotate_walk(vpn, demand_fault=True)
        translations = dict(batch.translations)
        translations.update(retry.translations)
        ready_times = dict(batch.ready_times)
        ready_times.update(retry.ready_times)
        return WalkBatchResult(
            ready_time=max(batch.ready_time, retry.ready_time),
            translations=translations,
            ready_times=ready_times,
            refs=batch.refs + retry.refs,
        )

    def _walk_batch(
        self,
        vpn_list: List[int],
        walk_steps: Dict[int, List],
        now: int,
        start: int,
    ) -> WalkBatchResult:
        """Schedule and issue one batch whose walks all succeed."""
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_PTW_SCHED)
        plan = plan_batch(
            {
                vpn: [(step.level, step.load_paddr) for step in steps]
                for vpn, steps in walk_steps.items()
            }
        )
        tracing = _trace.ENABLED
        if tracing:
            self._walk_seq += 1
            batch_id = self._walk_seq
            _trace.emit(
                _ev.WALK_BEGIN,
                cycle=start,
                track="walker",
                id=batch_id,
                vpns=len(vpn_list),
                queued=start - now,
                naive_refs=plan.naive_refs,
            )
        spanning = _spans.ENABLED
        level_end: Dict[int, int] = {}
        load_ready: Dict[int, int] = {}
        clock = start
        for level, level_loads in enumerate(plan.loads_per_level):
            if level_loads:
                level_done = clock
                for offset, paddr in enumerate(level_loads):
                    ready = self._load(paddr, clock + offset)
                    load_ready[paddr] = ready
                    level_done = max(level_done, ready)
                    if tracing:
                        _trace.emit(
                            _ev.WALK_STEP,
                            cycle=clock + offset,
                            track="walker",
                            dur=ready - (clock + offset),
                            level=level,
                            paddr=paddr,
                        )
                clock = level_done
            if spanning:
                level_end[level] = clock
        translations: Dict[int, int] = {}
        ready_times: Dict[int, int] = {}
        for vpn, steps in walk_steps.items():
            leaf = steps[-1]
            leaf_pfn, leaf_flags = unpack_pte(leaf.entry)
            if leaf_flags & PTE_FLAG_LARGE:
                within = vpn & ((1 << 9) - 1)
                translations[vpn] = leaf_pfn + within
            else:
                translations[vpn] = leaf_pfn
            ready_times[vpn] = load_ready[leaf.load_paddr]
        if self._fault_model is not None:
            # Translations installed by a still-running OS handler are
            # not visible before the handler completes.
            for vpn in ready_times:
                pending = self._fault_model.pending_ready(vpn)
                if pending > ready_times[vpn]:
                    ready_times[vpn] = pending
                    clock = max(clock, pending)
        if spanning:
            # Per-vpn level decomposition under the batch's barrier
            # model: a walk's level-k reference is satisfied when the
            # batch's level-k loads all return; its leaf completes with
            # its own load's data.
            for vpn, steps in walk_steps.items():
                prev = start
                segments = []
                for step in steps[:-1]:
                    end = level_end.get(step.level, prev)
                    segments.append((step.level, prev, end))
                    prev = end
                leaf = steps[-1]
                segments.append(
                    (leaf.level, prev, load_ready[leaf.load_paddr])
                )
                _spans.note_walk(
                    vpn,
                    _spans.WalkDetail(
                        enqueued=now,
                        queue_end=start,
                        start=start,
                        segments=segments,
                        ready=ready_times[vpn],
                        args={
                            "batch": len(vpn_list),
                            "refs": plan.scheduled_refs,
                            "eliminated": plan.refs_eliminated,
                        },
                    ),
                )
        # Issue-bandwidth occupancy: the walker frees once every
        # reference of this batch has been injected; the in-flight data
        # returns overlap with subsequent batches.
        self.busy_until = start + plan.scheduled_refs
        self.walks += len(vpn_list)
        self.refs_naive += plan.naive_refs
        self.total_walk_cycles += sum(
            ready - now for ready in ready_times.values()
        )
        if tracing:
            _trace.emit(
                _ev.WALK_END,
                cycle=clock,
                track="walker",
                id=batch_id,
                refs=plan.scheduled_refs,
                eliminated=plan.refs_eliminated,
            )
        if _prof.ENABLED:
            _prof.end()
        return WalkBatchResult(
            ready_time=clock,
            translations=translations,
            ready_times=ready_times,
            refs=plan.scheduled_refs,
        )
