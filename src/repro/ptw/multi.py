"""A pool of page table walkers (the multiple-PTW design of Figure 11).

Distributes the concurrent walks of a batch across several serial
walkers, each walk choosing the earliest-free walker.  The paper finds
that one *augmented* walker (4-port non-blocking TLB + PTW scheduling)
outperforms even 8 naive walkers by about 10 %, at far lower area/power —
the pool exists so that comparison can be reproduced.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.mem.hierarchy import SharedMemory
from repro.obs import spans as _spans
from repro.ptw.walker import PageTableWalker, WalkBatchResult
from repro.vm.page_table import PageTable


class WalkerPool:
    """N independent serial walkers sharing one page table.

    Parameters
    ----------
    page_table / shared_memory:
        Substrate shared by every walker.
    num_walkers:
        Pool size (Figure 11 evaluates 1, 2, 4 and 8).
    """

    def __init__(
        self,
        page_table: PageTable,
        shared_memory: SharedMemory,
        num_walkers: int,
        faults=None,
    ):
        if num_walkers <= 0:
            raise ValueError("need at least one walker")
        # The walkers share one fault context: the page-fault handler
        # and the injected-error stream are machine-global resources, so
        # retry/backoff and fault merging behave identically whether a
        # walk lands on walker 0 or walker 7.
        self.walkers: List[PageTableWalker] = [
            PageTableWalker(page_table, shared_memory, faults=faults)
            for _ in range(num_walkers)
        ]

    @property
    def num_walkers(self) -> int:
        """Pool size."""
        return len(self.walkers)

    def _earliest_free(self, now: int) -> PageTableWalker:
        return min(self.walkers, key=lambda walker: max(walker.busy_until, now))

    def walk_many(self, vpns: Iterable[int], now: int) -> WalkBatchResult:
        """Walk each page on the earliest-free walker; walks overlap."""
        translations: Dict[int, int] = {}
        ready_times: Dict[int, int] = {}
        refs = 0
        finish = now
        for vpn in dict.fromkeys(vpns):
            walker = self._earliest_free(now)
            result = walker.walk(vpn, now)
            if _spans.ENABLED:
                _spans.annotate_walk(
                    vpn, pool_walker=self.walkers.index(walker)
                )
            translations[vpn] = result.pfn
            ready_times[vpn] = result.ready_time
            refs += result.refs
            finish = max(finish, result.ready_time)
        return WalkBatchResult(
            ready_time=finish,
            translations=translations,
            ready_times=ready_times,
            refs=refs,
        )

    def state_dict(self) -> dict:
        return {"walkers": [walker.state_dict() for walker in self.walkers]}

    def load_state(self, state: dict) -> None:
        for walker, walker_state in zip(self.walkers, state["walkers"]):
            walker.load_state(walker_state)

    @property
    def walks(self) -> int:
        """Total walks completed across the pool."""
        return sum(walker.walks for walker in self.walkers)

    @property
    def refs_issued(self) -> int:
        """Total walk loads issued across the pool."""
        return sum(walker.refs_issued for walker in self.walkers)

    @property
    def refs_naive(self) -> int:
        """Loads a naive serial design would have issued."""
        return sum(walker.refs_naive for walker in self.walkers)

    @property
    def total_walk_cycles(self) -> int:
        """Summed per-walk latency across the pool."""
        return sum(walker.total_walk_cycles for walker in self.walkers)

    @property
    def transient_errors(self) -> int:
        """Injected transient walk-load errors across the pool."""
        return sum(walker.transient_errors for walker in self.walkers)

    @property
    def load_retries(self) -> int:
        """Walk-load retries issued across the pool."""
        return sum(walker.load_retries for walker in self.walkers)

    @property
    def walk_timeouts(self) -> int:
        """Timed-out walks across the pool."""
        return sum(walker.walk_timeouts for walker in self.walkers)

    @property
    def average_walk_cycles(self) -> float:
        """Average cycles per completed walk."""
        walks = self.walks
        return self.total_walk_cycles / walks if walks else 0.0
