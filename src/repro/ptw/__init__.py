"""Hardware page table walkers.

The paper's baseline is one serial hardware walker per shader core
(4 dependent loads per 4 KB walk, injected into the shared L2 / DRAM).
The augmented design adds the PTW *scheduler* of Figures 8 and 9: a
comparator tree over the TLB MSHRs that, level by level, deduplicates
repeated upper-level references and issues same-cache-line references
back to back, eliminating 10–20 % of walk loads and raising walk cache
hit rates by 5–8 % (Figure 10).  A walker pool models the multiple-PTW
alternative of Figure 11.
"""

from repro.ptw.walker import PageTableWalker, WalkBatchResult, WalkResult
from repro.ptw.scheduler import ScheduledPageTableWalker, plan_batch
from repro.ptw.multi import WalkerPool

__all__ = [
    "PageTableWalker",
    "WalkBatchResult",
    "WalkResult",
    "ScheduledPageTableWalker",
    "plan_batch",
    "WalkerPool",
]
