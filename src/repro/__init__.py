"""repro: reproduction of "Architectural Support for Address Translation on GPUs".

This package implements, from scratch, a trace-driven GPU timing simulator
with per-shader-core Memory Management Units (TLBs and hardware page table
walkers), cache-conscious wavefront scheduling (CCWS and the paper's
TLB-aware variants TA-CCWS / TCWS), and thread block compaction (TBC and
the paper's TLB-aware variant built on the Common Page Matrix).

Public entry points:

- :mod:`repro.api` — the stable facade: ``simulate`` one (config,
  workload) pair, ``sweep`` a matrix (optionally across a worker pool),
  ``figure`` to regenerate one paper figure.  Re-exported here, so
  ``from repro.api import simulate, sweep, figure`` (or ``from repro
  import simulate``) is the only import most code needs.
- :class:`repro.core.GPUConfig` and friends describe a machine;
  ``GPUConfig.preset("augmented")`` builds the paper's named design
  points.
- :mod:`repro.core.presets` holds the preset factories and
  scheduler/TBC combinators.
- :class:`repro.core.Simulator` runs a workload on a configuration.
- :func:`repro.workloads.get_workload` builds the calibrated synthetic
  workloads standing in for the paper's Rodinia + memcached traces.
- :mod:`repro.harness` regenerates every figure in the evaluation;
  :mod:`repro.parallel` is the sweep engine behind ``jobs=``.
"""

from repro.api import figure, simulate, sweep
from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    PTWConfig,
    TLBConfig,
    TraceConfig,
)
from repro.core.results import SimulationResult, speedup
from repro.core.simulator import Simulator
from repro.workloads import get_workload, workload_names

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "PTWConfig",
    "TLBConfig",
    "TraceConfig",
    "SimulationResult",
    "Simulator",
    "figure",
    "get_workload",
    "simulate",
    "speedup",
    "sweep",
    "workload_names",
]

__version__ = "1.1.0"
