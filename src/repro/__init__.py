"""repro: reproduction of "Architectural Support for Address Translation on GPUs".

This package implements, from scratch, a trace-driven GPU timing simulator
with per-shader-core Memory Management Units (TLBs and hardware page table
walkers), cache-conscious wavefront scheduling (CCWS and the paper's
TLB-aware variants TA-CCWS / TCWS), and thread block compaction (TBC and
the paper's TLB-aware variant built on the Common Page Matrix).

Public entry points:

- :class:`repro.core.GPUConfig` and friends describe a machine.
- :mod:`repro.core.presets` holds the paper's named configurations.
- :class:`repro.core.Simulator` runs a workload on a configuration.
- :func:`repro.workloads.get_workload` builds the calibrated synthetic
  workloads standing in for the paper's Rodinia + memcached traces.
- :mod:`repro.harness` regenerates every figure in the evaluation.
"""

from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    PTWConfig,
    TLBConfig,
    TraceConfig,
)
from repro.core.results import SimulationResult, speedup
from repro.core.simulator import Simulator
from repro.workloads import get_workload, workload_names

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "PTWConfig",
    "TLBConfig",
    "TraceConfig",
    "SimulationResult",
    "Simulator",
    "get_workload",
    "workload_names",
    "speedup",
]

__version__ = "1.0.0"
