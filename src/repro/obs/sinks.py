"""Pluggable trace sinks.

A sink receives every :class:`~repro.obs.events.TraceEvent` the tracer
records and must implement ``record(event)`` and ``close()``.  Four
implementations cover the observability spectrum:

- :class:`NullSink` — drops everything (the default; with no tracer
  installed the hot paths pay only a module-flag boolean check and never
  construct events at all).
- :class:`RingBufferSink` — bounded in-memory buffer, queryable from
  tests and the post-hoc histogram derivations.
- :class:`JsonlSink` — streams one JSON object per line to a file.
- :class:`ChromeTraceSink` — emits Chrome trace-event JSON loadable in
  Perfetto / ``chrome://tracing``, one process per core and one thread
  per hardware track (tlb, walker, mshr, dram...).
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import COUNTER_KINDS, SPAN, TraceEvent


class NullSink:
    """Accepts and discards every event."""

    def record(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory.

    The hot path is :meth:`record_raw`: the tracer hands over the
    *constructor tuple* of a :class:`TraceEvent` rather than the event
    itself, and the sink materializes event objects lazily — only the
    retained window is ever constructed, so a run emitting millions of
    events builds at most ``capacity`` of them (plus whatever a mid-run
    reader like the hang watchdog asks for).  Storage is a plain list
    trimmed amortized at ``2 * capacity``; readers always see exactly
    the newest ``capacity`` entries.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are dropped (and counted
        in :attr:`dropped`) once the buffer is full.
    """

    def __init__(self, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._raw: List = []  # TraceEvent | constructor tuple, mixed
        self._trim_at = 2 * capacity
        self._trimmed = 0
        self._rebuild_record()

    def _rebuild_record(self) -> None:
        """(Re)build :meth:`record_raw` as a closure over the storage
        list — one append, one length check, no attribute loads per
        event.  The check runs after every append, so at trim time the
        list holds exactly ``2 * capacity`` items and the cut is always
        the oldest ``capacity`` of them."""
        raw = self._raw
        append = raw.append
        trim_at = self._trim_at
        capacity = self.capacity
        sink = self

        def record_raw(item) -> None:
            append(item)
            if len(raw) >= trim_at:
                del raw[:capacity]
                sink._trimmed += capacity

        self.record_raw = record_raw

    def record(self, event: TraceEvent) -> None:
        self.record_raw(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return min(len(self._raw), self.capacity)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (retained or dropped)."""
        return self._trimmed + len(self._raw)

    @property
    def dropped(self) -> int:
        """Events pushed out of the buffer by newer ones."""
        return self.recorded - len(self)

    def events(self, kind: Optional[str] = None, core: Optional[int] = None) -> List[TraceEvent]:
        """Retained events, optionally filtered by kind and/or core."""
        raw = self._raw
        if len(raw) > self.capacity:
            raw = raw[-self.capacity :]
        out = [
            e if isinstance(e, TraceEvent) else TraceEvent(*e) for e in raw
        ]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if core is not None:
            out = [e for e in out if e.core == core]
        return out

    def clear(self) -> None:
        """Drop all retained events (the drop/record counters persist)."""
        self._trimmed += len(self._raw)
        self._raw.clear()

    def state_dict(self) -> dict:
        """Snapshot retained events and the recorded total, so post-hoc
        histograms over a resumed run see the same event stream."""
        return {
            "events": [event.as_dict() for event in self.events()],
            "recorded": self.recorded,
        }

    def load_state(self, state: dict) -> None:
        # Restore IN PLACE: the tracer's installed fast path (and any
        # hot loop that grabbed it) closes over the storage *list
        # object*, so replacing the list would silently divert every
        # post-restore event into an orphan.
        self._raw[:] = [
            TraceEvent(
                entry["kind"],
                entry["cycle"],
                core=entry.get("core", -1),
                track=entry.get("track", "core"),
                dur=entry.get("dur"),
                args=entry.get("args"),
            )
            for entry in state["events"]
        ]
        self._trimmed = state["recorded"] - len(self._raw)


class JsonlSink:
    """Streams events as JSON Lines to ``path`` (or a file-like object)."""

    def __init__(self, path_or_file: Union[str, io.TextIOBase]):
        if isinstance(path_or_file, (str, bytes)):
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
            self.path: Optional[str] = str(path_or_file)
        else:
            self._file = path_or_file
            self._owns_file = False
            self.path = getattr(path_or_file, "name", None)
        self.written = 0

    def record(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.as_dict(), sort_keys=True))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()
        elif not self._file.closed:
            self._file.flush()


class ChromeTraceSink:
    """Accumulates Chrome trace-event JSON and writes it on ``close``.

    Mapping from simulator events to the trace-event format:

    - ``<kind>_begin`` / ``<kind>_end`` pairs (matched by their
      ``id``/``vpn`` argument on the same core+track) become one
      complete ``"X"`` span; unmatched halves degrade to instants.
    - ``span`` events (:mod:`repro.obs.spans` request-tree nodes)
      become ``"X"`` slices named by their ``op`` arg, plus paired
      ``"s"``/``"f"`` flow events binding parent to child slices (the
      arrows Perfetto draws along the request's causal chain); the
      ``flow_out``/``flow_in`` args carry the shared flow ids.
    - Events with ``dur`` set become ``"X"`` spans directly.
    - Counter kinds become ``"C"`` counter samples.
    - Everything else becomes a thread-scoped instant ``"i"``.

    One trace-event *process* per simulated core, one *thread* per
    track; ``process_name``/``thread_name`` metadata events label them
    for Perfetto.  Timestamps are simulated cycles (Perfetto displays
    them as microseconds; only relative placement matters).
    """

    def __init__(self, path_or_file: Union[str, io.TextIOBase]):
        self._path_or_file = path_or_file
        self._events: List[Dict[str, Any]] = []
        self._open_spans: Dict[tuple, TraceEvent] = {}
        self._tids: Dict[tuple, int] = {}
        self._named_pids: set = set()
        self.path = path_or_file if isinstance(path_or_file, str) else None
        self.closed = False

    # -- track bookkeeping ---------------------------------------------

    def _tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        tid = self._tids.get(key)
        if tid is not None:
            return tid
        if pid not in self._named_pids:
            self._named_pids.add(pid)
            self._events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"core{pid}" if pid >= 0 else "machine"},
                }
            )
        tid = sum(1 for (p, _t) in self._tids if p == pid)
        self._tids[key] = tid
        self._events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
        return tid

    # -- event mapping -------------------------------------------------

    def _emit(
        self,
        name: str,
        ph: str,
        ts: int,
        pid: int,
        tid: int,
        args: Dict[str, Any],
        dur: Optional[int] = None,
    ) -> None:
        out: Dict[str, Any] = {
            "name": name,
            "ph": ph,
            "ts": ts,
            "pid": pid,
            "tid": tid,
        }
        if dur is not None:
            out["dur"] = dur
        if ph == "i":
            out["s"] = "t"  # thread-scoped instant
        if args:
            out["args"] = dict(args)
        self._events.append(out)

    def _record_span(self, event: TraceEvent, pid: int, tid: int) -> None:
        """One request-tree node: an ``"X"`` slice plus flow bindings."""
        args = dict(event.args)
        name = args.pop("op", "span")
        flow_in = args.pop("flow_in", None)
        flow_out = args.pop("flow_out", None)
        self._emit(name, "X", event.cycle, pid, tid, args, dur=event.dur or 0)
        # Flow events must share name+cat+id to pair; the start point
        # sits at the parent slice's begin, the finish at the child's.
        if flow_in is not None:
            self._events.append(
                {
                    "name": "span_flow",
                    "cat": "span",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_in,
                    "ts": event.cycle,
                    "pid": pid,
                    "tid": tid,
                }
            )
        for fid in flow_out if flow_out is not None else ():
            self._events.append(
                {
                    "name": "span_flow",
                    "cat": "span",
                    "ph": "s",
                    "id": fid,
                    "ts": event.cycle,
                    "pid": pid,
                    "tid": tid,
                }
            )

    def record(self, event: TraceEvent) -> None:
        pid = event.core
        tid = self._tid(pid, event.track)
        kind = event.kind
        if kind == SPAN:
            self._record_span(event, pid, tid)
            return
        if kind.endswith("_begin"):
            base = kind[: -len("_begin")]
            self._open_spans[(base, pid, event.track, event.span_id)] = event
            return
        if kind.endswith("_end"):
            base = kind[: -len("_end")]
            begin = self._open_spans.pop(
                (base, pid, event.track, event.span_id), None
            )
            if begin is not None:
                args = dict(begin.args)
                args.update(event.args)
                self._emit(
                    base,
                    "X",
                    begin.cycle,
                    pid,
                    tid,
                    args,
                    dur=max(0, event.cycle - begin.cycle),
                )
            else:
                self._emit(kind, "i", event.cycle, pid, tid, event.args)
            return
        if kind in COUNTER_KINDS:
            numeric = {
                k: v
                for k, v in event.args.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            self._emit(kind, "C", event.cycle, pid, tid, numeric or {"value": 0})
            return
        if event.dur is not None:
            self._emit(kind, "X", event.cycle, pid, tid, event.args, dur=event.dur)
            return
        self._emit(kind, "i", event.cycle, pid, tid, event.args)

    def close(self) -> None:
        if self.closed:
            return
        # Spans whose end never arrived (e.g. a truncated run) degrade
        # to instants rather than being silently lost.
        for (base, pid, track, _span), begin in sorted(
            self._open_spans.items(), key=lambda kv: kv[1].cycle
        ):
            self._emit(
                f"{base}_begin",
                "i",
                begin.cycle,
                pid,
                self._tid(pid, track),
                begin.args,
            )
        self._open_spans.clear()
        if isinstance(self._path_or_file, (str, bytes)):
            with open(self._path_or_file, "w", encoding="utf-8") as f:
                json.dump(self._events, f)
        else:
            json.dump(self._events, self._path_or_file)
        self.closed = True
