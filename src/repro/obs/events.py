"""Typed trace events emitted by the instrumented simulator components.

Every event carries the simulated ``cycle`` it occurred at, the ``core``
it belongs to (-1 for machine-global events), a ``track`` naming the
hardware structure that produced it (one Perfetto thread per track), an
optional ``dur`` for span events whose full extent is known at emission
time, and a free-form ``args`` payload.

Event kinds come in three shapes:

- *instants* (``tlb_lookup``, ``mshr_alloc``, ...) — a point in time;
- *spans* — either a single event with ``dur`` set, or a
  ``<kind>_begin`` / ``<kind>_end`` pair matched by their ``id`` (or
  ``vpn``) argument;
- *counters* (``walk_queue``, ``interval_sample``) — numeric time
  series rendered as Perfetto counter tracks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

# -- event kinds -------------------------------------------------------

TLB_LOOKUP = "tlb_lookup"
TLB_MISS_BEGIN = "tlb_miss_begin"
TLB_MISS_END = "tlb_miss_end"
WALK_BEGIN = "walk_begin"
WALK_STEP = "walk_step"
WALK_END = "walk_end"
MSHR_ALLOC = "mshr_alloc"
MSHR_MERGE = "mshr_merge"
MSHR_RETIRE = "mshr_retire"
WARP_STALL_BEGIN = "warp_stall_begin"
WARP_STALL_END = "warp_stall_end"
DRAM_ACCESS = "dram_access"
SCHEDULER_DECISION = "scheduler_decision"
CACHE_ACCESS = "cache_access"
MEM_COALESCE = "mem_coalesce"
WALK_QUEUE = "walk_queue"
INTERVAL_SAMPLE = "interval_sample"
PAGE_FAULT = "page_fault"
FAULT_INJECT = "fault_inject"
HANG_DUMP = "hang_dump"
SWEEP_CELL = "sweep_cell"
SWEEP_PROGRESS = "sweep_progress"
#: One node of a :mod:`repro.obs.spans` request tree (``dur`` set; the
#: ``op`` arg names the component, ``flow_in``/``flow_out`` args carry
#: parent→child flow-event ids for the Chrome sink).
SPAN = "span"

#: Every kind the instrumentation emits (sinks accept unknown kinds too,
#: so downstream tooling can filter without the tracer gatekeeping).
KINDS = frozenset(
    {
        TLB_LOOKUP,
        TLB_MISS_BEGIN,
        TLB_MISS_END,
        WALK_BEGIN,
        WALK_STEP,
        WALK_END,
        MSHR_ALLOC,
        MSHR_MERGE,
        MSHR_RETIRE,
        WARP_STALL_BEGIN,
        WARP_STALL_END,
        DRAM_ACCESS,
        SCHEDULER_DECISION,
        CACHE_ACCESS,
        MEM_COALESCE,
        WALK_QUEUE,
        INTERVAL_SAMPLE,
        PAGE_FAULT,
        FAULT_INJECT,
        HANG_DUMP,
        SWEEP_CELL,
        SWEEP_PROGRESS,
        SPAN,
    }
)

#: Kinds rendered as Perfetto counter tracks (``ph: "C"``).
COUNTER_KINDS = frozenset({WALK_QUEUE, INTERVAL_SAMPLE, SWEEP_PROGRESS})


class TraceEvent:
    """One simulator event.  Deliberately a plain slotted class: events
    are created on hot paths, so construction must stay cheap."""

    __slots__ = ("kind", "cycle", "core", "track", "dur", "args")

    def __init__(
        self,
        kind: str,
        cycle: int,
        core: int = -1,
        track: str = "core",
        dur: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.kind = kind
        self.cycle = cycle
        self.core = core
        self.track = track
        self.dur = dur
        self.args = args if args is not None else {}

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form (JSONL sink line format)."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "cycle": self.cycle,
            "core": self.core,
            "track": self.track,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    @property
    def span_id(self):
        """Pairing key for ``_begin``/``_end`` events."""
        args = self.args
        return args.get("id", args.get("vpn"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.kind!r}, cycle={self.cycle}, core={self.core}, "
            f"track={self.track!r}, dur={self.dur}, args={self.args!r})"
        )
