"""Causal request spans: where each translation's latency went.

The tracer (:mod:`repro.obs.tracer`) emits *flat* events; this layer
records *parent-linked span trees* in simulated cycles, one tree per
TLB-missing translation, following the request through

    coalescer → TLB probe → PTW queue wait (or MSHR merge) →
    per-level walker loads → L1/L2/DRAM line fills → warp wakeup

with cause annotations along the way (walk-queue depth at enqueue,
MSHR merges, demand faults and injected shootdowns, the active warp
scheduler policy).  The direct children of each tree's root *tile* the
root interval exactly — no gaps, no overlap — so the components are an
additive decomposition of the observed end-to-end latency; the
recorder verifies the identity per request and counts any violation in
:attr:`SpanRecorder.mismatches` (the critical-path analyzer and CI
assert it stays zero).

Hot-path contract (the :mod:`repro.obs.tracer` pattern, via the shared
:class:`repro.obs.switch.ModuleSwitch`)
---------------------------------------------------------------------
Instrumented components guard every touch with the module flag::

    from repro.obs import spans as _spans
    ...
    if _spans.ENABLED:
        _spans.note_walk(vpn, _spans.WalkDetail(...))

With no recorder installed ``ENABLED`` is False, so the disabled cost
is one module-attribute load and one branch — no span objects, no
dictionaries.  Recording only *reads* simulated state (all component
timestamps are already computed synchronously by the timing model), so
results are byte-identical with spans on or off
(``tests/obs/test_spans.py`` pins this against golden files).

Because every timestamp is known by the time the owning shader core
computes a warp's completion cycle, spans are assembled after the
fact rather than opened/closed around code: the walkers deposit a
:class:`WalkDetail` keyed by vpn in the recorder's scratch, and the
core pops it while building the tree.
"""

from __future__ import annotations

import contextlib
import heapq
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.switch import ModuleSwitch
from repro.stats.histograms import Histogram

# -- component names ---------------------------------------------------

#: [instruction issue, translation available from the TLB] — port
#: arbitration plus the SRAM lookup itself.
TLB_PROBE = "tlb_probe"
#: [TLB miss, walker accepts the walk] — waiting behind earlier walks.
PTW_QUEUE = "ptw_queue"
#: This miss merged into another warp's in-flight walk MSHR.
MSHR_MERGE = "mshr_merge"
#: OS demand-fault handler running before the hardware walk starts.
PAGE_FAULT = "page_fault"
#: One paging level's loads; rendered as ``walk_l0`` ... ``walk_l3``.
WALK_LEVEL = "walk_l{level}"
#: Stall inside/after the walk on a still-running fault handler (or a
#: timed-out walk waiting to retry).
FAULT_WAIT = "fault_wait"
#: [translation ready, last line fill] — the actual data accesses.
MEMORY = "memory"
#: [own data ready, warp wakeup] — slack waiting on the instruction's
#: other pages/lines before the warp reschedules.
WAKEUP = "wakeup"

#: Canonical component ordering for reports (walk levels slot between
#: page_fault and fault_wait, ordered by level).
COMPONENT_ORDER = (
    TLB_PROBE,
    PTW_QUEUE,
    MSHR_MERGE,
    PAGE_FAULT,
    "walk_l0",
    "walk_l1",
    "walk_l2",
    "walk_l3",
    FAULT_WAIT,
    MEMORY,
    WAKEUP,
)


class Span:
    """One node of a request tree: a named simulated-cycle interval.

    Deliberately a plain slotted class — spans are built on the memory
    path whenever recording is enabled, so construction must stay
    cheap.
    """

    __slots__ = ("name", "start", "end", "args", "children")

    def __init__(
        self,
        name: str,
        start: int,
        end: int,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.start = start
        self.end = end
        self.args = args if args is not None else {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> int:
        return self.end - self.start

    def add(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe nested form."""
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
        }
        if self.args:
            out["args"] = dict(self.args)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def walk(self) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal."""
        stack: List[Tuple[int, Span]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.start}..{self.end}, "
            f"children={len(self.children)})"
        )


class WalkDetail:
    """A walker's per-vpn timing handoff to the owning shader core.

    The walkers know the queueing, fault, and per-level timing of a
    walk; the shader core knows the request's probe/memory/wakeup
    context.  A ``WalkDetail`` carries the former to the latter through
    the recorder's scratch (keyed by walker-level vpn).

    Attributes
    ----------
    enqueued:
        Cycle the walk was requested (the TLB miss time, or the fault
        retry time for re-batched faulting walks).
    queue_end:
        Cycle the walker accepted the walk (end of queueing).
    start:
        Cycle the hardware walk began (deferred past the OS handler on
        a demand fault).
    segments:
        ``(level, start, end)`` per issued load / per level barrier, in
        issue order.  Gaps between consecutive segments (fault-handler
        or timeout-retry stalls) become ``fault_wait`` components.
    ready:
        Cycle the translation became architecturally visible (includes
        any trailing fault-handler wait).
    args:
        Cause annotations (queue depth, refs, eliminated refs, fault
        flags, pool walker index, ...).
    """

    __slots__ = ("enqueued", "queue_end", "start", "segments", "ready", "args")

    def __init__(
        self,
        enqueued: int,
        queue_end: int,
        start: int,
        segments: List[Tuple[int, int, int]],
        ready: int,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.enqueued = enqueued
        self.queue_end = queue_end
        self.start = start
        self.segments = segments
        self.ready = ready
        self.args = args if args is not None else {}


class SpanRecorder:
    """Aggregates request trees: component totals, histograms, top-K.

    Parameters
    ----------
    keep_slowest:
        Full span trees retained for the slowest-translations report
        (a min-heap keeps memory bounded on long runs).
    """

    def __init__(self, keep_slowest: int = 10):
        self.keep_slowest = keep_slowest
        self.requests = 0
        self.total_cycles = 0
        #: Requests whose components did not tile the root exactly —
        #: must stay 0; any violation is an instrumentation bug.
        self.mismatches = 0
        self.component_cycles: Dict[str, int] = {}
        self.component_counts: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._slowest: List[Tuple[int, int, Span]] = []
        self._seq = 0
        # Walker → shader-core handoff scratch, keyed by walker vpn.
        self._walk_details: Dict[int, WalkDetail] = {}

    # -- walker handoff ------------------------------------------------

    def note_walk(self, vpn: int, detail: WalkDetail) -> None:
        self._walk_details[vpn] = detail

    def annotate_walk(self, vpn: int, **args: Any) -> None:
        detail = self._walk_details.get(vpn)
        if detail is not None:
            detail.args.update(args)

    def pop_walk(self, vpn: int) -> Optional[WalkDetail]:
        """Claim the detail for ``vpn`` (None ⇒ the miss merged into an
        already-in-flight walk and never reached a walker)."""
        return self._walk_details.pop(vpn, None)

    # -- recording -----------------------------------------------------

    def _hist(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(
                name, unit="cycles", pow2=True
            )
        return hist

    def record(self, root: Span) -> None:
        """Fold one completed request tree into the aggregates.

        Verifies the additive-decomposition invariant: the root's
        direct children must tile ``[root.start, root.end]`` exactly.
        """
        total = root.duration
        covered = 0
        edge = root.start
        exact = True
        cycles = self.component_cycles
        counts = self.component_counts
        histograms = self.histograms
        for child in root.children:
            start = child.start
            if start != edge:
                exact = False
            dur = child.end - start
            covered += dur
            edge = child.end
            name = child.name
            cycles[name] = cycles.get(name, 0) + dur
            counts[name] = counts.get(name, 0) + 1
            hist = histograms.get(name)
            if hist is None:
                hist = self._hist(name)
            hist.add(dur)
        if not exact or covered != total or edge != root.end:
            self.mismatches += 1
        self.requests += 1
        self.total_cycles += total
        self._hist("end_to_end").add(total)
        self._seq += 1
        if self.keep_slowest > 0:
            entry = (total, self._seq, root)
            if len(self._slowest) < self.keep_slowest:
                heapq.heappush(self._slowest, entry)
            elif entry[0] > self._slowest[0][0]:
                heapq.heapreplace(self._slowest, entry)

    # -- results -------------------------------------------------------

    @property
    def slowest(self) -> List[Span]:
        """Retained request trees, slowest first."""
        return [
            root
            for _total, _seq, root in sorted(
                self._slowest, key=lambda e: (-e[0], e[1])
            )
        ]

    def component_names(self) -> List[str]:
        """Observed component names in canonical report order."""
        known = [n for n in COMPONENT_ORDER if n in self.component_cycles]
        extra = sorted(set(self.component_cycles) - set(known))
        return known + extra


# -- module fast path --------------------------------------------------

#: Fast-path flag: True exactly while a recorder is installed.
ENABLED = False

_ACTIVE: Optional[SpanRecorder] = None

_SWITCH = ModuleSwitch(__name__)


def install(recorder: SpanRecorder) -> None:
    """Make ``recorder`` active and raise the fast-path flag."""
    _SWITCH.install(recorder)


def uninstall() -> None:
    """Deactivate span recording; the fast path returns to one branch."""
    _SWITCH.uninstall()


def active() -> Optional[SpanRecorder]:
    """The installed recorder, or None."""
    return _ACTIVE


# -- module-level forwarding (what instrumentation sites call) ---------


def note_walk(vpn: int, detail: WalkDetail) -> None:
    """Deposit a walk's timing detail on the active recorder."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.note_walk(vpn, detail)


def annotate_walk(vpn: int, **args: Any) -> None:
    """Attach cause annotations to a deposited walk detail."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.annotate_walk(vpn, **args)


def pop_walk(vpn: int) -> Optional[WalkDetail]:
    """Claim a walk detail from the active recorder."""
    recorder = _ACTIVE
    if recorder is not None:
        return recorder.pop_walk(vpn)
    return None


def record(root: Span) -> None:
    """Record one completed request tree on the active recorder."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.record(root)


# -- user-facing sugar -------------------------------------------------


@contextlib.contextmanager
def record_spans(
    recorder: Optional[SpanRecorder] = None, keep_slowest: int = 10
):
    """Install a span recorder for the ``with`` body and yield it::

        with repro.obs.spans.record_spans() as rec:
            simulate(config="augmented", workload="bfs")
        print(rec.component_cycles)

    Restores the previously installed recorder (if any) on exit, so
    recorded sections nest safely.
    """
    if recorder is None:
        recorder = SpanRecorder(keep_slowest=keep_slowest)
    previous = _ACTIVE
    install(recorder)
    try:
        yield recorder
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)
