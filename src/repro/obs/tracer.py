"""The tracer: module-level fast path plus the sink fan-out.

Hot-path contract
-----------------
Instrumented components guard every emission with the module flag::

    from repro.obs import tracer as _trace
    ...
    if _trace.ENABLED:
        _trace.emit(events.TLB_LOOKUP, vpn=vpn, hit=True)

With no tracer installed ``ENABLED`` is False, so the disabled cost is
one module-attribute load and one branch — no event objects, no calls.
Tracing never touches simulated state, so cycle counts are identical
with tracing on or off (``tests/obs/test_overhead.py`` asserts this).

Timing context
--------------
Components without their own clock (the TLB, the caches, the MSHR file
in some paths) stamp events with the module-level :data:`NOW` /
:data:`CORE` context, which the owning shader core refreshes as its
clock advances.  Cores execute sequentially in this simulator, so the
context is unambiguous.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.events import TraceEvent
from repro.obs.sinks import ChromeTraceSink, JsonlSink, NullSink, RingBufferSink
from repro.obs.switch import ModuleSwitch

#: Fast-path flag: True exactly while a tracer is installed.
ENABLED = False

#: Current simulated cycle, maintained by the executing shader core for
#: components that do not carry their own clock.
NOW = 0

#: Core whose timeline is currently executing (-1 outside any core).
CORE = -1

_ACTIVE: Optional["Tracer"] = None


def _record_disabled(raw) -> None:  # pragma: no cover - guarded by ENABLED
    raise RuntimeError("no tracer installed")


#: Per-event dispatch target while a tracer is installed: a callable
#: taking one :class:`TraceEvent` *constructor tuple* ``(kind, cycle,
#: core, track, dur, args)``.  For the common ring-buffer-only tracer
#: this is the ring's ``record_raw`` (no event object is constructed at
#: all — the ring materializes its retained window lazily); otherwise a
#: fan-out that builds the event once and feeds every sink.  Hot loops
#: that already know their stamps may call it directly instead of
#: :func:`emit`, skipping one call frame per event.
RECORD = _record_disabled


def _reset_context() -> None:
    global NOW, CORE, RECORD
    NOW = 0
    CORE = -1
    RECORD = _record_disabled


_SWITCH = ModuleSwitch(__name__, on_uninstall=_reset_context)


class Tracer:
    """Fans recorded events out to its sinks."""

    def __init__(self, sinks: Optional[List] = None):
        self.sinks = list(sinks) if sinks is not None else [NullSink()]

    def record(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.record(event)

    def _fast_record(self):
        """The per-raw-tuple dispatch :data:`RECORD` publishes while
        this tracer is installed."""
        if len(self.sinks) == 1 and isinstance(self.sinks[0], RingBufferSink):
            return self.sinks[0].record_raw
        sinks = self.sinks

        def fanout(raw: tuple) -> None:
            event = TraceEvent(*raw)
            for sink in sinks:
                sink.record(event)

        return fanout

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def ring(self) -> Optional[RingBufferSink]:
        """The first ring-buffer sink, if any (histograms read it)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the active tracer and raise the fast-path flag."""
    global RECORD
    RECORD = tracer._fast_record()
    _SWITCH.install(tracer)


def uninstall() -> None:
    """Deactivate tracing; the fast path returns to a single branch."""
    _SWITCH.uninstall()


def active() -> Optional[Tracer]:
    """The installed tracer, or None."""
    return _ACTIVE


def emit(
    kind: str,
    cycle: Optional[int] = None,
    core: Optional[int] = None,
    track: str = "core",
    dur: Optional[int] = None,
    **args,
) -> None:
    """Record one event on the active tracer (no-op when none is).

    ``cycle``/``core`` default to the module context (:data:`NOW` /
    :data:`CORE`) so clock-less components can emit without plumbing.
    """
    if _ACTIVE is None:
        return
    RECORD(
        (
            kind,
            NOW if cycle is None else cycle,
            CORE if core is None else core,
            track,
            dur,
            args,
        )
    )


def build_tracer(trace_config) -> Tracer:
    """Construct a tracer from a ``TraceConfig``-shaped object.

    Reads ``ring_capacity`` (0 disables the ring buffer),
    ``jsonl_path`` and ``chrome_path`` (None disables each file sink).
    Duck-typed so :mod:`repro.obs` never imports :mod:`repro.core`.
    """
    sinks: List = []
    capacity = getattr(trace_config, "ring_capacity", 0)
    if capacity:
        sinks.append(RingBufferSink(capacity))
    jsonl_path = getattr(trace_config, "jsonl_path", None)
    if jsonl_path:
        sinks.append(JsonlSink(jsonl_path))
    chrome_path = getattr(trace_config, "chrome_path", None)
    if chrome_path:
        sinks.append(ChromeTraceSink(chrome_path))
    if not sinks:
        sinks.append(NullSink())
    return Tracer(sinks)
