"""Structured, leveled run logs (the operational complement to traces).

Traces (:mod:`repro.obs.tracer`) answer *what the simulated hardware
did*; run logs answer *what the host process did*: which runs started
on which engine, which workers died, which jobs were admitted, leased,
or dropped.  Every record is an ``event`` name plus key=value fields,
carrying the emitting site's bound context — run/job/cell ids, engine,
config hash, seed — so a JSONL log from a crashed sweep can be joined
against journals and metrics without parsing prose.

Hot-path contract (the :mod:`repro.obs.tracer` pattern)
-------------------------------------------------------
Logging is off by default and instrumented components hold a bound
:class:`RunLogger`; emission costs one module-flag check when
disabled::

    from repro.obs import log as _log

    logger = _log.get_logger("simulator", engine="event")
    ...
    if _log.ENABLED:
        logger.info("run_start", workload="bfs", seed=7)

Levels are the standard four (``DEBUG`` < ``INFO`` < ``WARNING`` <
``ERROR``); records below the configured level are dropped at the
emission site.  Run logs never touch simulated state — results are
byte-identical with logging on or off.

Configuration
-------------
:func:`configure` installs sinks programmatically; CLI entry points
call :func:`configure_from_env`, which reads:

- ``REPRO_LOG_LEVEL`` — ``debug`` / ``info`` / ``warning`` / ``error``
  (presence enables text logging to stderr at that level);
- ``REPRO_LOG_JSONL`` — path; every record is appended as one JSON
  object per line (enables logging at INFO unless ``REPRO_LOG_LEVEL``
  says otherwise).
"""

from __future__ import annotations

import io
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Union

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "DEBUG", INFO: "INFO", WARNING: "WARNING", ERROR: "ERROR"}
_NAME_LEVELS = {name.lower(): level for level, name in _LEVEL_NAMES.items()}

#: Fast-path flag: True exactly while a sink is configured.  Emission
#: sites guard on this, so the disabled cost is one module-attribute
#: load and one branch.
ENABLED = False

#: Minimum level a record needs to be written.
LEVEL = INFO

_SINKS: List["LogSink"] = []


def level_name(level: int) -> str:
    return _LEVEL_NAMES.get(level, str(level))


def parse_level(name: Union[str, int]) -> int:
    """``"debug"``/``"INFO"``/numeric → numeric level (ValueError else)."""
    if isinstance(name, int):
        return name
    level = _NAME_LEVELS.get(str(name).strip().lower())
    if level is None:
        raise ValueError(
            f"unknown log level {name!r}; one of {sorted(_NAME_LEVELS)}"
        )
    return level


class TextLogSink:
    """Human-readable lines: ``HH:MM:SS LEVEL event key=value ...``."""

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream if stream is not None else sys.stderr

    def write(self, record: Dict[str, Any]) -> None:
        ts = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
        parts = [
            ts,
            f"{level_name(record['level']):7s}",
            record["event"],
        ]
        for key, value in record.items():
            if key in ("ts", "level", "event"):
                continue
            parts.append(f"{key}={value}")
        try:
            self._stream.write(" ".join(parts) + "\n")
        except ValueError:  # closed stream (interpreter teardown)
            pass

    def close(self) -> None:
        try:
            self._stream.flush()
        except (ValueError, OSError):
            pass


class JsonlLogSink:
    """One JSON object per record, appended to ``path`` (crash-safe:
    each record is flushed, so a SIGKILL loses at most the line being
    written — the same durability story as the serve journal)."""

    def __init__(self, path_or_file: Union[str, io.TextIOBase]):
        if isinstance(path_or_file, (str, bytes)):
            self._file = open(path_or_file, "a", encoding="utf-8")
            self._owns_file = True
            self.path: Optional[str] = str(path_or_file)
        else:
            self._file = path_or_file
            self._owns_file = False
            self.path = getattr(path_or_file, "name", None)
        self.written = 0

    def write(self, record: Dict[str, Any]) -> None:
        out = dict(record)
        out["level"] = level_name(record["level"])
        try:
            self._file.write(json.dumps(out, sort_keys=True, default=str))
            self._file.write("\n")
            self._file.flush()
        except ValueError:
            return
        self.written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()


LogSink = Union[TextLogSink, JsonlLogSink]


class RunLogger:
    """A named logger carrying bound context fields.

    ``bind(**fields)`` derives a child whose records merge the parent's
    context — the idiom for threading run/job/cell identity through a
    subsystem without plumbing arguments::

        logger = get_logger("serve")
        job_log = logger.bind(job_id=job.id, engine=job.engine)
        job_log.info("lease_granted", worker=worker_id)

    Loggers are cheap, immutable, and safe to keep across
    ``configure``/``reset`` cycles: emission reads the module state at
    call time.
    """

    __slots__ = ("name", "context")

    def __init__(self, name: str, context: Optional[Dict[str, Any]] = None):
        self.name = name
        self.context = dict(context) if context else {}

    def bind(self, **fields: Any) -> "RunLogger":
        merged = dict(self.context)
        merged.update(fields)
        return RunLogger(self.name, merged)

    def log(self, level: int, event: str, **fields: Any) -> None:
        if not ENABLED or level < LEVEL:
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "event": event,
            "logger": self.name,
        }
        record.update(self.context)
        record.update(fields)
        for sink in _SINKS:
            sink.write(record)

    def debug(self, event: str, **fields: Any) -> None:
        self.log(DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(ERROR, event, **fields)


def get_logger(name: str, **context: Any) -> RunLogger:
    """A :class:`RunLogger` named ``name`` with ``context`` pre-bound."""
    return RunLogger(name, context)


def configure(
    level: Union[str, int] = INFO,
    stream: Optional[TextIO] = None,
    jsonl_path: Optional[Union[str, io.TextIOBase]] = None,
    text: bool = True,
) -> None:
    """Install log sinks and raise the fast-path flag.

    Replaces any previous configuration.  ``text=False`` suppresses
    the stderr text sink (JSONL-only logging).
    """
    global ENABLED, LEVEL
    reset()
    sinks: List[LogSink] = []
    if text:
        sinks.append(TextLogSink(stream))
    if jsonl_path is not None:
        sinks.append(JsonlLogSink(jsonl_path))
    if not sinks:
        return
    _SINKS.extend(sinks)
    LEVEL = parse_level(level)
    ENABLED = True


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Configure from ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_JSONL``.

    Returns True when either variable enabled logging.  CLI entry
    points call this once at startup; with neither variable set,
    logging stays off and costs one branch per site.
    """
    env = environ if environ is not None else os.environ
    level = env.get("REPRO_LOG_LEVEL")
    jsonl = env.get("REPRO_LOG_JSONL")
    if not level and not jsonl:
        return False
    configure(
        level=parse_level(level) if level else INFO,
        jsonl_path=jsonl or None,
        text=bool(level),
    )
    return True


def reset() -> None:
    """Close sinks and return to the disabled fast path."""
    global ENABLED, LEVEL
    ENABLED = False
    LEVEL = INFO
    for sink in _SINKS:
        try:
            sink.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
    _SINKS.clear()


def sinks() -> List[LogSink]:
    """The configured sinks (tests and the dashboard introspect them)."""
    return list(_SINKS)
