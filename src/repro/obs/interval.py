"""Interval metrics: periodic snapshots of per-core counter deltas.

The simulator's clock fast-forwards over idle spans, so the sampler is
driven from the core's issue loop: every time the clock crosses an
``interval_cycles`` boundary it appends a row of *deltas* (instructions
issued, TLB misses taken, stall cycles accumulated...) since the
previous row.  When one clock jump crosses several boundaries, the
whole delta lands on the first crossed boundary and the remaining rows
read zero — the series stays aligned to the boundary grid either way.

Rows are plain dicts so they serialize into
:attr:`repro.core.results.SimulationResult.interval_series` untouched.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs import tracer as _trace
from repro.obs.events import INTERVAL_SAMPLE

#: CoreStats counters sampled by default (each row stores its delta).
DEFAULT_FIELDS: Tuple[str, ...] = (
    "instructions",
    "memory_instructions",
    "tlb_lookups",
    "tlb_hits",
    "tlb_misses",
    "tlb_miss_stall_cycles",
    "walks",
    "idle_cycles",
)


class IntervalSampler:
    """Snapshots counter deltas every ``interval_cycles`` cycles.

    Parameters
    ----------
    interval_cycles:
        Sampling period (must be positive).
    core_id:
        Stamped into every row (and onto the emitted counter events).
    fields:
        CoreStats attribute names to sample.
    """

    def __init__(
        self,
        interval_cycles: int,
        core_id: int = 0,
        fields: Tuple[str, ...] = DEFAULT_FIELDS,
    ):
        if interval_cycles <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval_cycles
        self.core_id = core_id
        self.fields = tuple(fields)
        self.rows: List[Dict[str, int]] = []
        self._next = interval_cycles
        self._last = {name: 0 for name in self.fields}

    def _sample(self, cycle: int, stats) -> None:
        row: Dict[str, int] = {"core": self.core_id, "cycle": cycle}
        for name in self.fields:
            current = getattr(stats, name)
            row[name] = current - self._last[name]
            self._last[name] = current
        self.rows.append(row)
        if _trace.ENABLED:
            _trace.emit(
                INTERVAL_SAMPLE,
                cycle=cycle,
                core=self.core_id,
                track="interval",
                **{name: row[name] for name in self.fields},
            )

    def maybe_sample(self, now: int, stats) -> None:
        """Emit a row for every interval boundary at or before ``now``."""
        while now >= self._next:
            self._sample(self._next, stats)
            self._next += self.interval

    def finalize(self, now: int, stats) -> None:
        """Flush the partial tail interval (if anything accrued)."""
        self.maybe_sample(now, stats)
        if any(getattr(stats, name) != self._last[name] for name in self.fields):
            self._sample(now, stats)

    def on_counter_reset(self) -> None:
        """The core restarted its counters (end of warmup): realign the
        baselines so the next row's deltas stay non-negative."""
        self._last = {name: 0 for name in self.fields}

    def state_dict(self) -> dict:
        return {
            "rows": [dict(row) for row in self.rows],
            "next": self._next,
            "last": dict(self._last),
        }

    def load_state(self, state: dict) -> None:
        self.rows = [dict(row) for row in state["rows"]]
        self._next = state["next"]
        self._last = dict(state["last"])
