"""Critical-path latency attribution over recorded request spans.

Consumes a :class:`repro.obs.spans.SpanRecorder` and answers the
question the paper's own analysis revolves around — *where does
translation latency go?* — as

- an additive aggregate breakdown (probe, walker-queue wait, per-level
  walk, fault handling, memory fills, wakeup slack) whose component
  cycles sum exactly to the summed end-to-end latency (the recorder
  verifies the identity per request; :meth:`CriticalPathReport.verify`
  re-asserts it in aggregate),
- per-component latency histograms (power-of-two buckets, the
  :mod:`repro.stats.histograms` machinery),
- the top-K slowest translations with their full span trees, and
- exports: text table, JSON dict, :class:`MetricsRegistry` counters
  (``span_*``), and Chrome-trace span slices with parent→child flow
  events riding the existing :mod:`repro.obs.sinks` infrastructure.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.obs.events import SPAN, TraceEvent
from repro.obs.sinks import ChromeTraceSink, JsonlSink
from repro.obs.spans import Span, SpanRecorder


class CriticalPathReport:
    """The per-run latency attribution built from a span recorder.

    Parameters
    ----------
    recorder:
        The recorder a run populated (its aggregates are snapshotted by
        reference; build the report after the run completes).
    label:
        Free-form run label carried into renders/exports
        (``"fig02/bfs"``).
    """

    def __init__(self, recorder: SpanRecorder, label: str = ""):
        self.recorder = recorder
        self.label = label

    # -- invariants ----------------------------------------------------

    @property
    def mismatches(self) -> int:
        """Requests whose components failed to tile the total (must be 0)."""
        return self.recorder.mismatches

    def verify(self) -> None:
        """Assert the additive decomposition held for every request.

        Raises ``AssertionError`` on any per-request tiling violation or
        if the aggregate component cycles do not sum to the aggregate
        end-to-end cycles.
        """
        if self.recorder.mismatches:
            raise AssertionError(
                f"{self.recorder.mismatches} of {self.recorder.requests} "
                "request span trees did not tile their end-to-end interval"
            )
        total = sum(self.recorder.component_cycles.values())
        if total != self.recorder.total_cycles:
            raise AssertionError(
                f"aggregate component cycles {total} != end-to-end "
                f"cycles {self.recorder.total_cycles}"
            )

    # -- aggregate breakdown -------------------------------------------

    def breakdown(self) -> List[Dict[str, Any]]:
        """Component rows in canonical order: cycles, count, share."""
        recorder = self.recorder
        total = recorder.total_cycles
        rows = []
        for name in recorder.component_names():
            cycles = recorder.component_cycles[name]
            rows.append(
                {
                    "component": name,
                    "cycles": cycles,
                    "count": recorder.component_counts[name],
                    "share": cycles / total if total else 0.0,
                }
            )
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe report: breakdown, histograms, slowest trees."""
        recorder = self.recorder
        return {
            "label": self.label,
            "requests": recorder.requests,
            "total_cycles": recorder.total_cycles,
            "mean_cycles": (
                recorder.total_cycles / recorder.requests
                if recorder.requests
                else 0.0
            ),
            "mismatches": recorder.mismatches,
            "components": self.breakdown(),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(recorder.histograms.items())
            },
            "slowest": [root.as_dict() for root in recorder.slowest],
        }

    # -- renders -------------------------------------------------------

    def render_text(self, top: Optional[int] = None) -> str:
        """The human-readable report ``harness explain`` prints."""
        recorder = self.recorder
        lines = [f"== critical path: {self.label} =="]
        if not recorder.requests:
            lines.append("(no TLB misses recorded)")
            return "\n".join(lines)
        mean = recorder.total_cycles / recorder.requests
        lines.append(
            f"{recorder.requests} missed translations, "
            f"{recorder.total_cycles} end-to-end cycles "
            f"(mean {mean:.1f} cyc/request)"
        )
        lines.append("")
        lines.append(
            f"{'component':<12s} {'cycles':>12s} {'share':>7s} "
            f"{'count':>8s} {'mean':>8s}"
        )
        for row in self.breakdown():
            lines.append(
                f"{row['component']:<12s} {row['cycles']:>12d} "
                f"{100 * row['share']:>6.1f}% {row['count']:>8d} "
                f"{row['cycles'] / row['count']:>8.1f}"
            )
        checksum = sum(recorder.component_cycles.values())
        status = "exact" if checksum == recorder.total_cycles else "MISMATCH"
        lines.append(
            f"{'total':<12s} {checksum:>12d}  ({status}; "
            f"{recorder.mismatches} per-request mismatches)"
        )
        hist = recorder.histograms.get("end_to_end")
        if hist is not None:
            lines.append("")
            lines.append(hist.render())
        slowest = recorder.slowest
        if top is not None:
            slowest = slowest[:top]
        if slowest:
            lines.append("")
            lines.append(f"-- top {len(slowest)} slowest translations --")
            for rank, root in enumerate(slowest, 1):
                lines.append(self._render_tree(rank, root))
        return "\n".join(lines)

    @staticmethod
    def _render_tree(rank: int, root: Span) -> str:
        args = root.args
        head = (
            f"#{rank}: {root.duration} cyc  vpn={args.get('vpn', '?'):#x} "
            f"warp={args.get('warp', '?')} core={args.get('core', '?')} "
            f"[{root.start}..{root.end}]"
        )
        body = []
        for depth, node in root.walk():
            if depth == 0:
                continue
            extra = ""
            if node.args:
                keys = ", ".join(
                    f"{k}={v}" for k, v in sorted(node.args.items())
                )
                extra = f"  ({keys})"
            body.append(
                f"{'  ' * depth}{node.name:<12s} "
                f"{node.start:>8d}..{node.end:<8d} "
                f"{node.duration:>6d} cyc{extra}"
            )
        return "\n".join([head] + body)

    # -- MetricsRegistry export ----------------------------------------

    def to_registry(self, registry=None, **labels: str) -> None:
        """Mirror the aggregate breakdown into a metrics registry.

        Families: ``span_requests_total``, ``span_mismatch_total``,
        ``span_end_to_end_cycles_total`` and
        ``span_component_cycles_total{component=...}`` — the shape the
        bench/serve paths snapshot.
        """
        if registry is None:
            from repro.prof.registry import REGISTRY

            registry = REGISTRY
        recorder = self.recorder
        registry.counter(
            "span_requests_total", help="translation requests span-recorded"
        ).inc(recorder.requests, **labels)
        registry.counter(
            "span_mismatch_total",
            help="requests whose components failed to tile the total",
        ).inc(recorder.mismatches, **labels)
        registry.counter(
            "span_end_to_end_cycles_total",
            help="summed end-to-end miss latency over recorded requests",
        ).inc(recorder.total_cycles, **labels)
        cycles = registry.counter(
            "span_component_cycles_total",
            help="summed cycles attributed to each critical-path component",
        )
        counts = registry.counter(
            "span_component_count_total",
            help="times each critical-path component occurred",
        )
        for name in recorder.component_names():
            cycles.inc(
                recorder.component_cycles[name], component=name, **labels
            )
            counts.inc(
                recorder.component_counts[name], component=name, **labels
            )

    # -- trace-event export --------------------------------------------

    def iter_trace_events(self) -> Iterator[TraceEvent]:
        """The retained slowest trees as ``span`` trace events.

        One track per request (``slow-1`` … slowest first) on the
        owning core's process; parent→child causality is carried by
        ``flow_out``/``flow_in`` ids the Chrome sink turns into
        ``"s"``/``"f"`` flow events.
        """
        flow_seq = 0
        for rank, root in enumerate(self.recorder.slowest, 1):
            track = f"slow-{rank}"
            core = int(root.args.get("core", -1))
            # Assign one flow id per parent→child edge.
            flow_in: Dict[int, int] = {}
            flow_out: Dict[int, List[int]] = {}
            order: List[Span] = [node for _d, node in root.walk()]
            for node in order:
                for child in node.children:
                    flow_seq += 1
                    flow_out.setdefault(id(node), []).append(flow_seq)
                    flow_in[id(child)] = flow_seq
            for node in order:
                args: Dict[str, Any] = {"op": node.name}
                args.update(node.args)
                if id(node) in flow_in:
                    args["flow_in"] = flow_in[id(node)]
                if id(node) in flow_out:
                    args["flow_out"] = flow_out[id(node)]
                yield TraceEvent(
                    SPAN,
                    node.start,
                    core=core,
                    track=track,
                    dur=node.duration,
                    args=args,
                )

    def write_chrome_trace(self, path: str) -> int:
        """Write the slowest trees as Chrome trace JSON; returns the
        event count (rides :class:`repro.obs.sinks.ChromeTraceSink`)."""
        sink = ChromeTraceSink(path)
        count = 0
        for event in self.iter_trace_events():
            sink.record(event)
            count += 1
        sink.close()
        return count

    def write_jsonl(self, path: str) -> int:
        """Write the slowest trees as JSONL span events; returns the
        event count (rides :class:`repro.obs.sinks.JsonlSink`)."""
        sink = JsonlSink(path)
        count = 0
        for event in self.iter_trace_events():
            sink.record(event)
            count += 1
        sink.close()
        return count
