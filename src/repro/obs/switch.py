"""The shared zero-overhead instrumentation switch.

Three observability layers follow the same module-flag hot-path
contract — the simulated-event tracer (:mod:`repro.obs.tracer`), the
host wall-clock phase profiler (:mod:`repro.prof.profiler`), and the
causal span recorder (:mod:`repro.obs.spans`)::

    from repro.obs import tracer as _trace
    ...
    if _trace.ENABLED:
        _trace.emit(...)

Each layer used to hand-roll the install/uninstall bookkeeping behind
that contract (``global _ACTIVE, ENABLED`` dances that had already
drifted into three copies).  :class:`ModuleSwitch` centralizes it: a
switch owns one module's ``ENABLED`` flag and ``_ACTIVE`` backend
global, publishing both with a plain ``setattr`` on the module object
(module attributes *are* its globals, so instrumentation sites keep
reading the flag with a single module-attribute load and one branch —
the disabled cost is unchanged, and the layers can no longer disagree
about how the flag is managed).
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Optional


class ModuleSwitch:
    """Owns the ``ENABLED`` / ``_ACTIVE`` fast-path globals of a module.

    Parameters
    ----------
    module_name:
        The owning module (pass ``__name__``); its ``ENABLED`` and
        ``_ACTIVE`` globals are managed by this switch.
    on_uninstall:
        Optional callback run after deactivation, for modules with
        extra context to reset (the tracer clears its ``NOW``/``CORE``
        timestamp context, say).
    """

    def __init__(
        self,
        module_name: str,
        on_uninstall: Optional[Callable[[], None]] = None,
    ):
        self._module_name = module_name
        self._on_uninstall = on_uninstall

    @property
    def _module(self):
        return sys.modules[self._module_name]

    def install(self, backend: Any) -> None:
        """Publish ``backend`` as the module's active instance and raise
        its fast-path flag."""
        module = self._module
        module._ACTIVE = backend
        module.ENABLED = True

    def uninstall(self) -> None:
        """Deactivate the module's instrumentation; its fast path
        returns to a single branch."""
        module = self._module
        module._ACTIVE = None
        module.ENABLED = False
        if self._on_uninstall is not None:
            self._on_uninstall()

    def active(self) -> Any:
        """The installed backend, or None."""
        return self._module._ACTIVE

    def enabled(self) -> bool:
        """The current flag value (sites read the module global
        directly; this accessor is for tests and tooling)."""
        return self._module.ENABLED
