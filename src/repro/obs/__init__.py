"""Observability: event tracing, causal spans, interval metrics.

The subsystem has six pieces:

- :mod:`repro.obs.events` — the typed :class:`TraceEvent` and its kind
  vocabulary (``tlb_lookup``, ``walk_begin``, ``mshr_alloc``, ...).
- :mod:`repro.obs.tracer` — the module-level fast path (``ENABLED``
  flag + ``emit``) instrumented components call, and the
  :class:`Tracer` that fans events out to sinks.
- :mod:`repro.obs.switch` — the shared :class:`ModuleSwitch` behind
  every zero-overhead-when-off module flag (tracer, spans, and the
  :mod:`repro.prof` profiler all use it).
- :mod:`repro.obs.spans` — parent-linked causal span trees per
  TLB-missing translation, in simulated cycles, with cause
  annotations; :mod:`repro.obs.critpath` decomposes them into additive
  critical-path components, histograms, and a slowest-translations
  report (surfaced by ``python -m repro.harness explain``).
- :mod:`repro.obs.sinks` — :class:`NullSink`, :class:`RingBufferSink`,
  :class:`JsonlSink` and the Perfetto-loadable
  :class:`ChromeTraceSink` (span flow events included).
- :mod:`repro.obs.interval` — :class:`IntervalSampler`, periodic
  CoreStats-delta snapshots.
- :mod:`repro.obs.log` — structured, leveled run logs (host-process
  lifecycle: runs, workers, serve jobs), text and JSONL sinks, enabled
  via ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_JSONL``.

Enable tracing per run via ``GPUConfig.trace`` (a
:class:`repro.core.config.TraceConfig`) or from the command line with
``python -m repro.harness trace <figure|workload>``; enable span
recording with :func:`repro.obs.spans.record_spans` or
``python -m repro.harness explain <figure|workload>``.
"""

from repro.obs.critpath import CriticalPathReport
from repro.obs.events import KINDS, TraceEvent
from repro.obs.interval import IntervalSampler
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
)
from repro.obs.spans import Span, SpanRecorder, WalkDetail, record_spans
from repro.obs.switch import ModuleSwitch
from repro.obs.tracer import Tracer, active, build_tracer, emit, install, uninstall

__all__ = [
    "KINDS",
    "TraceEvent",
    "IntervalSampler",
    "ChromeTraceSink",
    "JsonlSink",
    "NullSink",
    "RingBufferSink",
    "CriticalPathReport",
    "ModuleSwitch",
    "Span",
    "SpanRecorder",
    "WalkDetail",
    "record_spans",
    "Tracer",
    "active",
    "build_tracer",
    "emit",
    "install",
    "uninstall",
]
