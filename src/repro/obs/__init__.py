"""Observability: structured event tracing and interval metrics.

The subsystem has four pieces:

- :mod:`repro.obs.events` — the typed :class:`TraceEvent` and its kind
  vocabulary (``tlb_lookup``, ``walk_begin``, ``mshr_alloc``, ...).
- :mod:`repro.obs.tracer` — the module-level fast path (``ENABLED``
  flag + ``emit``) instrumented components call, and the
  :class:`Tracer` that fans events out to sinks.
- :mod:`repro.obs.sinks` — :class:`NullSink`, :class:`RingBufferSink`,
  :class:`JsonlSink` and the Perfetto-loadable
  :class:`ChromeTraceSink`.
- :mod:`repro.obs.interval` — :class:`IntervalSampler`, periodic
  CoreStats-delta snapshots.

Enable it per run via ``GPUConfig.trace`` (a
:class:`repro.core.config.TraceConfig`) or from the command line with
``python -m repro.harness trace <figure|workload>``.
"""

from repro.obs.events import KINDS, TraceEvent
from repro.obs.interval import IntervalSampler
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
)
from repro.obs.tracer import Tracer, active, build_tracer, emit, install, uninstall

__all__ = [
    "KINDS",
    "TraceEvent",
    "IntervalSampler",
    "ChromeTraceSink",
    "JsonlSink",
    "NullSink",
    "RingBufferSink",
    "Tracer",
    "active",
    "build_tracer",
    "emit",
    "install",
    "uninstall",
]
