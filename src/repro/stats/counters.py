"""Per-core statistic counters.

Every quantity a figure of the paper needs is accumulated here during
simulation and aggregated into :class:`repro.core.results.SimulationResult`
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CoreStats:
    """Raw counters one shader core accumulates during a run."""

    cores: int = 1
    cycles: int = 0
    idle_cycles: int = 0
    instructions: int = 0
    memory_instructions: int = 0
    scalar_instructions: int = 0

    # Coalescer / page divergence (Figure 3 right).
    page_divergence_sum: int = 0
    page_divergence_max: int = 0
    coalesced_lines: int = 0

    # TLB (Figure 3 left, Figure 4).
    tlb_lookups: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    tlb_miss_stall_cycles: int = 0
    tlb_blocked_wait_cycles: int = 0
    tlb_mshr_stalls: int = 0
    total_tlb_miss_cycles: int = 0

    # PTW (Figure 10).
    walks: int = 0
    walk_refs_issued: int = 0
    walk_refs_naive: int = 0

    # TBC.
    warp_fetches: int = 0
    dynamic_warps_formed: int = 0
    regions_executed: int = 0

    # Faults (repro.faults).  Whole-run counts (not warmup-windowed):
    # faults are rare global events, and fault-injection sweeps care
    # about totals.  Serialized only when nonzero so fault-free results
    # stay byte-identical to the pre-fault-subsystem layout (see
    # SimulationResult.to_dict).
    page_faults_minor: int = 0
    page_faults_major: int = 0
    page_fault_stall_cycles: int = 0
    ptw_transient_errors: int = 0
    ptw_retries: int = 0
    ptw_walk_timeouts: int = 0
    tlb_shootdowns: int = 0
    tlb_injected_invalidations: int = 0

    #: The fault-subsystem counters (zero-stripped in serialization).
    FAULT_FIELDS = (
        "page_faults_minor",
        "page_faults_major",
        "page_fault_stall_cycles",
        "ptw_transient_errors",
        "ptw_retries",
        "ptw_walk_timeouts",
        "tlb_shootdowns",
        "tlb_injected_invalidations",
    )

    def merge(self, other: "CoreStats") -> None:
        """Accumulate another core's counters into this one.

        ``cycles`` takes the max (cores run concurrently); every other
        counter sums; divergence max takes the max.
        """
        self.cores += other.cores
        self.cycles = max(self.cycles, other.cycles)
        self.page_divergence_max = max(
            self.page_divergence_max, other.page_divergence_max
        )
        sum_fields = [
            "idle_cycles",
            "instructions",
            "memory_instructions",
            "scalar_instructions",
            "page_divergence_sum",
            "coalesced_lines",
            "tlb_lookups",
            "tlb_hits",
            "tlb_misses",
            "tlb_miss_stall_cycles",
            "tlb_blocked_wait_cycles",
            "tlb_mshr_stalls",
            "total_tlb_miss_cycles",
            "walks",
            "walk_refs_issued",
            "walk_refs_naive",
            "warp_fetches",
            "dynamic_warps_formed",
            "regions_executed",
            *self.FAULT_FIELDS,
        ]
        for name in sum_fields:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def tlb_miss_rate(self) -> float:
        """Fraction of coalesced translation requests that missed."""
        return self.tlb_misses / self.tlb_lookups if self.tlb_lookups else 0.0

    @property
    def average_page_divergence(self) -> float:
        """Mean distinct translations requested per warp memory instruction."""
        if not self.memory_instructions:
            return 0.0
        return self.page_divergence_sum / self.memory_instructions

    @property
    def memory_instruction_fraction(self) -> float:
        """Memory references as a fraction of all (scalar) instructions."""
        if not self.scalar_instructions:
            return 0.0
        return self.memory_instructions / self.scalar_instructions

    @property
    def average_tlb_miss_cycles(self) -> float:
        """Mean cycles from TLB miss detection to translation return."""
        return self.total_tlb_miss_cycles / self.tlb_misses if self.tlb_misses else 0.0

    @property
    def walk_refs_eliminated_fraction(self) -> float:
        """Fraction of naive walk loads the PTW scheduler removed."""
        if not self.walk_refs_naive:
            return 0.0
        return 1.0 - self.walk_refs_issued / self.walk_refs_naive

    @property
    def page_faults(self) -> int:
        """Total page faults handled (minor + major)."""
        return self.page_faults_minor + self.page_faults_major

    @property
    def idle_fraction(self) -> float:
        """Fraction of core-cycles with no warp able to issue."""
        total = self.cycles * max(self.cores, 1)
        return self.idle_cycles / total if total else 0.0
