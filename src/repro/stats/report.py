"""Plain-text rendering of benchmark tables and figure series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and readable in a terminal
or a captured log file.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Union

Number = Union[int, float]


def _fmt(value) -> str:
    if value is None:
        return "nan"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as an aligned text table with a header rule."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_series(series: Mapping[str, Mapping[str, Number]], key_header: str = "workload") -> str:
    """Render {series_name: {key: value}} as a table, one series per column."""
    names = list(series)
    keys: List[str] = []
    for values in series.values():
        for key in values:
            if key not in keys:
                keys.append(key)
    headers = [key_header] + names
    rows = []
    for key in keys:
        # Missing cells render as "nan" regardless of the column's value
        # type (int columns must not fall back to str(float("nan"))).
        rows.append([key] + [series[name].get(key) for name in names])
    return format_table(headers, rows)


def ascii_bar_chart(values: Mapping[str, Number], width: int = 50, reference: float = 1.0) -> str:
    """Render a horizontal bar chart with a reference tick (e.g. speedup 1.0)."""
    if not values:
        return "(no data)"
    # An all-zero/negative series (e.g. a quiet interval sample) must
    # still render: clamp the scale so the division below is defined.
    peak = max(max(values.values()), reference)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        ref_col = min(width - 1, round(width * reference / peak))
        chars = list(bar.ljust(width))
        if 0 <= ref_col < width and chars[ref_col] == " ":
            chars[ref_col] = "|"
        lines.append(f"{str(key).ljust(label_width)}  {''.join(chars)} {_fmt(value)}")
    return "\n".join(lines)
