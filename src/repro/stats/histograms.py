"""Post-hoc histograms derived from a trace ring buffer.

The event stream is the ground truth the aggregate counters summarize;
these helpers recover the distributions the paper's analysis leans on —
per-miss TLB latency (Figure 4 is its mean), page divergence per warp
memory instruction (Figure 3 right is its mean/max), and walk queue
occupancy (the pressure Figure 10's scheduler relieves) — from the
events a :class:`repro.obs.sinks.RingBufferSink` retained.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.obs.events import (
    MEM_COALESCE,
    TLB_MISS_BEGIN,
    TLB_MISS_END,
    WALK_QUEUE,
    TraceEvent,
)
from repro.stats.report import ascii_bar_chart


def pow2_bucket(value: int) -> int:
    """The power-of-two bucket floor for ``value`` (0 and 1 stay put)."""
    if value <= 1:
        return max(0, value)
    return 1 << (value.bit_length() - 1)


class Histogram:
    """A bucketed value distribution.

    Parameters
    ----------
    name / unit:
        Labels carried into renders and serialized dicts.
    pow2:
        Bucket values by their power-of-two floor (for wide-range
        quantities such as latencies); otherwise buckets are exact
        integer values (divergence counts, queue depths).
    """

    def __init__(self, name: str, unit: str = "", pow2: bool = False):
        self.name = name
        self.unit = unit
        self.pow2 = pow2
        self.counts: Counter = Counter()
        self.total = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def add(self, value: int) -> None:
        value = int(value)
        self.counts[pow2_bucket(value) if self.pow2 else value] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def extend(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> int:
        """Bucket floor containing the ``p``-th percentile (0-100)."""
        if not self.total:
            return 0
        target = max(1, round(self.total * p / 100.0))
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= target:
                return bucket
        return max(self.counts)

    def to_dict(self) -> Dict:
        """JSON-safe form (bucket keys become strings)."""
        return {
            "name": self.name,
            "unit": self.unit,
            "pow2": self.pow2,
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Histogram":
        hist = cls(data["name"], data.get("unit", ""), data.get("pow2", False))
        hist.counts = Counter({int(k): v for k, v in data["counts"].items()})
        hist.total = data["total"]
        hist.sum = data["sum"]
        hist.min = data["min"]
        hist.max = data["max"]
        return hist

    def render(self, width: int = 40) -> str:
        """Text histogram: one bar per bucket plus a summary line."""
        head = (
            f"{self.name}: n={self.total} mean={self.mean:.1f} "
            f"min={self.min if self.min is not None else 'nan'} "
            f"p50={self.percentile(50)} p95={self.percentile(95)} "
            f"max={self.max if self.max is not None else 'nan'}"
            + (f" [{self.unit}]" if self.unit else "")
        )
        if not self.total:
            return head + "\n(no samples)"
        label = "{}+" if self.pow2 else "{}"
        bars = ascii_bar_chart(
            {label.format(k): v for k, v in sorted(self.counts.items())},
            width=width,
            reference=0.0,
        )
        return head + "\n" + bars


def _pair_spans(
    events: List[TraceEvent], begin_kind: str, end_kind: str
) -> List[int]:
    """Durations of matched begin/end pairs (same core+track+span id)."""
    opened: Dict[tuple, int] = {}
    durations: List[int] = []
    for event in events:
        key = (event.core, event.track, event.span_id)
        if event.kind == begin_kind:
            opened[key] = event.cycle
        elif event.kind == end_kind:
            start = opened.pop(key, None)
            if start is not None:
                durations.append(event.cycle - start)
    return durations


def tlb_miss_latency_histogram(events: List[TraceEvent]) -> Histogram:
    """Cycles from miss detection to translation return, per miss."""
    hist = Histogram("tlb_miss_latency", unit="cycles", pow2=True)
    hist.extend(_pair_spans(events, TLB_MISS_BEGIN, TLB_MISS_END))
    return hist


def page_divergence_histogram(events: List[TraceEvent]) -> Histogram:
    """Distinct pages per warp memory instruction (Figure 3 right)."""
    hist = Histogram("page_divergence", unit="pages/instr")
    hist.extend(
        e.args["pages"] for e in events if e.kind == MEM_COALESCE and "pages" in e.args
    )
    return hist


def walk_queue_depth_histogram(events: List[TraceEvent]) -> Histogram:
    """Outstanding page walks observed at each walker dispatch."""
    hist = Histogram("walk_queue_depth", unit="walks")
    hist.extend(
        e.args["depth"] for e in events if e.kind == WALK_QUEUE and "depth" in e.args
    )
    return hist


def histograms_from_events(events: List[TraceEvent]) -> Dict[str, Histogram]:
    """All derivable histograms, keyed by name (empty ones omitted)."""
    all_hists = (
        tlb_miss_latency_histogram(events),
        page_divergence_histogram(events),
        walk_queue_depth_histogram(events),
    )
    return {h.name: h for h in all_hists if h.total}
