"""Statistics collection and report rendering."""

from repro.stats.counters import CoreStats
from repro.stats.report import ascii_bar_chart, format_table, format_series

__all__ = ["CoreStats", "ascii_bar_chart", "format_table", "format_series"]
