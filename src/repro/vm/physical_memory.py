"""Simulated physical memory: a 4 KB frame allocator.

The page table and data pages both draw frames from here, so page table
nodes occupy realistic, distinct physical addresses.  Frames may be
handed out sequentially (the common fast path: consecutive PTEs then land
on shared cache lines, as on a real first-touch allocator) or from a
free list after :meth:`PhysicalMemory.free_frame`.
"""

from __future__ import annotations

from typing import List

from repro.vm.address import PAGE_SHIFT_4K, PAGE_SIZE_4K


class OutOfPhysicalMemory(RuntimeError):
    """Raised when the frame allocator is exhausted."""


class PhysicalMemory:
    """A bump-plus-free-list allocator over 4 KB physical frames.

    Parameters
    ----------
    size_bytes:
        Total physical memory capacity.  Defaults to 8 GiB, comfortably
        above the paper's >1 GB workload footprints.
    base:
        Physical address of the first allocatable frame.  Frame zero is
        reserved by default so that physical address 0 never aliases an
        unmapped translation.
    """

    def __init__(self, size_bytes: int = 8 << 30, base: int = PAGE_SIZE_4K):
        if size_bytes <= base:
            raise ValueError("physical memory must be larger than its reserved base")
        if base % PAGE_SIZE_4K:
            raise ValueError("base must be frame-aligned")
        self.size_bytes = size_bytes
        self._next_frame = base >> PAGE_SHIFT_4K
        self._limit_frame = size_bytes >> PAGE_SHIFT_4K
        self._free: List[int] = []
        self._allocated = 0

    @property
    def frames_allocated(self) -> int:
        """Number of frames currently allocated."""
        return self._allocated

    @property
    def frames_remaining(self) -> int:
        """Number of frames still available."""
        return (self._limit_frame - self._next_frame) + len(self._free)

    def alloc_frame(self) -> int:
        """Allocate one 4 KB frame and return its frame number (PFN)."""
        if self._free:
            pfn = self._free.pop()
        else:
            if self._next_frame >= self._limit_frame:
                raise OutOfPhysicalMemory(
                    f"exhausted {self.size_bytes} bytes of physical memory"
                )
            pfn = self._next_frame
            self._next_frame += 1
        self._allocated += 1
        return pfn

    def alloc_contiguous(self, frame_count: int) -> int:
        """Allocate ``frame_count`` physically contiguous frames.

        Returns the first PFN.  Used for 2 MB pages (512 frames) and for
        page table nodes that must be line-aligned.  Contiguous requests
        always come from the bump region, never the free list.
        """
        if frame_count <= 0:
            raise ValueError("frame_count must be positive")
        if self._next_frame + frame_count > self._limit_frame:
            raise OutOfPhysicalMemory(
                f"cannot allocate {frame_count} contiguous frames"
            )
        pfn = self._next_frame
        self._next_frame += frame_count
        self._allocated += frame_count
        return pfn

    def free_frame(self, pfn: int) -> None:
        """Return a frame to the allocator."""
        if pfn < 0 or pfn >= self._limit_frame:
            raise ValueError(f"PFN out of range: {pfn}")
        self._free.append(pfn)
        self._allocated -= 1

    def state_dict(self) -> dict:
        return {
            "next_frame": self._next_frame,
            "free": list(self._free),
            "allocated": self._allocated,
        }

    def load_state(self, state: dict) -> None:
        self._next_frame = state["next_frame"]
        self._free = list(state["free"])
        self._allocated = state["allocated"]

    @staticmethod
    def frame_base(pfn: int) -> int:
        """Physical byte address of the start of frame ``pfn``."""
        return pfn << PAGE_SHIFT_4K
