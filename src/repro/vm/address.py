"""Virtual address arithmetic for the x86-64 4-level paging scheme.

A 48-bit canonical virtual address is split, from the top, into four
9-bit table indices and a 12-bit page offset::

    47          39 38          30 29          21 20          12 11      0
    +-------------+--------------+--------------+--------------+--------+
    |  PML4 index |  PDP index   |  PD index    |  PT index    | offset |
    +-------------+--------------+--------------+--------------+--------+

The paper (Section 6.3, Figure 8) presents virtual pages as tuples of
these four 9-bit indices, e.g. ``(0xb9, 0x0c, 0xac, 0x03)``; we adopt the
same convention.  2 MB large pages drop the PT level: the PD entry maps
the page directly, and the offset widens to 21 bits.
"""

from __future__ import annotations

from typing import Tuple

PAGE_SHIFT_4K = 12
PAGE_SIZE_4K = 1 << PAGE_SHIFT_4K

PAGE_SHIFT_2M = 21
PAGE_SIZE_2M = 1 << PAGE_SHIFT_2M

#: Bits of virtual page number consumed per table level.
INDEX_BITS = 9
INDEX_MASK = (1 << INDEX_BITS) - 1

#: Number of paging levels for 4 KB pages (PML4, PDP, PD, PT).
NUM_LEVELS = 4
LEVEL_NAMES = ("PML4", "PDP", "PD", "PT")

#: Size of one page table entry (x86-64), and how many fit structures.
PTE_BYTES = 8
PTES_PER_TABLE = 1 << INDEX_BITS  # 512 entries -> one 4 KB frame per table

#: GPU cache line size used throughout the paper (GPGPU-Sim default).
CACHE_LINE_BYTES = 128
PTES_PER_LINE = CACHE_LINE_BYTES // PTE_BYTES  # 16 consecutive PTEs per line

_VPN_BITS = INDEX_BITS * NUM_LEVELS  # 36-bit virtual page number
_VPN_MASK = (1 << _VPN_BITS) - 1


def vaddr_to_vpn(vaddr: int, page_shift: int = PAGE_SHIFT_4K) -> int:
    """Return the virtual page number containing ``vaddr``.

    For 2 MB pages pass ``page_shift=PAGE_SHIFT_2M``; the returned number
    then counts 2 MB chunks.
    """
    if vaddr < 0:
        raise ValueError(f"virtual address must be non-negative, got {vaddr}")
    return vaddr >> page_shift


def vpn_to_vaddr(vpn: int, page_shift: int = PAGE_SHIFT_4K) -> int:
    """Return the base virtual address of virtual page ``vpn``."""
    if vpn < 0:
        raise ValueError(f"virtual page number must be non-negative, got {vpn}")
    return vpn << page_shift


def page_offset(vaddr: int, page_shift: int = PAGE_SHIFT_4K) -> int:
    """Return the offset of ``vaddr`` within its page."""
    return vaddr & ((1 << page_shift) - 1)


def split_vpn(vpn: int) -> Tuple[int, int, int, int]:
    """Split a 4 KB virtual page number into (PML4, PDP, PD, PT) indices.

    This is the tuple notation of the paper's Figure 8; each element is a
    9-bit table index.
    """
    if not 0 <= vpn <= _VPN_MASK:
        raise ValueError(f"virtual page number out of 48-bit range: {vpn:#x}")
    return (
        (vpn >> (3 * INDEX_BITS)) & INDEX_MASK,
        (vpn >> (2 * INDEX_BITS)) & INDEX_MASK,
        (vpn >> INDEX_BITS) & INDEX_MASK,
        vpn & INDEX_MASK,
    )


def compose_vpn(pml4: int, pdp: int, pd: int, pt: int) -> int:
    """Inverse of :func:`split_vpn`."""
    for name, index in zip(LEVEL_NAMES, (pml4, pdp, pd, pt)):
        if not 0 <= index <= INDEX_MASK:
            raise ValueError(f"{name} index out of 9-bit range: {index:#x}")
    return (pml4 << (3 * INDEX_BITS)) | (pdp << (2 * INDEX_BITS)) | (pd << INDEX_BITS) | pt


def cache_line_of(paddr: int) -> int:
    """Return the cache-line-aligned address containing ``paddr``."""
    return paddr & ~(CACHE_LINE_BYTES - 1)
