"""An x86-64 style 4-level radix page table.

Table nodes are placed in simulated physical memory (one 4 KB frame per
node, 512 8-byte entries), so the address stream of a hardware page table
walk is realistic: the four loads of a 4 KB walk touch
``node_base + 8 * index`` at the PML4, PDP, PD and PT levels, and
consecutive PTEs share 128-byte cache lines (16 to a line) — exactly the
structure the paper's PTW scheduler exploits (Figures 8 and 9).

2 MB large pages set the Page Size bit in their PD entry and terminate
the walk after three loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.vm.address import (
    LEVEL_NAMES,
    PAGE_SHIFT_2M,
    PAGE_SHIFT_4K,
    PTE_BYTES,
    split_vpn,
    vaddr_to_vpn,
)
from repro.vm.physical_memory import PhysicalMemory
from repro.vm.pte import (
    PTE_FLAG_LARGE,
    PTE_FLAG_PRESENT,
    pack_pte,
    pte_pfn,
    unpack_pte,
)

#: Frames per 2 MB page.
_FRAMES_PER_2M = 1 << (PAGE_SHIFT_2M - PAGE_SHIFT_4K)


class TranslationFault(LookupError):
    """Raised when translating a virtual address with no mapping.

    Carries the faulting site so handlers (and humans reading sweep
    logs) see *where* the walk died, not just that it did:

    Attributes
    ----------
    vpn:
        The 4 KB virtual page number being translated (None when the
        fault is not page-granular).
    vaddr:
        A byte virtual address inside the faulting page (the page base
        when only the VPN is known).
    level / level_name:
        The page-table level whose entry was missing (0 = PML4 through
        3 = PT), or None when no walk was involved (e.g. unmapping an
        unmapped page).
    """

    def __init__(
        self,
        message: str,
        vpn: Optional[int] = None,
        vaddr: Optional[int] = None,
        level: Optional[int] = None,
        level_name: Optional[str] = None,
    ):
        super().__init__(message)
        self.vpn = vpn
        if vaddr is None and vpn is not None:
            vaddr = vpn << PAGE_SHIFT_4K
        self.vaddr = vaddr
        self.level = level
        if level_name is None and level is not None:
            level_name = LEVEL_NAMES[level]
        self.level_name = level_name


@dataclass(frozen=True)
class WalkStep:
    """One memory reference of a hardware page table walk.

    Attributes
    ----------
    level:
        0 for PML4 through 3 for PT (2 for a 2 MB leaf at the PD).
    level_name:
        Human-readable level label.
    load_paddr:
        Physical address the walker loads from.
    index:
        The 9-bit index used at this level.
    entry:
        The 64-bit entry value found there.
    is_leaf:
        True when this entry holds the final translation.
    """

    level: int
    level_name: str
    load_paddr: int
    index: int
    entry: int
    is_leaf: bool


class PageTable:
    """A per-process page table with a hardware-walkable layout.

    Parameters
    ----------
    memory:
        The physical memory to carve table nodes and (on demand) data
        frames from.  A fresh :class:`PhysicalMemory` is created when not
        supplied.
    """

    def __init__(self, memory: Optional[PhysicalMemory] = None):
        self.memory = memory if memory is not None else PhysicalMemory()
        # node physical base -> {index: entry}; entries for interior
        # levels hold child node PFNs, leaves hold data-page PTEs.
        self._nodes: Dict[int, Dict[int, int]] = {}
        # Which entries are interior pointers (paddr of child node).
        self._root = self._new_node()
        self._mapped_4k: Dict[int, int] = {}
        self._mapped_2m: Dict[int, int] = {}
        # Successful walks keyed by vpn.  The radix tree only changes
        # through map/unmap (which clear this), so replaying a walk's
        # step list is safe — callers must treat it as read-only.
        self._walk_cache: Dict[int, List[WalkStep]] = {}

    @property
    def cr3(self) -> int:
        """Physical base address of the PML4 (the CR3 register value)."""
        return self._root

    @property
    def pages_mapped(self) -> int:
        """Count of mapped pages (4 KB and 2 MB both count once)."""
        return len(self._mapped_4k) + len(self._mapped_2m)

    def _new_node(self) -> int:
        base = PhysicalMemory.frame_base(self.memory.alloc_frame())
        self._nodes[base] = {}
        return base

    @staticmethod
    def _entry_paddr(node_base: int, index: int) -> int:
        return node_base + PTE_BYTES * index

    def map_page(self, vpn: int, pfn: Optional[int] = None) -> int:
        """Map 4 KB virtual page ``vpn``; return the backing PFN.

        Allocates a data frame when ``pfn`` is None.  Remapping an
        already-mapped page is an error (unmap first).
        """
        if vpn in self._mapped_4k:
            raise ValueError(f"virtual page {vpn:#x} is already mapped")
        self._walk_cache.clear()
        indices = split_vpn(vpn)
        node = self._root
        for index in indices[:-1]:
            entries = self._nodes[node]
            child = entries.get(index)
            if child is None:
                child_base = self._new_node()
                entries[index] = pack_pte(child_base >> PAGE_SHIFT_4K)
                node = child_base
            else:
                if unpack_pte(child)[1] & PTE_FLAG_LARGE:
                    raise ValueError(
                        f"virtual page {vpn:#x} lies inside an existing 2 MB mapping"
                    )
                node = pte_pfn(child) << PAGE_SHIFT_4K
        if pfn is None:
            pfn = self.memory.alloc_frame()
        self._nodes[node][indices[-1]] = pack_pte(pfn)
        self._mapped_4k[vpn] = pfn
        return pfn

    def map_large_page(self, vpn_2m: int, pfn: Optional[int] = None) -> int:
        """Map a 2 MB page at 2 MB-page-number ``vpn_2m``; return base PFN."""
        if vpn_2m in self._mapped_2m:
            raise ValueError(f"2 MB page {vpn_2m:#x} is already mapped")
        self._walk_cache.clear()
        # A 2 MB page number is a 4 KB VPN with the PT index stripped.
        indices = split_vpn(vpn_2m << (PAGE_SHIFT_2M - PAGE_SHIFT_4K))[:-1]
        node = self._root
        for index in indices[:-1]:
            entries = self._nodes[node]
            child = entries.get(index)
            if child is None:
                child_base = self._new_node()
                entries[index] = pack_pte(child_base >> PAGE_SHIFT_4K)
                node = child_base
            else:
                node = pte_pfn(child) << PAGE_SHIFT_4K
        pd_entries = self._nodes[node]
        if indices[-1] in pd_entries:
            raise ValueError(
                f"PD slot for 2 MB page {vpn_2m:#x} already holds a mapping"
            )
        if pfn is None:
            pfn = self.memory.alloc_contiguous(_FRAMES_PER_2M)
        pd_entries[indices[-1]] = pack_pte(
            pfn, PTE_FLAG_PRESENT | PTE_FLAG_LARGE
        )
        self._mapped_2m[vpn_2m] = pfn
        return pfn

    def ensure_mapped(self, vpn: int) -> int:
        """Map 4 KB page ``vpn`` on first touch; return its PFN."""
        pfn = self._mapped_4k.get(vpn)
        if pfn is None:
            pfn = self.map_page(vpn)
        return pfn

    def ensure_mapped_large(self, vpn_2m: int) -> int:
        """Map 2 MB page ``vpn_2m`` on first touch; return its base PFN."""
        pfn = self._mapped_2m.get(vpn_2m)
        if pfn is None:
            pfn = self.map_large_page(vpn_2m)
        return pfn

    def unmap_page(self, vpn: int) -> None:
        """Remove a 4 KB mapping and free its data frame."""
        self._walk_cache.clear()
        pfn = self._mapped_4k.pop(vpn, None)
        if pfn is None:
            raise TranslationFault(
                f"virtual page {vpn:#x} (vaddr {vpn << PAGE_SHIFT_4K:#x}) "
                "is not mapped",
                vpn=vpn,
            )
        indices = split_vpn(vpn)
        node = self._root
        for index in indices[:-1]:
            node = pte_pfn(self._nodes[node][index]) << PAGE_SHIFT_4K
        del self._nodes[node][indices[-1]]
        self.memory.free_frame(pfn)

    def walk(self, vpn: int) -> List[WalkStep]:
        """Perform a full hardware walk for 4 KB page ``vpn``.

        Returns the ordered memory references a serial hardware walker
        makes: four steps for a 4 KB mapping, three when the walk hits a
        2 MB leaf at the PD.  Raises :class:`TranslationFault` when an
        entry is missing.

        Successful walks are cached until the next map/unmap; the
        returned list is shared and must not be mutated.
        """
        cached = self._walk_cache.get(vpn)
        if cached is not None:
            return cached
        indices = split_vpn(vpn)
        steps: List[WalkStep] = []
        node = self._root
        for level, index in enumerate(indices):
            entries = self._nodes.get(node)
            entry = entries.get(index) if entries is not None else None
            if entry is None:
                raise TranslationFault(
                    f"page walk for vpn {vpn:#x} (vaddr "
                    f"{vpn << PAGE_SHIFT_4K:#x}) faulted at level {level} "
                    f"({LEVEL_NAMES[level]}): entry {index} not present",
                    vpn=vpn,
                    level=level,
                )
            pfn, flags = unpack_pte(entry)
            is_leaf = level == 3 or bool(flags & PTE_FLAG_LARGE)
            steps.append(
                WalkStep(
                    level=level,
                    level_name=LEVEL_NAMES[level],
                    load_paddr=self._entry_paddr(node, index),
                    index=index,
                    entry=entry,
                    is_leaf=is_leaf,
                )
            )
            if is_leaf:
                self._walk_cache[vpn] = steps
                return steps
            node = pfn << PAGE_SHIFT_4K
        self._walk_cache[vpn] = steps
        return steps

    def walk_addresses(self, vpn: int) -> List[int]:
        """The physical load addresses of :meth:`walk`, in walk order."""
        return [step.load_paddr for step in self.walk(vpn)]

    def translate(self, vaddr: int) -> int:
        """Translate a byte virtual address to its physical address."""
        vpn = vaddr_to_vpn(vaddr)
        steps = self.walk(vpn)
        leaf = steps[-1]
        pfn, flags = unpack_pte(leaf.entry)
        if not flags & PTE_FLAG_PRESENT:
            raise TranslationFault(
                f"leaf not present for vaddr {vaddr:#x} (vpn {vpn:#x}, "
                f"level {leaf.level}, {leaf.level_name})",
                vpn=vpn,
                vaddr=vaddr,
                level=leaf.level,
            )
        if flags & PTE_FLAG_LARGE:
            base = pfn << PAGE_SHIFT_4K
            return base + (vaddr & ((1 << PAGE_SHIFT_2M) - 1))
        return (pfn << PAGE_SHIFT_4K) + (vaddr & ((1 << PAGE_SHIFT_4K) - 1))

    def translate_vpn(self, vpn: int) -> int:
        """Translate a 4 KB virtual page number to its physical frame number."""
        steps = self.walk(vpn)
        leaf = steps[-1]
        pfn, flags = unpack_pte(leaf.entry)
        if flags & PTE_FLAG_LARGE:
            within = vpn & ((1 << (PAGE_SHIFT_2M - PAGE_SHIFT_4K)) - 1)
            return pfn + within
        return pfn

    def leaf_entry_paddr(self, vpn: int) -> int:
        """Physical address of the leaf entry mapping 4 KB page ``vpn``."""
        return self.walk(vpn)[-1].load_paddr

    def iter_mappings(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(vpn, pfn)`` for every 4 KB mapping (excludes 2 MB)."""
        return iter(self._mapped_4k.items())

    def state_dict(self) -> dict:
        """Snapshot the radix tree, root, and mapping indices.

        Node bases and entry indices are int keys, so everything
        serializes as ``[key, value]`` pairs.
        """
        return {
            "root": self._root,
            "nodes": [
                [base, [[index, entry] for index, entry in entries.items()]]
                for base, entries in self._nodes.items()
            ],
            "mapped_4k": [[vpn, pfn] for vpn, pfn in self._mapped_4k.items()],
            "mapped_2m": [[vpn, pfn] for vpn, pfn in self._mapped_2m.items()],
        }

    def load_state(self, state: dict) -> None:
        self._walk_cache.clear()
        self._root = state["root"]
        self._nodes = {
            base: {index: entry for index, entry in entries}
            for base, entries in state["nodes"]
        }
        self._mapped_4k = {vpn: pfn for vpn, pfn in state["mapped_4k"]}
        self._mapped_2m = {vpn: pfn for vpn, pfn in state["mapped_2m"]}
