"""x86-64 virtual memory substrate.

Implements the radix page table the hardware page table walker traverses:
4 KB base pages through a 4-level PML4/PDP/PD/PT tree, plus 2 MB large
pages that terminate the walk at the PD level.  Table nodes live at real
(simulated) physical addresses so walker memory references — and hence
the cache-line sharing the paper's PTW scheduler exploits — are faithful.
"""

from repro.vm.address import (
    CACHE_LINE_BYTES,
    LEVEL_NAMES,
    PAGE_SHIFT_2M,
    PAGE_SHIFT_4K,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PTES_PER_LINE,
    PTES_PER_TABLE,
    PTE_BYTES,
    cache_line_of,
    compose_vpn,
    page_offset,
    split_vpn,
    vaddr_to_vpn,
    vpn_to_vaddr,
)
from repro.vm.physical_memory import OutOfPhysicalMemory, PhysicalMemory
from repro.vm.page_table import PageTable, TranslationFault, WalkStep
from repro.vm.pte import (
    PTE_FLAG_ACCESSED,
    PTE_FLAG_DIRTY,
    PTE_FLAG_LARGE,
    PTE_FLAG_PRESENT,
    PTE_FLAG_WRITABLE,
    pack_pte,
    pte_history,
    pte_pfn,
    unpack_pte,
    with_history,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "LEVEL_NAMES",
    "PAGE_SHIFT_2M",
    "PAGE_SHIFT_4K",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_4K",
    "PTES_PER_LINE",
    "PTES_PER_TABLE",
    "PTE_BYTES",
    "cache_line_of",
    "compose_vpn",
    "page_offset",
    "split_vpn",
    "vaddr_to_vpn",
    "vpn_to_vaddr",
    "OutOfPhysicalMemory",
    "PhysicalMemory",
    "PageTable",
    "TranslationFault",
    "WalkStep",
    "PTE_FLAG_ACCESSED",
    "PTE_FLAG_DIRTY",
    "PTE_FLAG_LARGE",
    "PTE_FLAG_PRESENT",
    "PTE_FLAG_WRITABLE",
    "pack_pte",
    "pte_history",
    "pte_pfn",
    "unpack_pte",
    "with_history",
]
