"""Page table entry packing.

Entries follow the x86-64 layout closely enough for the simulator: a
52-bit physical frame number field plus architectural flag bits.  The
paper's TCWS/TLB-aware-TBC hardware additionally stores a short *warp
history* (the last warps that touched the translation) in bits that
current implementations leave unused — "PTEs do not actually use full
64-bit address spaces yet, leaving 18 bits unused.  We use 12 of these 18
bits to maintain history" (Section 8.2).  We reproduce that packing: two
6-bit warp identifiers in bits 52..63.
"""

from __future__ import annotations

from typing import Sequence, Tuple

PTE_FLAG_PRESENT = 1 << 0
PTE_FLAG_WRITABLE = 1 << 1
PTE_FLAG_ACCESSED = 1 << 5
PTE_FLAG_DIRTY = 1 << 6
PTE_FLAG_LARGE = 1 << 7  # Page Size bit: set on a PD entry mapping 2 MB

_FLAG_MASK = 0xFFF
_PFN_SHIFT = 12
_PFN_BITS = 40
_PFN_MASK = ((1 << _PFN_BITS) - 1) << _PFN_SHIFT

_HISTORY_SHIFT = 52
_WARP_ID_BITS = 6
_WARP_ID_MASK = (1 << _WARP_ID_BITS) - 1
#: Paper uses a history length of 2 warps per entry (12 of 18 spare bits).
HISTORY_LENGTH = 2
#: Sentinel meaning "slot empty" — warp ids are 0..47 so 63 is never valid.
_EMPTY_SLOT = _WARP_ID_MASK


def pack_pte(pfn: int, flags: int = PTE_FLAG_PRESENT | PTE_FLAG_WRITABLE) -> int:
    """Pack a physical frame number and flag bits into a 64-bit PTE."""
    if not 0 <= pfn < (1 << _PFN_BITS):
        raise ValueError(f"PFN out of range: {pfn:#x}")
    if flags & ~_FLAG_MASK:
        raise ValueError(f"flags out of low-12-bit range: {flags:#x}")
    empty_history = 0
    for slot in range(HISTORY_LENGTH):
        empty_history |= _EMPTY_SLOT << (slot * _WARP_ID_BITS)
    return (empty_history << _HISTORY_SHIFT) | (pfn << _PFN_SHIFT) | flags


def unpack_pte(pte: int) -> Tuple[int, int]:
    """Return ``(pfn, flags)`` from a packed PTE."""
    return (pte & _PFN_MASK) >> _PFN_SHIFT, pte & _FLAG_MASK


def pte_pfn(pte: int) -> int:
    """Physical frame number field of a packed PTE."""
    return (pte & _PFN_MASK) >> _PFN_SHIFT


def pte_history(pte: int) -> Tuple[int, ...]:
    """Warp-history list stored in the spare bits, most recent first."""
    raw = pte >> _HISTORY_SHIFT
    history = []
    for slot in range(HISTORY_LENGTH):
        warp_id = (raw >> (slot * _WARP_ID_BITS)) & _WARP_ID_MASK
        if warp_id != _EMPTY_SLOT:
            history.append(warp_id)
    return tuple(history)


def with_history(pte: int, warps: Sequence[int]) -> int:
    """Return ``pte`` with its warp-history field replaced by ``warps``.

    Only the most recent :data:`HISTORY_LENGTH` warps are kept.
    """
    raw = 0
    recent = list(warps)[:HISTORY_LENGTH]
    for slot in range(HISTORY_LENGTH):
        if slot < len(recent):
            warp_id = recent[slot]
            if not 0 <= warp_id < _EMPTY_SLOT:
                raise ValueError(f"warp id does not fit in 6 bits: {warp_id}")
        else:
            warp_id = _EMPTY_SLOT
        raw |= warp_id << (slot * _WARP_ID_BITS)
    low = pte & ((1 << _HISTORY_SHIFT) - 1)
    return (raw << _HISTORY_SHIFT) | low
