"""Versioned, deterministic mid-run snapshot/restore of simulator state.

Every stateful component in the simulator tree implements the state
protocol::

    state = component.state_dict()   # JSON-safe nested dict
    component.load_state(state)      # restores exactly that state

``Simulator.state_dict()`` composes the whole tree — TLBs and victim
arrays, page-table walkers, MSHRs, L1/L2/DRAM, warp schedulers
(including the CCWS/TA-CCWS/TCWS score tables), the TBC common-page
matrix, page table and physical memory, fault-model pending state, RNG
streams, interval samplers, the trace ring buffer, and ``CoreStats`` —
at a *safe point* (the top of a shader core's issue loop).  Restoring
that dict into a freshly constructed ``Simulator`` and finishing the
run yields a ``SimulationResult`` byte-identical to the uninterrupted
run; ``tests/snapshot/`` pins this for fig02 and fig11 cells with
tracing and profiling both on and off.

:mod:`repro.snapshot.store` persists snapshots atomically
(write + fsync + rename) inside a versioned envelope and tolerates
truncated or corrupt files on read; :mod:`repro.snapshot.runner` runs
sweep cells resumably, writing periodic snapshots from the safe-point
``poll`` hook so a SIGKILLed worker can restart mid-cell.
"""

from repro.snapshot.store import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotIncompatible,
    read_snapshot,
    snapshot_envelope,
    try_read_snapshot,
    write_snapshot,
)
from repro.snapshot.runner import (
    SnapshotPolicy,
    execute_cell_resumable,
    simulate_cell_resumable,
)

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotIncompatible",
    "SnapshotPolicy",
    "execute_cell_resumable",
    "read_snapshot",
    "simulate_cell_resumable",
    "snapshot_envelope",
    "try_read_snapshot",
    "write_snapshot",
]
