"""Resumable sweep-cell execution driven by safe-point snapshots.

:class:`SnapshotPolicy` is the bridge between the simulator's safe-point
``poll`` hook and the on-disk store: every ``every_cycles`` simulated
cycles it serializes ``Simulator.state_dict()`` into the versioned
envelope and persists it atomically, and it relays a rate-limited
heartbeat so a supervising parent can tell a slow worker from a dead
one.

:func:`simulate_cell_resumable` mirrors :func:`repro.api.simulate` for
one sweep cell but resumes from a snapshot when a compatible one exists;
:func:`execute_cell_resumable` mirrors
:func:`repro.parallel.cells.execute_cell` (bounded retries with seed
perturbation, per-attempt wall-clock guard) on top of it.  Both preserve
the determinism contract: a run resumed from any snapshot finishes with
a result byte-identical to the uninterrupted run.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.core.config import config_hash
from repro.core.results import SimulationResult
from repro.core.simulator import Simulator
from repro.faults.errors import SimulationError
from repro.faults.watchdog import wall_clock_guard
from repro.parallel.backoff import Backoff, for_cell_retries
from repro.parallel.cells import Cell, reseeded
from repro.prof.registry import record_result
from repro.snapshot.store import (
    SnapshotIncompatible,
    read_snapshot,
    snapshot_envelope,
    write_snapshot,
)
from repro.workloads.registry import get_workload

__all__ = [
    "SnapshotPolicy",
    "execute_cell_resumable",
    "simulate_cell_resumable",
]

#: Default snapshot period, in simulated cycles of the executing core.
DEFAULT_SNAPSHOT_CYCLES = 50_000

#: Polls between heartbeat relays (the poll hook fires every issue-loop
#: iteration; the heartbeat itself is cheap but not free).
_HEARTBEAT_MASK = 0xFF


class SnapshotPolicy:
    """Writes periodic snapshots (and heartbeats) from the poll hook.

    Parameters
    ----------
    path:
        Snapshot file location (atomically replaced on every write).
    every_cycles:
        Simulated cycles of the *currently executing core* between
        snapshots.  Core clocks restart from zero core to core, so the
        countdown re-arms when execution moves to the next core.
    heartbeat:
        Optional zero-argument callable relayed every ~256 polls (and
        before every snapshot write) — the supervised pool points this
        at its heartbeat file.
    """

    def __init__(
        self,
        path: str,
        *,
        every_cycles: int = DEFAULT_SNAPSHOT_CYCLES,
        heartbeat: Optional[Callable[[], None]] = None,
    ):
        if every_cycles <= 0:
            raise ValueError("snapshot interval must be positive cycles")
        self.path = path
        self.every_cycles = every_cycles
        self.heartbeat = heartbeat
        self.snapshots_written = 0
        self._sim: Optional[Simulator] = None
        self._meta: dict = {}
        self._core_id: Optional[int] = None
        self._last_cycle = 0
        self._polls = 0

    def bind(
        self,
        simulator: Simulator,
        *,
        config_hash: str,
        workload: str,
        form: Optional[str],
        miss_scale: float,
        attempt: int,
    ) -> None:
        """Attach the simulator whose state this policy persists."""
        self._sim = simulator
        self._meta = {
            "config_hash": config_hash,
            "workload": workload,
            "form": form,
            "miss_scale": miss_scale,
            "attempt": attempt,
        }

    def __call__(self, core) -> None:
        """The safe-point hook (see :meth:`ShaderCore.run`)."""
        self._polls += 1
        if self.heartbeat is not None and not (self._polls & _HEARTBEAT_MASK):
            self.heartbeat()
        if core.core_id != self._core_id:
            self._core_id = core.core_id
            self._last_cycle = core._now
            return
        if core._now - self._last_cycle < self.every_cycles:
            return
        self._last_cycle = core._now
        self.save(cycle=core._now)

    def save(self, cycle: int) -> None:
        """Snapshot the bound simulator right now."""
        if self._sim is None:
            raise RuntimeError("SnapshotPolicy.save before bind()")
        if self.heartbeat is not None:
            self.heartbeat()
        envelope = snapshot_envelope(cycle=cycle, state=self._sim.state_dict(), **self._meta)
        write_snapshot(self.path, envelope)
        self.snapshots_written += 1


def simulate_cell_resumable(
    cell: Cell,
    attempt: int = 0,
    *,
    snapshot_path: Optional[str] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_CYCLES,
    heartbeat: Optional[Callable[[], None]] = None,
) -> SimulationResult:
    """Simulate one attempt of ``cell``, resuming from ``snapshot_path``.

    When the path holds a readable snapshot for exactly this cell and
    attempt, the simulation restarts from it (skipping the already
    executed cycles); an unreadable/absent file means a fresh run, and a
    *valid* snapshot for a different cell or attempt raises
    :class:`~repro.snapshot.store.SnapshotIncompatible` (use
    :func:`execute_cell_resumable` for the lenient discard-and-rerun
    behaviour).  Periodic snapshots are written for the duration.
    """
    config = reseeded(cell.config, attempt)
    chash = config_hash(config)
    work_source = get_workload(cell.workload)
    work = work_source.build(config, form=cell.form, miss_scale=cell.miss_scale)
    sim = Simulator._build(config, work, work_source.name)
    poll = None
    if snapshot_path is not None:
        envelope = read_snapshot(
            snapshot_path,
            config_hash=chash,
            workload=cell.workload,
            attempt=attempt,
        )
        if envelope is not None:
            sim.load_state(envelope["state"])
        policy = SnapshotPolicy(
            snapshot_path, every_cycles=snapshot_every, heartbeat=heartbeat
        )
        policy.bind(
            sim,
            config_hash=chash,
            workload=cell.workload,
            form=cell.form,
            miss_scale=cell.miss_scale,
            attempt=attempt,
        )
        poll = policy
    elif heartbeat is not None:
        beats = [0]

        def poll(core, _beats=beats, _heartbeat=heartbeat):  # noqa: F811
            _beats[0] += 1
            if not (_beats[0] & _HEARTBEAT_MASK):
                _heartbeat()

    result = sim.run(poll)
    # Observation-only mirror into the unified metrics registry, exactly
    # as repro.api.simulate does (engine label included).
    record_result(result, engine=config.engine)
    return result


def _discard_snapshot(snapshot_path: Optional[str]) -> None:
    if snapshot_path is None:
        return
    try:
        os.remove(snapshot_path)
    except OSError:
        pass


def execute_cell_resumable(
    cell: Cell,
    retries: int = 0,
    timeout: Optional[float] = None,
    *,
    snapshot_path: Optional[str] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_CYCLES,
    heartbeat: Optional[Callable[[], None]] = None,
    backoff: Optional[Backoff] = None,
) -> SimulationResult:
    """Run ``cell`` with retries, wall-clock bounds, and snapshotting.

    The retry semantics match :func:`repro.parallel.cells.execute_cell`
    (including the decorrelated-jitter delay between attempts); on top
    of that, each attempt resumes from the on-disk snapshot when
    one matches (the supervised pool's restart path), a snapshot for a
    *different* attempt or cell is discarded rather than fatal (a retry
    reseeds the fault config, so the previous attempt's snapshot cannot
    be resumed), and the snapshot file is removed once the cell
    completes.
    """
    attempts = retries + 1
    if backoff is None and retries > 0:
        backoff = for_cell_retries(seed=cell.config.faults.seed)
    last_error: Optional[SimulationError] = None
    for attempt in range(attempts):
        try:
            with wall_clock_guard(timeout or 0.0, label=cell.describe()):
                try:
                    result = simulate_cell_resumable(
                        cell,
                        attempt,
                        snapshot_path=snapshot_path,
                        snapshot_every=snapshot_every,
                        heartbeat=heartbeat,
                    )
                except SnapshotIncompatible:
                    # Stale snapshot (earlier attempt, or an abandoned
                    # cell that once shared the path): never resume it,
                    # never wedge on it.
                    _discard_snapshot(snapshot_path)
                    result = simulate_cell_resumable(
                        cell,
                        attempt,
                        snapshot_path=snapshot_path,
                        snapshot_every=snapshot_every,
                        heartbeat=heartbeat,
                    )
            _discard_snapshot(snapshot_path)
            return result
        except SimulationError as exc:
            last_error = exc
            # The failed attempt's snapshot is useless to the reseeded
            # retry; drop it so the next attempt starts clean.
            _discard_snapshot(snapshot_path)
            if attempt + 1 < attempts and backoff is not None:
                backoff.sleep()
    assert last_error is not None
    last_error.add_context(
        series=cell.label, workload=cell.workload, attempts=attempts
    )
    raise last_error
