"""Atomic, versioned on-disk persistence for simulator snapshots.

Writes are crash-safe: the envelope is serialized to a temporary file
in the target directory, flushed and fsynced, then moved into place
with ``os.replace`` — a reader (or a resuming worker) only ever sees
the previous complete snapshot or the new complete snapshot, never a
torn one.  Reads are chaos-tolerant: :func:`try_read_snapshot` returns
``None`` for missing, truncated, or corrupt files (the chaos harness
truncates snapshots on purpose), so a worker that cannot resume simply
restarts the cell from scratch.

The envelope binds a snapshot to the exact cell it came from —
``config_hash``, workload name, trace form, ``miss_scale``, and the
retry ``attempt`` (retries reseed the fault config, which changes the
hash) — so a snapshot can never be resumed into a different
configuration; :func:`read_snapshot` raises
:class:`SnapshotIncompatible` on any mismatch.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

#: Bump when the envelope layout or any component's state_dict schema
#: changes incompatibly; old snapshots are then refused (workers fall
#: back to a fresh run).
SNAPSHOT_SCHEMA_VERSION = 1

SNAPSHOT_KIND = "repro-simulator-snapshot"

__all__ = [
    "SNAPSHOT_KIND",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotIncompatible",
    "read_snapshot",
    "snapshot_envelope",
    "try_read_snapshot",
    "write_snapshot",
]


class SnapshotIncompatible(Exception):
    """The snapshot on disk does not match the cell being resumed."""


def snapshot_envelope(
    *,
    config_hash: str,
    workload: str,
    form: Optional[str],
    miss_scale: float,
    attempt: int,
    cycle: int,
    state: Dict[str, Any],
) -> Dict[str, Any]:
    """Wrap a ``Simulator.state_dict()`` in the versioned envelope."""
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "kind": SNAPSHOT_KIND,
        "config_hash": config_hash,
        "workload": workload,
        "form": form,
        "miss_scale": miss_scale,
        "attempt": attempt,
        "cycle": cycle,
        "state": state,
    }


def write_snapshot(path: str, envelope: Dict[str, Any]) -> None:
    """Atomically persist ``envelope`` at ``path`` (write + fsync +
    rename; the temp file lives in the same directory so the rename
    never crosses filesystems)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    tmp_path = os.path.join(
        directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    payload = json.dumps(envelope, sort_keys=True)
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.remove(tmp_path)
            except OSError:
                pass


def try_read_snapshot(path: str) -> Optional[Dict[str, Any]]:
    """Read a snapshot envelope, or ``None`` if the file is missing,
    truncated, corrupt, or from an incompatible schema version.

    This is the resume path's entry point: any unreadable snapshot
    means "start the cell over", never an exception.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(envelope, dict):
        return None
    if envelope.get("kind") != SNAPSHOT_KIND:
        return None
    if envelope.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        return None
    if not isinstance(envelope.get("state"), dict):
        return None
    return envelope


def read_snapshot(
    path: str,
    *,
    config_hash: str,
    workload: str,
    attempt: int,
) -> Optional[Dict[str, Any]]:
    """Read a snapshot and verify it belongs to the given cell attempt.

    Returns ``None`` when the file is absent or unreadable (resume
    falls back to a fresh run); raises :class:`SnapshotIncompatible`
    when a *valid* snapshot describes a different cell — resuming it
    would silently produce results for the wrong configuration.
    """
    envelope = try_read_snapshot(path)
    if envelope is None:
        return None
    mismatches = []
    if envelope.get("config_hash") != config_hash:
        mismatches.append("config_hash")
    if envelope.get("workload") != workload:
        mismatches.append("workload")
    if envelope.get("attempt") != attempt:
        mismatches.append("attempt")
    if mismatches:
        raise SnapshotIncompatible(
            f"snapshot {path!r} does not match the resuming cell "
            f"(mismatched: {', '.join(mismatches)})"
        )
    return envelope
