"""JSON-safe encodings for simulator state that JSON cannot hold natively.

Three conversions recur across ``state_dict`` implementations, and all
three must preserve information JSON objects would destroy:

* **Insertion-ordered int-keyed dicts** (LRU sets in the TLB, caches,
  and victim arrays): JSON object keys become strings and carry no
  ordering contract, so these serialize as lists of ``[key, value]``
  pairs — :func:`encode_pairs` / :func:`decode_pairs`.
* **Tuple-keyed dicts** (the TBC common-page matrix's
  ``(warp, vpn) -> count`` counters): flattened to ``[a, b, value]``
  triples — :func:`encode_triples` / :func:`decode_triples`.
* **``random.Random`` streams** (fault model and injector):
  ``getstate()`` returns nested tuples; :func:`encode_rng` /
  :func:`decode_rng` round-trip them through lists so the restored
  stream continues bit-for-bit where the original left off.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Tuple

__all__ = [
    "decode_pairs",
    "decode_rng",
    "decode_triples",
    "encode_pairs",
    "encode_rng",
    "encode_triples",
]


def encode_pairs(mapping: Dict[Any, Any]) -> List[List[Any]]:
    """Encode a dict as ``[key, value]`` pairs, preserving insertion
    order and non-string keys."""
    return [[key, value] for key, value in mapping.items()]


def decode_pairs(pairs: Iterable[Iterable[Any]]) -> Dict[Any, Any]:
    """Rebuild a dict from :func:`encode_pairs` output; insertion order
    follows the pair order."""
    return {key: value for key, value in pairs}


def encode_triples(mapping: Dict[Tuple[Any, Any], Any]) -> List[List[Any]]:
    """Encode a 2-tuple-keyed dict as ``[a, b, value]`` triples."""
    return [[a, b, value] for (a, b), value in mapping.items()]


def decode_triples(
    triples: Iterable[Iterable[Any]],
) -> Dict[Tuple[Any, Any], Any]:
    """Rebuild a 2-tuple-keyed dict from :func:`encode_triples` output."""
    return {(a, b): value for a, b, value in triples}


def encode_rng(rng: random.Random) -> List[Any]:
    """Encode ``rng.getstate()`` as a JSON-safe nested list."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def decode_rng(state: Iterable[Any]) -> random.Random:
    """Rebuild a ``random.Random`` whose stream continues exactly where
    the encoded one stopped."""
    version, internal, gauss = state
    rng = random.Random()
    rng.setstate((version, tuple(internal), gauss))
    return rng
