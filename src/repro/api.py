"""The stable public facade: ``simulate``, ``sweep``, ``figure``.

These three keyword-only entry points are the supported surface for
user code — everything the README quickstart does goes through them::

    from repro.api import simulate, sweep, figure

    result = simulate(config="augmented", workload="bfs")
    rows = sweep(configs={"base": "no_tlb", "aug": "augmented"},
                 workloads=["bfs", "kmeans"], jobs=4)
    fig07 = figure(name="fig07", jobs=4)

``config`` arguments accept a :class:`repro.core.config.GPUConfig`, a
preset name (see ``GPUConfig.preset`` / :data:`repro.core.presets.PRESETS`),
or a zero-argument factory returning a config.  Sweeps fan cells out to
a :mod:`repro.parallel` worker pool when ``jobs > 1``, reuse the
content-addressed result cache when ``cache`` names a directory, and
resume from ``checkpoint`` JSONL files — with series guaranteed
byte-identical to a serial run.

Older entry points (``repro.harness.experiment.run_config``, the
per-example ``run()`` helpers) remain as thin deprecated shims over
this module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.config import GPUConfig
from repro.core.results import SimulationResult
from repro.core.simulator import Simulator
from repro.prof.registry import record_result
from repro.workloads.base import TIMING_MISS_SCALE, Workload
from repro.workloads.registry import get_workload

__all__ = ["simulate", "sweep", "figure"]

ConfigLike = Union[GPUConfig, str, Callable[[], GPUConfig]]


def _resolve_config(config: ConfigLike) -> GPUConfig:
    if isinstance(config, GPUConfig):
        return config
    if isinstance(config, str):
        return GPUConfig.preset(config)
    if callable(config):
        built = config()
        if not isinstance(built, GPUConfig):
            raise TypeError(
                f"config factory returned {type(built).__name__}, "
                "expected GPUConfig"
            )
        return built
    raise TypeError(
        f"config must be a GPUConfig, preset name, or factory; "
        f"got {type(config).__name__}"
    )


def _resolve_workload(workload: Union[Workload, str]) -> Workload:
    if isinstance(workload, str):
        return get_workload(workload)
    return workload


def _progress_stream(progress: bool):
    import sys

    return sys.stderr if progress else None


def _available_engines():
    from repro.engines import available_engines

    return available_engines()


def _apply_engine(machine: GPUConfig, engine: Optional[str]) -> GPUConfig:
    """Return ``machine`` running on ``engine`` (validated); None keeps
    the config's own choice."""
    if engine is None:
        return machine
    from dataclasses import replace

    if engine not in _available_engines():
        raise ValueError(
            f"unknown engine {engine!r}; one of {sorted(_available_engines())}"
        )
    if machine.engine == engine:
        return machine
    return replace(machine, engine=engine)


def simulate(
    *,
    config: ConfigLike,
    workload: Union[Workload, str],
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Run one workload on one machine configuration.

    Parameters
    ----------
    config:
        A :class:`GPUConfig`, a preset name (``"no_tlb"``,
        ``"blocking"``, ``"augmented"``, ``"ideal"``, ...), or a
        zero-argument config factory.
    workload:
        A workload name (see :func:`repro.workloads.workload_names`) or
        a built :class:`repro.workloads.base.Workload`.
    form:
        ``None``/``"linear"`` for per-warp traces, ``"blocks"`` for the
        TBC experiments' thread-block form.
    miss_scale:
        Address-stream timing scale; figures use the default, workload
        characterization passes 1.0.
    engine:
        Simulator core (see :func:`repro.engines.available_engines`):
        ``"event"`` (the default) or ``"cycle"`` (the reference
        oracle).  ``None`` keeps the config's own ``engine`` field.
        Both produce byte-identical results; the engine still
        participates in config hashes and result-cache keys.
    """
    machine = _apply_engine(_resolve_config(config), engine)
    work_source = _resolve_workload(workload)
    work = work_source.build(machine, form=form, miss_scale=miss_scale)
    result = Simulator._build(machine, work, work_source.name).run()
    # Observation-only mirror of the run's counters into the unified
    # metrics registry; never feeds back into results.  The engine label
    # keeps per-engine series separable (and lets tests pin that both
    # engines mirror identical sim_* counters).
    record_result(result, engine=machine.engine)
    return result


def sweep(
    *,
    configs: Mapping[str, ConfigLike],
    workloads: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    checkpoint: Optional[str] = None,
    retries: int = 0,
    cache: Optional[str] = None,
    cache_max_mb: Optional[float] = None,
    timeout: Optional[float] = None,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
    baseline: Optional[str] = None,
    progress: bool = False,
    engine: Optional[str] = None,
) -> List["FigureResult"]:
    """Run every (config, workload) cell, optionally in parallel.

    Returns one :class:`repro.harness.experiment.FigureResult` per
    config label (in ``configs`` order), each carrying a ``"cycles"``
    series over the workloads — plus a ``"speedup vs <baseline>"``
    series when ``baseline`` names one of the labels.

    ``jobs`` > 1 fans cells out to that many worker processes (series
    stay byte-identical to a serial run); ``checkpoint`` makes the sweep
    resumable; ``cache`` names a content-addressed result-cache
    directory shared across sweeps and figures (``cache_max_mb`` bounds
    its size with LRU eviction); ``timeout`` bounds each cell's
    wall-clock seconds; ``retries`` re-attempts cells that die with a
    structured simulator error; ``engine`` runs every cell on the named
    simulator core (``"event"``/``"cycle"``), overriding each config's
    own choice (the engine is part of cache keys, so the two engines
    never collide in the result cache).
    """
    from repro.harness.experiment import (
        FigureResult,
        run_matrix,
        sweep_session,
    )

    if engine is not None and engine not in _available_engines():
        raise ValueError(
            f"unknown engine {engine!r}; one of {sorted(_available_engines())}"
        )
    if baseline is not None and baseline not in configs:
        raise ValueError(
            f"baseline {baseline!r} is not a config label; "
            f"have {sorted(configs)}"
        )
    factories = {
        label: (lambda spec=spec: _apply_engine(_resolve_config(spec), engine))
        for label, spec in configs.items()
    }
    with sweep_session(
        checkpoint_path=checkpoint,
        cell_retries=retries,
        jobs=jobs,
        cache_dir=cache,
        cell_timeout=timeout,
        progress_stream=_progress_stream(progress),
        cache_max_mb=cache_max_mb,
    ):
        results = run_matrix(
            factories, workloads=workloads, form=form, miss_scale=miss_scale
        )
    rows: List[FigureResult] = []
    for label, per_workload in results.items():
        series: Dict[str, Dict[str, float]] = {
            "cycles": {
                name: float(result.cycles)
                for name, result in per_workload.items()
            }
        }
        if baseline is not None and label != baseline:
            series[f"speedup vs {baseline}"] = {
                name: result.speedup_vs(results[baseline][name])
                for name, result in per_workload.items()
            }
        rows.append(
            FigureResult(
                figure=label,
                title=factories[label]().describe(),
                series=series,
            )
        )
    return rows


def figure(
    *,
    name: str,
    workloads: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    checkpoint: Optional[str] = None,
    retries: int = 0,
    cache: Optional[str] = None,
    cache_max_mb: Optional[float] = None,
    timeout: Optional[float] = None,
    progress: bool = False,
    engine: Optional[str] = None,
) -> "FigureResult":
    """Regenerate one paper figure (``"fig02"`` ... ``"sec9"``).

    The figure's sweep inherits ``jobs``/``checkpoint``/``cache``/
    ``retries``/``timeout`` exactly as :func:`sweep` does, and
    ``engine`` runs every cell of the figure on the named simulator
    core (``"event"``/``"cycle"``; None keeps each config's own).
    Unknown names raise ``ValueError`` listing the valid figure ids.
    """
    from repro.harness.experiment import sweep_session
    from repro.harness.figures import ALL_FIGURES

    driver = ALL_FIGURES.get(name)
    if driver is None:
        raise ValueError(
            f"unknown figure {name!r}; choose from {sorted(ALL_FIGURES)}"
        )
    with sweep_session(
        checkpoint_path=checkpoint,
        cell_retries=retries,
        jobs=jobs,
        cache_dir=cache,
        cell_timeout=timeout,
        progress_stream=_progress_stream(progress),
        cache_max_mb=cache_max_mb,
        engine=engine,
    ):
        return driver(workloads=workloads)
