"""The ``python -m repro.harness faults`` subcommand.

A fault-injection smoke run: executes one (configuration, workload)
pair with the :mod:`repro.faults` subsystem enabled — demand paging
and/or seeded injection — and prints the fault counters.  With
``--check-determinism`` the run executes twice and the command fails
unless both produce byte-identical serialized results, which is the
property every fault-injection experiment in this repo depends on
(same seed → same fault sites → same cycle counts).

CI runs ``python -m repro.harness faults --tiny --check-determinism``
as its robustness smoke test.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core import presets
from repro.core.simulator import Simulator
from repro.engines import EngineFeatureError, available_engines
from repro.faults.config import FaultConfig
from repro.harness.experiment import DEFAULT_WARMUP
from repro.harness.trace import _tiny_workload
from repro.workloads.base import TIMING_MISS_SCALE, Workload
from repro.workloads.registry import get_workload, workload_names


def _resolve_workload(name: Optional[str], tiny: bool) -> Workload:
    if tiny:
        return _tiny_workload()
    target = name or "bfs"
    if target not in workload_names():
        raise KeyError(
            f"unknown workload {target!r}; choose from {workload_names()}"
        )
    return get_workload(target)


def run_faulty(
    workload: Optional[str] = None,
    tiny: bool = False,
    demand_paging: bool = True,
    minor_fraction: float = 0.3,
    ptw_error_rate: float = 0.01,
    shootdown_rate: float = 0.001,
    invalidate_rate: float = 0.01,
    seed: int = 1,
    watchdog_cycles: int = 2_000_000,
    engine: Optional[str] = None,
):
    """Run the augmented design with faults enabled; return the result."""
    wl = _resolve_workload(workload, tiny)
    config = presets.augmented_tlb(warmup_instructions=DEFAULT_WARMUP)
    if engine is not None:
        config = config.with_(engine=engine)
    if tiny:
        config = config.with_(
            num_cores=1, warps_per_core=8, warp_width=8, warmup_instructions=0
        )
    config = config.with_(
        faults=FaultConfig(
            enabled=True,
            demand_paging=demand_paging,
            minor_fraction=minor_fraction,
            ptw_error_rate=ptw_error_rate,
            tlb_shootdown_rate=shootdown_rate,
            tlb_invalidate_rate=invalidate_rate,
            seed=seed,
            watchdog_cycles=watchdog_cycles,
        )
    )
    work = wl.build(config, miss_scale=TIMING_MISS_SCALE)
    return Simulator._build(config, work, wl.name).run(), config


def render_report(result, config) -> str:
    """The text report the subcommand prints."""
    stats = result.stats
    return "\n".join(
        [
            f"== faults: {result.workload} ==",
            f"config: {config.describe()}",
            f"cycles: {result.cycles}  instructions: {stats.instructions}",
            f"page faults: {stats.page_faults} "
            f"({stats.page_faults_minor} minor, {stats.page_faults_major} major, "
            f"{stats.page_fault_stall_cycles} stall cycles)",
            f"ptw: {stats.ptw_transient_errors} transient errors, "
            f"{stats.ptw_retries} retries, {stats.ptw_walk_timeouts} timeouts",
            f"tlb: {stats.tlb_shootdowns} shootdowns, "
            f"{stats.tlb_injected_invalidations} injected invalidations",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness faults",
        description="Fault-injection smoke run (demand paging + injection).",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload name (default: bfs; ignored with --tiny)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke mode: 8-warp core and a tiny workload (CI uses this)",
    )
    parser.add_argument(
        "--no-paging",
        action="store_true",
        help="disable demand paging (injection only)",
    )
    parser.add_argument(
        "--ptw-error-rate", type=float, default=0.01,
        help="per-load transient walk error probability (default 0.01)",
    )
    parser.add_argument(
        "--shootdown-rate", type=float, default=0.001,
        help="per-access full-TLB shootdown probability (default 0.001)",
    )
    parser.add_argument(
        "--invalidate-rate", type=float, default=0.01,
        help="per-fill single-entry invalidation probability (default 0.01)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="fault seed (default 1)"
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(available_engines()),
        help="simulator core (default: the config's own, normally "
        "'event'; both engines produce byte-identical fault runs)",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run twice; fail unless both runs serialize identically",
    )
    args = parser.parse_args(argv)
    try:
        result, config = run_faulty(
            workload=args.workload,
            tiny=args.tiny,
            demand_paging=not args.no_paging,
            ptw_error_rate=args.ptw_error_rate,
            shootdown_rate=args.shootdown_rate,
            invalidate_rate=args.invalidate_rate,
            seed=args.seed,
            engine=args.engine,
        )
    except (KeyError, EngineFeatureError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2
    print(render_report(result, config))
    if args.check_determinism:
        rerun, _ = run_faulty(
            workload=args.workload,
            tiny=args.tiny,
            demand_paging=not args.no_paging,
            ptw_error_rate=args.ptw_error_rate,
            shootdown_rate=args.shootdown_rate,
            invalidate_rate=args.invalidate_rate,
            seed=args.seed,
            engine=args.engine,
        )
        if rerun.to_json() != result.to_json():
            print("DETERMINISM VIOLATION: reruns differ", file=sys.stderr)
            return 1
        print("determinism: rerun byte-identical")
    return 0
