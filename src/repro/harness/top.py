"""``python -m repro.harness top`` — live ops view over the metrics.

A terminal dashboard (curses full-screen when available, plain text
frames otherwise) rendered from the Prometheus exposition the repo
already publishes: scrape a running ``repro.serve`` daemon's
``/metrics`` endpoint with ``--url``, or follow a textfile-collector
scrape with ``--file``.  Shows queue depth, live leases, cache reuse,
per-engine simulated throughput (scrape-to-scrape rate), and the
in-flight sweep's projected remaining seconds — the same numbers as
``GET /dashboard``, without leaving the terminal.

Usage::

    python -m repro.harness top --url http://127.0.0.1:8750
    python -m repro.harness top --file metrics.prom --interval 1
    python -m repro.harness top --url ... --once --plain   # one frame

Observation-only: nothing here feeds back into simulations or the
server.  ``q`` quits the curses view; Ctrl-C quits either view.

A vanished daemon does not kill the view: the last good frame stays on
screen under a ``DISCONNECTED`` banner while the scraper reconnects
through the shared decorrelated-jitter backoff — restart the daemon
and the view heals itself.  When the daemon publishes ``dist_*``
metrics (a coordinator is enabled), a fleet row appears: live workers,
cells by state, fenced pushes, expired leases — flagged ``DEGRADED``
when cells are pending but no worker is live.
"""

from __future__ import annotations

import argparse
import http.client
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.parallel.backoff import Backoff
from repro.prof.export import parse_prometheus

#: Failures that mean "the daemon is unreachable", not "bad data".
_SCRAPE_ERRORS = (
    OSError,
    ValueError,
    urllib.error.URLError,
    http.client.HTTPException,
)

Samples = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]


def scrape_url(url: str, timeout_s: float = 5.0) -> str:
    """Fetch ``<url>/metrics`` (or ``url`` verbatim if it already ends
    with ``/metrics``)."""
    target = url if url.rstrip("/").endswith("/metrics") else (
        url.rstrip("/") + "/metrics"
    )
    with urllib.request.urlopen(target, timeout=timeout_s) as response:
        return response.read().decode("utf-8")


def scrape_file(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _value(samples: Samples, name: str, **labels: str) -> Optional[float]:
    return samples.get((name, tuple(sorted(labels.items()))))


def _by_label(samples: Samples, name: str, label: str) -> Dict[str, float]:
    """Sum the family's series grouped by one label's value."""
    out: Dict[str, float] = {}
    for (sample_name, labels), value in samples.items():
        if sample_name != name:
            continue
        key = dict(labels).get(label, "(unlabeled)")
        out[key] = out.get(key, 0.0) + value
    return out


def _fmt(value: Optional[float], suffix: str = "") -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return f"{int(value)}{suffix}"
    return f"{value:.1f}{suffix}"


class TopView:
    """Turns successive metric scrapes into rendered frames.

    Holds the previous scrape's per-engine cycle totals, so the
    throughput column is a true scrape-to-scrape rate rather than a
    since-start average.
    """

    def __init__(self, source: str):
        self.source = source
        self._prev: Dict[str, Tuple[float, float]] = {}
        self.frames = 0
        #: Last successfully rendered frame (shown while disconnected).
        self.last_good: Optional[str] = None
        #: Monotonic instant the current outage began (None = healthy).
        self.disconnected_since: Optional[float] = None

    # -- model ---------------------------------------------------------

    def build(self, samples: Samples, now: float) -> Dict[str, Any]:
        engines: List[Dict[str, Any]] = []
        cycles = _by_label(samples, "sim_cycles", "engine")
        instructions = _by_label(samples, "sim_instructions", "engine")
        for engine in sorted(cycles):
            total = cycles[engine]
            prev = self._prev.get(engine)
            rate: Optional[float] = None
            if prev is not None and now > prev[0]:
                rate = max(0.0, (total - prev[1]) / (now - prev[0]))
            self._prev[engine] = (now, total)
            engines.append(
                {
                    "engine": engine,
                    "cycles": int(total),
                    "instructions": int(instructions.get(engine, 0)),
                    "cycles_per_s": rate,
                }
            )
        cells = _by_label(samples, "sweep_cells_total", "source")
        cell_sum = _value(samples, "sweep_cell_seconds_sum")
        cell_count = _value(samples, "sweep_cell_seconds_count")
        mean_cell = (
            cell_sum / cell_count if cell_sum and cell_count else None
        )
        in_flight_cells = _value(samples, "sweep_in_flight")
        sweep_eta = (
            in_flight_cells * mean_cell
            if in_flight_cells and mean_cell is not None
            else None
        )
        view: Dict[str, Any] = {
            "engines": engines,
            "cells": {
                "simulated": int(cells.get("simulated", 0)),
                "cache": int(cells.get("cache", 0)),
                "checkpoint": int(cells.get("checkpoint", 0)),
                "failed": int(cells.get("failed", 0)),
            },
            "sweep": {
                "in_flight": (
                    int(in_flight_cells) if in_flight_cells is not None else 0
                ),
                "mean_cell_s": mean_cell,
                "eta_s": sweep_eta,
            },
            "serve": None,
        }
        queue_depth = _value(samples, "serve_queue_depth")
        if queue_depth is not None:
            terminal = _by_label(samples, "serve_jobs_terminal_total", "state")
            view["serve"] = {
                "queue_depth": int(queue_depth),
                "in_flight": int(_value(samples, "serve_in_flight") or 0),
                "slots": int(_value(samples, "serve_slots") or 0),
                "ready": (_value(samples, "serve_ready") or 0) >= 1,
                "done": int(terminal.get("done", 0)),
                "failed": int(terminal.get("failed", 0)),
                "rejections": sum(
                    _by_label(
                        samples, "serve_admission_rejections_total", "reason"
                    ).values()
                ),
                "expirations": _value(
                    samples, "serve_lease_expirations_total"
                )
                or 0,
            }
        view["dist"] = None
        dist_cells = _by_label(samples, "dist_cells", "state")
        workers_live = _value(samples, "dist_workers_live")
        if dist_cells or workers_live is not None:
            queued = int(dist_cells.get("queued", 0))
            running = int(dist_cells.get("running", 0))
            view["dist"] = {
                "workers_live": int(workers_live or 0),
                "queued": queued,
                "running": running,
                "done": int(dist_cells.get("done", 0)),
                "failed": int(dist_cells.get("failed", 0)),
                "stale": sum(
                    _by_label(
                        samples, "dist_stale_results_total", "reason"
                    ).values()
                ),
                "expirations": _value(
                    samples, "dist_lease_expirations_total"
                )
                or 0,
                "degraded": int(workers_live or 0) == 0
                and (queued + running) > 0,
            }
        return view

    # -- rendering -----------------------------------------------------

    def render(self, samples: Samples, now: Optional[float] = None) -> str:
        if now is None:
            now = time.monotonic()
        view = self.build(samples, now)
        self.frames += 1
        lines = [
            f"repro top — {self.source} — "
            f"{time.strftime('%H:%M:%S')} (frame {self.frames})",
            "",
        ]
        serve = view["serve"]
        if serve is not None:
            status = "ready" if serve["ready"] else "NOT READY"
            lines.append(
                f"serve    {status} · queue {serve['queue_depth']} · "
                f"in-flight {serve['in_flight']} · slots {serve['slots']}"
            )
            lines.append(
                f"jobs     done {serve['done']} · failed {serve['failed']}"
                f" · rejected {_fmt(serve['rejections'])}"
                f" · leases expired {_fmt(serve['expirations'])}"
            )
            lines.append("")
        dist = view["dist"]
        if dist is not None:
            fleet = (
                "DEGRADED (cells pending, no live workers)"
                if dist["degraded"]
                else f"{dist['workers_live']} worker(s) live"
            )
            lines.append(
                f"dist     {fleet} · cells queued {dist['queued']} · "
                f"running {dist['running']} · done {dist['done']} · "
                f"failed {dist['failed']}"
            )
            lines.append(
                f"         stale pushes {_fmt(dist['stale'])} · "
                f"leases expired {_fmt(dist['expirations'])}"
            )
            lines.append("")
        cells = view["cells"]
        reused = cells["cache"] + cells["checkpoint"]
        lines.append(
            f"cells    simulated {cells['simulated']} · reused {reused} "
            f"(cache {cells['cache']}, checkpoint {cells['checkpoint']})"
            f" · failed {cells['failed']}"
        )
        sweep = view["sweep"]
        lines.append(
            f"sweep    in-flight {sweep['in_flight']}"
            f" · mean cell {_fmt(sweep['mean_cell_s'], 's')}"
            f" · eta {_fmt(sweep['eta_s'], 's')}"
        )
        lines.append("")
        lines.append(
            f"{'engine':10s} {'sim cycles':>14s} {'instructions':>14s} "
            f"{'cycles/s':>12s}"
        )
        if view["engines"]:
            for row in view["engines"]:
                lines.append(
                    f"{row['engine']:10s} {row['cycles']:>14,d} "
                    f"{row['instructions']:>14,d} "
                    f"{_fmt(row['cycles_per_s']):>12s}"
                )
        else:
            lines.append("(no simulations recorded yet)")
        return "\n".join(lines)


def _render_disconnected(view: TopView, error: Exception) -> str:
    """The degraded frame: a banner over the last good data.

    The view never blanks on an outage — operators keep the most
    recent numbers, clearly labeled stale, while the scraper
    reconnects with backoff.
    """
    if view.disconnected_since is None:
        view.disconnected_since = time.monotonic()
    age = time.monotonic() - view.disconnected_since
    banner = (
        f"repro top — {view.source} — {time.strftime('%H:%M:%S')}\n"
        f"*** DISCONNECTED {age:.0f}s — {type(error).__name__}: {error}\n"
        f"*** reconnecting with backoff; frame below is the last "
        f"received"
    )
    if view.last_good is None:
        return banner + "\n\n(no frame ever received from this source)"
    return banner + "\n\n" + view.last_good


def _frame(view: TopView, scrape) -> Tuple[str, bool]:
    """One rendered frame; False when the scrape failed."""
    try:
        samples = parse_prometheus(scrape())
    except _SCRAPE_ERRORS as exc:
        return _render_disconnected(view, exc), False
    view.disconnected_since = None
    text = view.render(samples)
    view.last_good = text
    return text, True


def _retry_delay(interval_s: float, backoff: Backoff) -> float:
    """Reconnect cadence while disconnected: jittered, never slower
    than the healthy refresh (a restarted daemon shows up fast)."""
    return min(interval_s, max(0.1, backoff.next()))


def _run_plain(
    view: TopView,
    scrape,
    interval_s: float,
    once: bool,
    sleep=time.sleep,
) -> int:
    backoff = Backoff()
    while True:
        text, ok = _frame(view, scrape)
        print(text, flush=True)
        if once:
            return 0 if ok else 1
        print("-" * 72, flush=True)
        if ok:
            backoff.reset()
            delay = interval_s
        else:
            delay = _retry_delay(interval_s, backoff)
        try:
            sleep(delay)
        except KeyboardInterrupt:
            return 0


def _run_curses(view: TopView, scrape, interval_s: float) -> int:
    import curses

    def loop(screen) -> int:
        curses.use_default_colors()
        backoff = Backoff()
        while True:
            text, ok = _frame(view, scrape)
            if ok:
                backoff.reset()
                screen.timeout(int(interval_s * 1000))
            else:
                screen.timeout(
                    int(_retry_delay(interval_s, backoff) * 1000)
                )
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(text.splitlines()):
                if y >= max_y - 1:
                    break
                screen.addnstr(y, 0, line, max_x - 1)
            footer = "q quits · refresh every " f"{interval_s:g}s"
            if max_y >= 2:
                screen.addnstr(max_y - 1, 0, footer, max_x - 1)
            screen.refresh()
            try:
                key = screen.getch()
            except KeyboardInterrupt:
                return 0
            if key in (ord("q"), ord("Q")):
                return 0

    try:
        return curses.wrapper(loop)
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness top",
        description="Live terminal view over the published metrics.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url",
        help="repro.serve base URL (its /metrics endpoint is scraped)",
    )
    source.add_argument(
        "--file",
        help="Prometheus textfile scrape to read each frame",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default 2)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame to stdout and exit "
        "(exit 1 if the scrape failed)",
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="plain text frames (no curses); implied by --once or a "
        "non-tty stdout",
    )
    args = parser.parse_args(argv)

    if args.url:
        source_label = args.url
        scrape = lambda: scrape_url(args.url)  # noqa: E731
    else:
        source_label = args.file
        scrape = lambda: scrape_file(args.file)  # noqa: E731
    view = TopView(source_label)
    interval = max(0.1, args.interval)
    if args.once:
        return _run_plain(view, scrape, interval, once=True)
    if args.plain or not sys.stdout.isatty():
        return _run_plain(view, scrape, interval, once=False)
    try:
        import curses  # noqa: F401
    except ImportError:  # pragma: no cover - curses is stdlib on linux
        return _run_plain(view, scrape, interval, once=False)
    return _run_curses(view, scrape, interval)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
