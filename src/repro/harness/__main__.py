"""Command-line entry point: regenerate paper figures, trace a run.

Usage::

    python -m repro.harness list
    python -m repro.harness fig10
    python -m repro.harness fig13 --workloads bfs,kmeans
    python -m repro.harness all --checkpoint sweep.jsonl --retries 2
    python -m repro.harness trace fig04 --out traces/
    python -m repro.harness trace bfs --tiny
    python -m repro.harness faults --tiny --check-determinism

Each figure id maps to a driver in :mod:`repro.harness.figures`; the
rendered table prints to stdout.  ``trace`` runs one configuration with
the :mod:`repro.obs` event tracer enabled and writes ``trace.jsonl`` and
``trace.chrome.json`` (see :mod:`repro.harness.trace`); ``faults`` is
the fault-injection smoke run (see :mod:`repro.harness.faults`).

``--checkpoint`` makes a figure sweep resumable: each completed
(config, workload) cell appends to the JSONL file as it finishes, and a
rerun skips the recorded cells.  ``--retries`` retries cells that die
with a structured simulator error (hang, permanent walk failure) before
recording the failure.  Unknown figure or workload names exit with
status 2 and a message naming the valid choices.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiment import sweep_session
from repro.harness.figures import ALL_FIGURES
from repro.workloads.registry import workload_names


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        from repro.harness.trace import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "faults":
        from repro.harness.faults import main as faults_main

        return faults_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig10), 'all', or 'list'",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated workload subset (default: all six)",
        default=None,
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="JSONL checkpoint file; completed sweep cells are recorded "
        "there and skipped on rerun",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per sweep cell after a simulator error "
        "(default 0)",
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        for key, fn in ALL_FIGURES.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:8s} {summary}")
        return 0

    workloads = args.workloads.split(",") if args.workloads else None
    if workloads:
        known = set(workload_names())
        bad = [w for w in workloads if w not in known]
        if bad:
            print(
                f"unknown workload(s) {bad}; choose from "
                f"{sorted(known)}",
                file=sys.stderr,
            )
            return 2
    targets = list(ALL_FIGURES) if args.figure == "all" else [args.figure]
    unknown = [t for t in targets if t not in ALL_FIGURES]
    if unknown:
        print(
            f"unknown figure(s) {unknown}; try 'list'", file=sys.stderr
        )
        return 2
    with sweep_session(
        checkpoint_path=args.checkpoint, cell_retries=args.retries
    ):
        for target in targets:
            figure = ALL_FIGURES[target](workloads=workloads)
            print(figure.render())
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
