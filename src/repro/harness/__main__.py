"""Command-line entry point: regenerate paper figures, trace a run.

Usage::

    python -m repro.harness list
    python -m repro.harness fig10
    python -m repro.harness fig13 --workloads bfs,kmeans
    python -m repro.harness all
    python -m repro.harness trace fig04 --out traces/
    python -m repro.harness trace bfs --tiny

Each figure id maps to a driver in :mod:`repro.harness.figures`; the
rendered table prints to stdout.  ``trace`` runs one configuration with
the :mod:`repro.obs` event tracer enabled and writes ``trace.jsonl`` and
``trace.chrome.json`` (see :mod:`repro.harness.trace`).
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.figures import ALL_FIGURES


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        from repro.harness.trace import main as trace_main

        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig10), 'all', or 'list'",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated workload subset (default: all six)",
        default=None,
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        for key, fn in ALL_FIGURES.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:8s} {summary}")
        return 0

    workloads = args.workloads.split(",") if args.workloads else None
    targets = list(ALL_FIGURES) if args.figure == "all" else [args.figure]
    unknown = [t for t in targets if t not in ALL_FIGURES]
    if unknown:
        print(
            f"unknown figure(s) {unknown}; try 'list'", file=sys.stderr
        )
        return 2
    for target in targets:
        figure = ALL_FIGURES[target](workloads=workloads)
        print(figure.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
