"""Command-line entry point: regenerate paper figures, trace a run.

Usage::

    python -m repro.harness list
    python -m repro.harness fig10
    python -m repro.harness fig13 --workloads bfs,kmeans
    python -m repro.harness fig07 --jobs 4
    python -m repro.harness fig10 --engine cycle
    python -m repro.harness all --checkpoint sweep.jsonl --retries 2 \
        --jobs 8 --cache ~/.cache/repro-sweeps
    python -m repro.harness fig07 --json > fig07.json
    python -m repro.harness trace fig04 --out traces/
    python -m repro.harness trace bfs --tiny
    python -m repro.harness explain fig02 --quick
    python -m repro.harness explain bfs --out explain/ --json
    python -m repro.harness faults --tiny --check-determinism
    python -m repro.harness bench --quick
    python -m repro.harness bench --full --strict
    python -m repro.harness chaos --quick --seed 7
    python -m repro.harness chaos --server --quick
    python -m repro.harness serve --journal serve.jsonl --cache ~/.cache/repro
    python -m repro.harness worker --coordinator http://127.0.0.1:8750
    python -m repro.harness top --url http://127.0.0.1:8750
    python -m repro.harness top --file metrics.prom --once --plain

Each figure id maps to a driver in :mod:`repro.harness.figures`, run
through the stable :mod:`repro.api` facade; the rendered table prints
to stdout (``--json`` prints the figure's canonical JSON instead).

``--jobs N`` fans the sweep's (config, workload) cells out to N worker
processes (default: one per CPU core); the series are byte-identical to
a serial run.  ``--cache DIR`` enables the content-addressed result
cache, so reruns and overlapping figures skip already-simulated cells.
``--checkpoint`` makes a sweep resumable: each completed cell appends
to the JSONL file as it finishes, and a rerun skips the recorded cells.
``--retries`` retries cells that die with a structured simulator error
(hang, permanent walk failure) before recording the failure, and
``--timeout`` bounds each cell's wall-clock seconds.  Unknown figure or
workload names exit with status 2 and a message naming the valid
choices.

``trace`` runs one configuration with the :mod:`repro.obs` event tracer
enabled and writes ``trace.jsonl`` and ``trace.chrome.json`` (see
:mod:`repro.harness.trace`); ``explain`` runs one configuration with
causal span recording on and prints the critical-path latency
attribution — where each missed translation's cycles went (see
:mod:`repro.harness.explain`); ``faults`` is the fault-injection smoke
run (see :mod:`repro.harness.faults`); ``bench`` profiles a calibrated
figure matrix and records a ``BENCH_<n>.json`` perf-trajectory report
(see :mod:`repro.harness.bench`); ``chaos`` is the seeded recovery
campaign — SIGKILLed workers, torn checkpoint/snapshot files, injected
faults — proving recovered sweeps byte-identical to clean serial runs
(see :mod:`repro.harness.chaos`; ``chaos --server`` attacks the serve
daemon instead — SIGKILL mid-sweep, torn journal, expired leases,
admission floods, and ``chaos --distributed`` attacks the
coordinator/worker sharding protocol — SIGKILLed workers mid-cell,
partitions while holding a lease, duplicated completion pushes, torn
result bodies); ``serve`` runs the crash-safe simulation server
(see :mod:`repro.serve`); ``worker`` pulls and executes sweep cells
from a coordinator (see :mod:`repro.dist.worker`); ``top`` is the live
terminal ops view over a
serve daemon's ``/metrics`` endpoint or a Prometheus textfile scrape
(see :mod:`repro.harness.top`).
"""

from __future__ import annotations

import argparse
import sys

from repro.api import figure as api_figure
from repro.engines import available_engines
from repro.harness.figures import ALL_FIGURES
from repro.parallel.pool import default_jobs
from repro.workloads.registry import workload_names


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    from repro.obs import log as _log

    _log.configure_from_env()
    if argv and argv[0] == "trace":
        from repro.harness.trace import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "explain":
        from repro.harness.explain import main as explain_main

        return explain_main(argv[1:])
    if argv and argv[0] == "faults":
        from repro.harness.faults import main as faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.harness.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.harness.chaos import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.app import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "worker":
        from repro.dist.worker import main as worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.harness.top import main as top_main

        return top_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig10), 'all', or 'list'",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated workload subset (default: all six)",
        default=None,
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep cells (default: CPU count; "
        "1 = serial; results are byte-identical either way)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="content-addressed result-cache directory; identical "
        "(config, workload) cells are simulated once across figures "
        "and reruns",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="bound the result cache's size; stores past the bound "
        "evict least-recently-used entries",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="JSONL checkpoint file; completed sweep cells are recorded "
        "there and skipped on rerun",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per sweep cell after a simulator error "
        "(default 0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per sweep cell attempt (default: none)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(available_engines()),
        help="simulator core for every cell (default: each config's "
        "own, normally 'event'; 'cycle' is the reference oracle — "
        "both produce byte-identical figures)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print each figure as canonical JSON instead of a table",
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        for key, fn in ALL_FIGURES.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:8s} {summary}")
        return 0

    workloads = args.workloads.split(",") if args.workloads else None
    if workloads:
        known = set(workload_names())
        bad = [w for w in workloads if w not in known]
        if bad:
            print(
                f"unknown workload(s) {bad}; choose from "
                f"{sorted(known)}",
                file=sys.stderr,
            )
            return 2
    targets = list(ALL_FIGURES) if args.figure == "all" else [args.figure]
    unknown = [t for t in targets if t not in ALL_FIGURES]
    if unknown:
        print(
            f"unknown figure(s) {unknown}; try 'list'", file=sys.stderr
        )
        return 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    for target in targets:
        result = api_figure(
            name=target,
            workloads=workloads,
            jobs=jobs,
            checkpoint=args.checkpoint,
            retries=args.retries,
            cache=args.cache,
            cache_max_mb=args.cache_max_mb,
            timeout=args.timeout,
            progress=jobs > 1,
            engine=args.engine,
        )
        if args.json:
            print(result.to_json(indent=2))
        else:
            print(result.render())
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
