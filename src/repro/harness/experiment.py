"""Generic experiment plumbing shared by the per-figure drivers.

Sweeps are resumable and parallelizable: wrap figure calls in
:func:`sweep_session` (the CLI's ``--checkpoint``/``--retries``/
``--jobs``/``--cache`` flags do this) and every (config, workload) cell
:func:`run_matrix` executes is resolved through the
:class:`repro.parallel.pool.SweepExecutor` — checkpoint first, then the
content-addressed result cache, then simulation, fanned out to a worker
pool when ``jobs > 1``.  Parallel execution is guaranteed to produce
byte-identical results to a serial run (cells carry their own seeds;
nothing depends on completion order).

A cell that raises a structured
:class:`repro.faults.errors.SimulationError` (hang, permanent walk
error, wall-clock timeout) is retried up to ``cell_retries`` times —
with the fault seed perturbed on each retry so deterministic injection
does not simply replay the identical failure — and recorded as a
failure if the retries are exhausted.  Rerunning the sweep skips
completed cells and recomputes only missing or failed ones.
"""

from __future__ import annotations

import contextlib
import json
import warnings
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
)

from repro.core.config import GPUConfig
from repro.core.results import SimulationResult
from repro.harness.checkpoint import SweepCheckpoint
from repro.parallel.cache import ResultCache
from repro.parallel.cells import Cell, reseeded
from repro.parallel.pool import SweepExecutor
from repro.stats.report import format_series
from repro.workloads.base import TIMING_MISS_SCALE
from repro.workloads.registry import workload_names

#: Warp instructions excluded from measurement in every experiment
#: (structures warm up; see GPUConfig.warmup_instructions).
DEFAULT_WARMUP = 20


@dataclass
class FigureResult:
    """Structured output of one figure driver.

    Attributes
    ----------
    figure:
        Identifier, e.g. ``"fig07"``.
    title:
        What the paper's figure shows.
    series:
        series name → {workload (or x-value) → number}.  For speedup
        figures the numbers are speedups versus the figure's baseline.
    notes:
        Reproduction caveats surfaced next to the data.
    """

    figure: str
    title: str
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self, key_header: str = "workload") -> str:
        """Human-readable table, one column per series."""
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(format_series(self.series, key_header=key_header))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of the figure's data."""
        return {
            "figure": self.figure,
            "title": self.title,
            "series": {
                name: dict(values) for name, values in self.series.items()
            },
            "notes": list(self.notes),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (sorted keys) so outputs diff mechanically.

        The CI parallel smoke step compares ``--jobs 1`` and
        ``--jobs 2`` renderings of this byte-for-byte.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FigureResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            figure=data["figure"],
            title=data.get("title", ""),
            series={
                name: dict(values)
                for name, values in data.get("series", {}).items()
            },
            notes=list(data.get("notes", [])),
        )


def run_config(
    config: GPUConfig,
    workload,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
) -> SimulationResult:
    """Deprecated: use :func:`repro.api.simulate` instead.

    Kept as a thin shim so pre-``repro.api`` scripts keep working.
    """
    warnings.warn(
        "repro.harness.experiment.run_config is deprecated; use "
        "repro.api.simulate(config=..., workload=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import simulate

    return simulate(
        config=config, workload=workload, form=form, miss_scale=miss_scale
    )


def _reseeded(config: GPUConfig, attempt: int) -> GPUConfig:
    """Back-compat alias for :func:`repro.parallel.cells.reseeded`."""
    return reseeded(config, attempt)


def _on_engine(config: GPUConfig, engine: Optional[str]) -> GPUConfig:
    """The cell's config on the session's engine (None = unchanged)."""
    if engine is None or config.engine == engine:
        return config
    return replace(config, engine=engine)


@dataclass
class SweepSettings:
    """Ambient execution settings installed by :func:`sweep_session`."""

    checkpoint: Optional[SweepCheckpoint] = None
    cell_retries: int = 0
    jobs: int = 1
    cache: Optional[ResultCache] = None
    cell_timeout: Optional[float] = None
    progress_stream: Optional[TextIO] = None
    #: Simulator core every cell runs on (None = each config's own).
    engine: Optional[str] = None


# Ambient sweep state, installed by sweep_session().  run_matrix() picks
# it up so the per-figure drivers need no signature changes to become
# resumable and parallel.
_ACTIVE = SweepSettings()


@contextlib.contextmanager
def sweep_session(
    checkpoint_path: Optional[str] = None,
    cell_retries: int = 0,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    cell_timeout: Optional[float] = None,
    progress_stream: Optional[TextIO] = None,
    cache_max_mb: Optional[float] = None,
    engine: Optional[str] = None,
) -> Iterator[Optional[SweepCheckpoint]]:
    """Make every :func:`run_matrix` call inside resumable/parallel.

    Parameters
    ----------
    checkpoint_path:
        JSONL checkpoint file; completed cells found in it are skipped,
        new completions append to it.  None disables checkpointing but
        still applies the other settings.
    cell_retries:
        Extra attempts per cell after a :class:`SimulationError`.
    jobs:
        Worker processes for matrix cells (None/1 = serial in-process).
        Results are byte-identical either way.
    cache_dir:
        Directory of the content-addressed
        :class:`repro.parallel.cache.ResultCache`; None disables
        caching.
    cell_timeout:
        Wall-clock seconds allowed per cell attempt (None/0 = unbounded).
    progress_stream:
        Where live sweep progress lines go (None = silent).
    cache_max_mb:
        Size bound for the result cache in megabytes; stores past the
        bound evict the least-recently-used entries.  None = unbounded.
    engine:
        Simulator core (:func:`repro.engines.available_engines`) every
        cell inside the session runs on; None keeps each config's own
        ``engine`` field.  Validated here so CLI/API callers fail
        before any cell runs.
    """
    if engine is not None:
        from repro.engines import available_engines

        if engine not in available_engines():
            raise ValueError(
                f"unknown engine {engine!r}; "
                f"one of {sorted(available_engines())}"
            )
    global _ACTIVE
    checkpoint = (
        SweepCheckpoint(checkpoint_path) if checkpoint_path is not None else None
    )
    cache = (
        ResultCache(
            cache_dir,
            max_bytes=(
                int(cache_max_mb * 1024 * 1024)
                if cache_max_mb is not None
                else None
            ),
        )
        if cache_dir is not None
        else None
    )
    previous = _ACTIVE
    _ACTIVE = SweepSettings(
        checkpoint=checkpoint,
        cell_retries=cell_retries,
        jobs=jobs if jobs is not None else 1,
        cache=cache,
        cell_timeout=cell_timeout,
        progress_stream=progress_stream,
        engine=engine,
    )
    try:
        yield checkpoint
    finally:
        _ACTIVE = previous
        if checkpoint is not None:
            checkpoint.close()


def run_cell(
    label: str,
    factory: Callable[[], GPUConfig],
    workload_name: str,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
    checkpoint: Optional[SweepCheckpoint] = None,
    cell_retries: int = 0,
    cell_timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
) -> SimulationResult:
    """Run one sweep cell with checkpoint/cache skip and bounded retries.

    Raises the final :class:`SimulationError` (after recording it) when
    every attempt fails; any other exception propagates immediately.
    """
    cell = Cell(
        label=label,
        workload=workload_name,
        config=_on_engine(factory(), _ACTIVE.engine),
        form=form,
        miss_scale=miss_scale,
    )
    executor = SweepExecutor(
        jobs=1,
        checkpoint=checkpoint,
        cache=cache,
        retries=cell_retries,
        timeout=cell_timeout,
    )
    return executor.run([cell])[0]


def run_matrix(
    configs: Mapping[str, Callable[[], GPUConfig]],
    workloads: Optional[Sequence[str]] = None,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
    checkpoint: Optional[SweepCheckpoint] = None,
    cell_retries: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    cell_timeout: Optional[float] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (config, workload) pair.

    ``configs`` maps a series label to a zero-argument config factory
    (so each cell gets a fresh config).  Returns
    ``{label: {workload: result}}`` in input order — completion order
    never shows, which is what makes ``jobs > 1`` byte-identical to a
    serial run.

    Unset keyword arguments default to the ambient
    :func:`sweep_session` state, so figure drivers inherit
    resumability, caching, and parallelism without plumbing.
    """
    settings = _ACTIVE
    if checkpoint is None:
        checkpoint = settings.checkpoint
    if cell_retries is None:
        cell_retries = settings.cell_retries
    if jobs is None:
        jobs = settings.jobs
    if cache is None:
        cache = settings.cache
    if cell_timeout is None:
        cell_timeout = settings.cell_timeout
    names = list(workloads) if workloads is not None else workload_names()
    cells: List[Cell] = []
    for label, factory in configs.items():
        for name in names:
            cells.append(
                Cell(
                    label=label,
                    workload=name,
                    config=_on_engine(factory(), settings.engine),
                    form=form,
                    miss_scale=miss_scale,
                )
            )
    executor = SweepExecutor(
        jobs=jobs,
        checkpoint=checkpoint,
        cache=cache,
        retries=cell_retries,
        timeout=cell_timeout,
        progress_stream=settings.progress_stream,
    )
    flat = executor.run(cells)
    results: Dict[str, Dict[str, SimulationResult]] = {
        label: {} for label in configs
    }
    for cell, result in zip(cells, flat):
        results[cell.label][cell.workload] = result
    return results


def speedups_vs_baseline(
    results: Mapping[str, Mapping[str, SimulationResult]],
    baseline_label: str,
) -> Dict[str, Dict[str, float]]:
    """Convert a result matrix to speedups against one of its rows."""
    baseline = results[baseline_label]
    series: Dict[str, Dict[str, float]] = {}
    for label, per_workload in results.items():
        if label == baseline_label:
            continue
        series[label] = {
            name: result.speedup_vs(baseline[name])
            for name, result in per_workload.items()
        }
    return series
