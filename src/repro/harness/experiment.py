"""Generic experiment plumbing shared by the per-figure drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.config import GPUConfig
from repro.core.results import SimulationResult
from repro.core.simulator import Simulator
from repro.stats.report import format_series
from repro.workloads.base import TIMING_MISS_SCALE, Workload
from repro.workloads.registry import get_workload, workload_names

#: Warp instructions excluded from measurement in every experiment
#: (structures warm up; see GPUConfig.warmup_instructions).
DEFAULT_WARMUP = 20


@dataclass
class FigureResult:
    """Structured output of one figure driver.

    Attributes
    ----------
    figure:
        Identifier, e.g. ``"fig07"``.
    title:
        What the paper's figure shows.
    series:
        series name → {workload (or x-value) → number}.  For speedup
        figures the numbers are speedups versus the figure's baseline.
    notes:
        Reproduction caveats surfaced next to the data.
    """

    figure: str
    title: str
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self, key_header: str = "workload") -> str:
        """Human-readable table, one column per series."""
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(format_series(self.series, key_header=key_header))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def run_config(
    config: GPUConfig,
    workload: Workload,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
) -> SimulationResult:
    """Build the workload for ``config`` and simulate it."""
    work = workload.build(config, form=form, miss_scale=miss_scale)
    return Simulator(config, work, workload.name).run()


def run_matrix(
    configs: Mapping[str, Callable[[], GPUConfig]],
    workloads: Optional[Sequence[str]] = None,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (config, workload) pair.

    ``configs`` maps a series label to a zero-argument config factory
    (so each run gets a fresh config).  Returns
    ``{label: {workload: result}}``.
    """
    names = list(workloads) if workloads is not None else workload_names()
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for label, factory in configs.items():
        per_workload: Dict[str, SimulationResult] = {}
        for name in names:
            per_workload[name] = run_config(
                factory(), get_workload(name), form=form, miss_scale=miss_scale
            )
        results[label] = per_workload
    return results


def speedups_vs_baseline(
    results: Mapping[str, Mapping[str, SimulationResult]],
    baseline_label: str,
) -> Dict[str, Dict[str, float]]:
    """Convert a result matrix to speedups against one of its rows."""
    baseline = results[baseline_label]
    series: Dict[str, Dict[str, float]] = {}
    for label, per_workload in results.items():
        if label == baseline_label:
            continue
        series[label] = {
            name: result.speedup_vs(baseline[name])
            for name, result in per_workload.items()
        }
    return series
