"""Generic experiment plumbing shared by the per-figure drivers.

Sweeps are resumable: wrap figure calls in :func:`sweep_session` (the
CLI's ``--checkpoint``/``--retries`` flags do this) and every
(config, workload) cell :func:`run_matrix` executes is recorded to an
append-only :class:`repro.harness.checkpoint.SweepCheckpoint` as it
finishes.  A cell that raises a structured
:class:`repro.faults.errors.SimulationError` (hang, permanent walk
error, timeout) is retried up to ``cell_retries`` times — with the
fault seed perturbed on each retry so deterministic injection does not
simply replay the identical failure — and recorded as a failure if the
retries are exhausted.  Rerunning the sweep skips completed cells and
recomputes only missing or failed ones.
"""

from __future__ import annotations

import contextlib
import dataclasses as _dc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.core.config import GPUConfig
from repro.core.results import SimulationResult
from repro.core.simulator import Simulator
from repro.faults.errors import SimulationError
from repro.harness.checkpoint import SweepCheckpoint, cell_key
from repro.stats.report import format_series
from repro.workloads.base import TIMING_MISS_SCALE, Workload
from repro.workloads.registry import get_workload, workload_names

#: Warp instructions excluded from measurement in every experiment
#: (structures warm up; see GPUConfig.warmup_instructions).
DEFAULT_WARMUP = 20


@dataclass
class FigureResult:
    """Structured output of one figure driver.

    Attributes
    ----------
    figure:
        Identifier, e.g. ``"fig07"``.
    title:
        What the paper's figure shows.
    series:
        series name → {workload (or x-value) → number}.  For speedup
        figures the numbers are speedups versus the figure's baseline.
    notes:
        Reproduction caveats surfaced next to the data.
    """

    figure: str
    title: str
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self, key_header: str = "workload") -> str:
        """Human-readable table, one column per series."""
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(format_series(self.series, key_header=key_header))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def run_config(
    config: GPUConfig,
    workload: Workload,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
) -> SimulationResult:
    """Build the workload for ``config`` and simulate it."""
    work = workload.build(config, form=form, miss_scale=miss_scale)
    return Simulator(config, work, workload.name).run()


# Ambient sweep state, installed by sweep_session().  run_matrix() picks
# it up so the per-figure drivers need no signature changes to become
# resumable.
_ACTIVE_CHECKPOINT: Optional[SweepCheckpoint] = None
_ACTIVE_RETRIES: int = 0


@contextlib.contextmanager
def sweep_session(
    checkpoint_path: Optional[str] = None, cell_retries: int = 0
) -> Iterator[Optional[SweepCheckpoint]]:
    """Make every :func:`run_matrix` call inside resumable.

    Parameters
    ----------
    checkpoint_path:
        JSONL checkpoint file; completed cells found in it are skipped,
        new completions append to it.  None disables checkpointing but
        still applies ``cell_retries``.
    cell_retries:
        Extra attempts per cell after a :class:`SimulationError`.
    """
    global _ACTIVE_CHECKPOINT, _ACTIVE_RETRIES
    checkpoint = (
        SweepCheckpoint(checkpoint_path) if checkpoint_path is not None else None
    )
    previous = (_ACTIVE_CHECKPOINT, _ACTIVE_RETRIES)
    _ACTIVE_CHECKPOINT, _ACTIVE_RETRIES = checkpoint, cell_retries
    try:
        yield checkpoint
    finally:
        _ACTIVE_CHECKPOINT, _ACTIVE_RETRIES = previous
        if checkpoint is not None:
            checkpoint.close()


def _reseeded(config: GPUConfig, attempt: int) -> GPUConfig:
    """Perturb the fault seed for a retry attempt.

    Deterministic injection would otherwise replay the identical
    failure on every retry; attempt 0 always runs the configured seed.
    """
    if attempt == 0 or not config.faults.enabled:
        return config
    faults = _dc.replace(config.faults, seed=config.faults.seed + attempt)
    return _dc.replace(config, faults=faults)


def run_cell(
    label: str,
    factory: Callable[[], GPUConfig],
    workload_name: str,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
    checkpoint: Optional[SweepCheckpoint] = None,
    cell_retries: int = 0,
) -> SimulationResult:
    """Run one sweep cell with checkpoint skip and bounded retries.

    Raises the final :class:`SimulationError` (after recording it) when
    every attempt fails; any other exception propagates immediately.
    """
    key = cell_key(label, workload_name, factory().describe(), form, miss_scale)
    if checkpoint is not None:
        cached = checkpoint.get(key)
        if cached is not None:
            return cached
    attempts = cell_retries + 1
    last_error: Optional[SimulationError] = None
    for attempt in range(attempts):
        try:
            result = run_config(
                _reseeded(factory(), attempt),
                get_workload(workload_name),
                form=form,
                miss_scale=miss_scale,
            )
        except SimulationError as exc:
            last_error = exc
            continue
        if checkpoint is not None:
            checkpoint.record(key, result)
        return result
    assert last_error is not None
    last_error.add_context(
        series=label, workload=workload_name, attempts=attempts
    )
    if checkpoint is not None:
        checkpoint.record_failure(key, last_error, attempts)
    raise last_error


def run_matrix(
    configs: Mapping[str, Callable[[], GPUConfig]],
    workloads: Optional[Sequence[str]] = None,
    form: Optional[str] = None,
    miss_scale: float = TIMING_MISS_SCALE,
    checkpoint: Optional[SweepCheckpoint] = None,
    cell_retries: Optional[int] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (config, workload) pair.

    ``configs`` maps a series label to a zero-argument config factory
    (so each run gets a fresh config).  Returns
    ``{label: {workload: result}}``.

    ``checkpoint``/``cell_retries`` default to the ambient
    :func:`sweep_session` state, so figure drivers inherit resumability
    without plumbing.
    """
    if checkpoint is None:
        checkpoint = _ACTIVE_CHECKPOINT
    if cell_retries is None:
        cell_retries = _ACTIVE_RETRIES
    names = list(workloads) if workloads is not None else workload_names()
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for label, factory in configs.items():
        per_workload: Dict[str, SimulationResult] = {}
        for name in names:
            per_workload[name] = run_cell(
                label,
                factory,
                name,
                form=form,
                miss_scale=miss_scale,
                checkpoint=checkpoint,
                cell_retries=cell_retries,
            )
        results[label] = per_workload
    return results


def speedups_vs_baseline(
    results: Mapping[str, Mapping[str, SimulationResult]],
    baseline_label: str,
) -> Dict[str, Dict[str, float]]:
    """Convert a result matrix to speedups against one of its rows."""
    baseline = results[baseline_label]
    series: Dict[str, Dict[str, float]] = {}
    for label, per_workload in results.items():
        if label == baseline_label:
            continue
        series[label] = {
            name: result.speedup_vs(baseline[name])
            for name, result in per_workload.items()
        }
    return series
