"""Experiment harness: one driver per table/figure of the paper.

Each ``figNN_*`` function in :mod:`repro.harness.figures` runs the
simulations behind one figure of the evaluation and returns a
:class:`repro.harness.experiment.FigureResult` whose series can be
printed (``.render()``) or asserted against the paper's qualitative
claims.  The benchmarks under ``benchmarks/`` are thin wrappers around
these drivers.

Prefer the stable facade :mod:`repro.api` (``simulate`` / ``sweep`` /
``figure``) in user code; ``run_config`` here is a deprecated shim over
it.  Sweeps parallelize and cache through :mod:`repro.parallel` — see
:func:`repro.harness.experiment.sweep_session`.
"""

from repro.harness.experiment import (
    FigureResult,
    run_config,
    run_matrix,
    speedups_vs_baseline,
    sweep_session,
)
from repro.harness import figures

__all__ = [
    "FigureResult",
    "run_config",
    "run_matrix",
    "speedups_vs_baseline",
    "sweep_session",
    "figures",
]
