"""The ``python -m repro.harness trace`` subcommand.

Runs one (configuration, workload) pair with the :mod:`repro.obs`
tracing subsystem enabled and writes:

- ``trace.jsonl`` — every event as JSON Lines;
- ``trace.chrome.json`` — Chrome trace-event JSON, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``, one
  process per core and one thread per hardware track;
- a text report on stdout — run summary, ring-buffer-derived
  histograms (TLB miss latency, page divergence, walk queue depth) and
  the head of the interval-metrics series.

Targets are either a figure id (``fig04`` traces that figure's
characteristic configuration) or a workload name (``bfs`` traces the
augmented design on that workload).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional

from repro.core import presets
from repro.core.config import GPUConfig, TraceConfig
from repro.engines import EngineFeatureError, available_engines
from repro.core.simulator import Simulator
from repro.harness.experiment import DEFAULT_WARMUP
from repro.harness.figures import ALL_FIGURES
from repro.stats.histograms import Histogram
from repro.stats.report import format_series
from repro.workloads.base import TIMING_MISS_SCALE, Workload, WorkloadSpec
from repro.workloads.registry import get_workload, workload_names

_KW = dict(warmup_instructions=DEFAULT_WARMUP)

#: Characteristic configuration per figure id; figures not listed trace
#: the paper's recommended augmented design.
_FIG_PRESETS: Dict[str, Callable[[], GPUConfig]] = {
    "fig02": lambda: presets.naive_tlb(ports=3, **_KW),
    "fig03": lambda: presets.naive_tlb(ports=4, **_KW),
    "fig04": lambda: presets.naive_tlb(ports=4, **_KW),
    "fig06": lambda: presets.tlb_with_geometry(128, 4, ideal=True, **_KW),
    "fig07": lambda: presets.overlap_tlb(**_KW),
    "fig11": lambda: presets.multi_ptw_tlb(8, **_KW),
    "fig13": lambda: presets.with_ccws(presets.augmented_tlb(**_KW)),
    "fig16": lambda: presets.with_ta_ccws(presets.augmented_tlb(**_KW)),
    "fig17": lambda: presets.with_tcws(presets.augmented_tlb(**_KW)),
    "fig18": lambda: presets.with_tcws(presets.augmented_tlb(**_KW)),
    "sec9": lambda: presets.naive_tlb(ports=4, page_shift=21, **_KW),
}


def _tiny_workload() -> Workload:
    """A milliseconds-scale deterministic workload for smoke runs."""
    return Workload(
        WorkloadSpec(
            name="tiny",
            instructions_per_warp=20,
            compute_latency=3,
            private_pages=2,
            lines_per_page=4,
            hot_pool_pages=16,
            shared_fraction=0.4,
            cold_fraction=0.1,
            cold_pages=64,
            page_div_mean=2.0,
            page_div_max=4,
            seed=7,
        )
    )


def resolve_target(target: str, workload: Optional[str]) -> tuple:
    """Map a trace target to ``(config, workload, label)``.

    Figure ids pick that figure's characteristic preset; workload names
    pick the augmented design.  Raises KeyError for unknown targets.
    """
    if target in ALL_FIGURES:
        factory = _FIG_PRESETS.get(target, lambda: presets.augmented_tlb(**_KW))
        name = workload or "bfs"
        return factory(), get_workload(name), f"{target}/{name}"
    if target in workload_names():
        if workload is not None and workload != target:
            raise ValueError(
                f"target {target!r} is a workload; --workloads {workload!r} conflicts"
            )
        return presets.augmented_tlb(**_KW), get_workload(target), target
    raise KeyError(
        f"unknown trace target {target!r}: expected a figure id "
        f"({', '.join(ALL_FIGURES)}) or workload ({', '.join(workload_names())})"
    )


def run_trace(
    target: str,
    workload: Optional[str] = None,
    out_dir: str = ".",
    interval: int = 1000,
    ring_capacity: int = 1 << 18,
    tiny: bool = False,
    engine: Optional[str] = None,
) -> dict:
    """Run one traced simulation; return paths and the result."""
    config, wl, label = resolve_target(target, workload)
    if engine is not None:
        config = config.with_(engine=engine)
    if tiny:
        config = config.with_(
            num_cores=1, warps_per_core=8, warp_width=8, warmup_instructions=0
        )
        wl = _tiny_workload()
        label += " (tiny)"
    os.makedirs(out_dir, exist_ok=True)
    jsonl_path = os.path.join(out_dir, "trace.jsonl")
    chrome_path = os.path.join(out_dir, "trace.chrome.json")
    config = config.with_(
        trace=TraceConfig(
            enabled=True,
            ring_capacity=ring_capacity,
            jsonl_path=jsonl_path,
            chrome_path=chrome_path,
            interval_cycles=interval,
        )
    )
    work = wl.build(config, miss_scale=TIMING_MISS_SCALE)
    result = Simulator._build(config, work, wl.name).run()
    return {
        "label": label,
        "config": config,
        "result": result,
        "jsonl_path": jsonl_path,
        "chrome_path": chrome_path,
    }


def render_report(run: dict) -> str:
    """The text report the subcommand prints."""
    result = run["result"]
    stats = result.stats
    lines = [
        f"== trace: {run['label']} ==",
        f"config: {run['config'].describe()}",
        f"cycles: {result.cycles}  instructions: {stats.instructions}  "
        f"tlb miss rate: {100 * stats.tlb_miss_rate:.1f} %  "
        f"avg walk: {result.avg_walk_cycles:.1f} cyc",
        f"wrote {run['jsonl_path']}",
        f"wrote {run['chrome_path']} (open in https://ui.perfetto.dev)",
    ]
    for data in result.histograms.values():
        lines.append("")
        lines.append(Histogram.from_dict(data).render())
    if result.interval_series:
        head = result.interval_series[:10]
        series = {
            key: {str(row["cycle"]): row[key] for row in head}
            for key in ("instructions", "tlb_misses", "idle_cycles")
            if all(key in row for row in head)
        }
        lines.append("")
        lines.append(
            f"interval metrics (first {len(head)} of "
            f"{len(result.interval_series)} samples):"
        )
        lines.append(format_series(series, key_header="cycle"))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Run one configuration with event tracing enabled.",
    )
    parser.add_argument(
        "target", help="figure id (e.g. fig04) or workload name (e.g. bfs)"
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="workload to trace when the target is a figure (default: bfs)",
    )
    parser.add_argument(
        "--out", default=".", help="output directory (default: current)"
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=1000,
        help="interval-sampler period in cycles, 0 to disable (default 1000)",
    )
    parser.add_argument(
        "--ring",
        type=int,
        default=1 << 18,
        help="ring buffer capacity for histogram derivation (default 262144)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke mode: 8-warp core and a tiny workload (CI uses this)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(available_engines()),
        help="simulator core (default: the config's own, normally "
        "'event'; both engines emit the identical trace stream — the "
        "event engine instruments its own scheduler natively)",
    )
    args = parser.parse_args(argv)
    workload = args.workloads.split(",")[0] if args.workloads else None
    try:
        run = run_trace(
            args.target,
            workload=workload,
            out_dir=args.out,
            interval=args.interval,
            ring_capacity=args.ring,
            tiny=args.tiny,
            engine=args.engine,
        )
    except (KeyError, ValueError, EngineFeatureError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2
    print(render_report(run))
    return 0
