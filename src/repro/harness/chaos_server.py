"""The server half of the chaos campaign: attack ``repro.serve``.

``python -m repro.harness chaos --server`` points the same seeded
adversary at the daemon instead of the sweep pool:

1. **daemon SIGKILL mid-sweep** — a real ``python -m repro.serve``
   subprocess is killed (SIGKILL, no cleanup) while a sweep job is
   running; a restart on the same journal must re-queue the
   interrupted job, run it to ``done`` exactly once, and serve a
   result byte-identical to an uninterrupted in-process run.
2. **torn journal** — the dead server's journal gets a half-written
   final line appended (a crash mid-``write``); replay must drop
   exactly that line with a warning and the restarted daemon must
   still serve every prior job.
3. **lease expiry** — an executor that wedges past the lease TTL is
   presumed dead: the job is re-queued with backoff, the retry
   succeeds, and the wedged executor's late result is fenced off —
   terminal exactly once.
4. **admission flood** — submissions past the queue's high-water mark
   are shed with ``429`` (plus ``Retry-After``) while everything below
   it completes; during drain, new work gets ``503`` and the daemon
   exits 0 with a replayable journal.

Exit codes match :mod:`repro.harness.chaos`: 0 pass, 1 verification
failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import warnings
from typing import Any, Dict, List, Optional

from repro.serve.app import ServeApp, ServeConfig, make_server
from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.jobs import Job, normalize_request
from repro.serve.journal import JobJournal

#: Wall-clock budget for subprocess daemon startup / job completion.
STARTUP_TIMEOUT = 30.0
JOB_TIMEOUT = 120.0


def _step(verbose: bool, name: str, detail: str = "") -> None:
    suffix = f" — {detail}" if detail else ""
    print(f"chaos[server]: {name}{suffix}")
    if verbose:
        sys.stdout.flush()


def _sweep_request(
    workloads: List[str], engine: Optional[str] = None
) -> Dict[str, Any]:
    """The campaign's sweep job: tiny machines, a few cells."""
    tiny = {"num_cores": 1, "warps_per_core": 8, "warp_width": 8}
    request: Dict[str, Any] = {
        "kind": "sweep",
        "params": {
            "configs": {
                "base": {"preset": "no_tlb", "overrides": dict(tiny)},
                "aug": {"preset": "augmented", "overrides": dict(tiny)},
            },
            "workloads": workloads,
        },
    }
    if engine is not None:
        request["engine"] = engine
    return request


def _baseline_result(request: Dict[str, Any]) -> str:
    """The uninterrupted answer, canonical-JSON'd for byte comparison.

    Runs the job through the very same :meth:`ServeApp._run_job`
    mapping the daemon uses — serial, no cache — so any divergence in
    the served result is a recovery bug, not a harness artifact.
    """
    with tempfile.TemporaryDirectory(prefix="repro-chaos-base-") as tmp:
        config = ServeConfig(
            journal=os.path.join(tmp, "unused.jsonl"), cache=None
        )
        app = ServeApp(config)
        job = Job.from_request(normalize_request(request))
        result = app._run_job(job)
    return json.dumps(result, sort_keys=True)


class _Daemon:
    """One ``python -m repro.serve`` subprocess, SIGKILL-able."""

    def __init__(self, journal: str, cache: str, tmp: str, tag: str):
        self.port_file = os.path.join(tmp, f"port-{tag}")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--journal",
                journal,
                "--cache",
                cache,
                "--port",
                "0",
                "--port-file",
                self.port_file,
                "--slots",
                "2",
                "--drain-grace",
                "10",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + STARTUP_TIMEOUT
        while not os.path.exists(self.port_file):
            if self.process.poll() is not None:
                out = (self.process.stdout.read() or b"").decode(
                    "utf-8", errors="replace"
                )
                raise RuntimeError(
                    f"serve daemon died during startup "
                    f"(exit {self.process.returncode}): {out}"
                )
            if time.monotonic() > deadline:
                self.process.kill()
                raise RuntimeError("serve daemon never wrote its port file")
            time.sleep(0.02)
        with open(self.port_file, "r", encoding="utf-8") as handle:
            bound = handle.read().strip()
        self.client = ServeClient(f"http://{bound}")
        # Readiness gate: replay finished, dispatcher running.
        deadline = time.monotonic() + STARTUP_TIMEOUT
        while True:
            try:
                self.client.readyz()
                break
            except (ServeHTTPError, OSError):
                if time.monotonic() > deadline:
                    self.kill()
                    raise RuntimeError("serve daemon never became ready")
                time.sleep(0.05)

    def kill(self) -> None:
        """SIGKILL — no drain, no cleanup; the crash being tested."""
        if self.process.poll() is None:
            self.process.kill()
        self.process.wait(timeout=10)
        if self.process.stdout is not None:
            self.process.stdout.close()

    def terminate(self) -> int:
        """SIGTERM — the graceful drain path; returns the exit code."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        code = self.process.wait(timeout=30)
        if self.process.stdout is not None:
            self.process.stdout.close()
        return code


def run_server_campaign(
    *,
    seed: int = 0,
    quick: bool = False,
    workloads: Optional[List[str]] = None,
    verbose: bool = False,
    engine: Optional[str] = None,
) -> int:
    """Execute the server campaign; returns the process exit code."""
    failures: List[str] = []
    chosen = workloads or (["bfs"] if quick else ["bfs", "kmeans"])
    request = _sweep_request(chosen, engine)
    job_id = Job.from_request(normalize_request(request)).id

    _step(verbose, "baseline", f"sweep over {chosen}, serial, in-process")
    baseline = _baseline_result(request)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-serve-") as tmp:
        journal = os.path.join(tmp, "journal.jsonl")
        cache = os.path.join(tmp, "cache")

        # -- 1. daemon SIGKILL mid-sweep ------------------------------
        daemon = _Daemon(journal, cache, tmp, tag="a")
        submitted = daemon.client.submit(
            request["kind"], request["params"]
        )
        if submitted["id"] != job_id:
            failures.append(
                "daemon kill: served job id differs from the "
                "content-derived id computed locally"
            )
        # Wait for the lease (journaled before the executor starts),
        # then SIGKILL with the sweep in flight.
        deadline = time.monotonic() + JOB_TIMEOUT
        while True:
            view = daemon.client.job(job_id)
            if view["state"] != "queued":
                break
            if time.monotonic() > deadline:
                failures.append("daemon kill: job never left 'queued'")
                break
            time.sleep(0.01)
        killed_state = view["state"]
        daemon.kill()
        _step(verbose, "daemon SIGKILLed", f"job was {killed_state!r}")

        # Restart on the same journal: the interrupted job must come
        # back queued, re-run, and finish exactly once.
        daemon = _Daemon(journal, cache, tmp, tag="b")
        final = daemon.client.wait(job_id, timeout_s=JOB_TIMEOUT)
        recovered = None
        if final["state"] != "done":
            failures.append(
                f"daemon kill: job ended {final['state']!r} after "
                f"restart (error: {final.get('error')})"
            )
        else:
            recovered = json.dumps(final["result"], sort_keys=True)
            if recovered != baseline:
                failures.append(
                    "daemon kill: recovered result differs from the "
                    "uninterrupted baseline"
                )
        counts = JobJournal.terminal_counts(journal)
        if counts.get(job_id) != 1:
            failures.append(
                f"daemon kill: job reached a terminal state "
                f"{counts.get(job_id, 0)} times (want exactly 1)"
            )
        _step(
            verbose,
            "daemon restart",
            f"state={final['state']}, terminal x{counts.get(job_id, 0)}, "
            + (
                "identical"
                if final.get("state") == "done" and recovered == baseline
                else "MISMATCH"
            ),
        )

        # -- 2. torn journal ------------------------------------------
        # Drain this daemon cleanly, then emulate a crash mid-append.
        code = daemon.terminate()
        if code != 0:
            failures.append(
                f"torn journal: graceful drain exited {code} (want 0)"
            )
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"ev": "submit", "job": {"id": "torn-mid')
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            replay = JobJournal.terminal_counts(journal)
        torn_warned = any("truncated" in str(w.message) for w in caught)
        if not torn_warned:
            failures.append(
                "torn journal: the truncated line was dropped silently "
                "(expected a warning)"
            )
        if replay.get(job_id) != 1:
            failures.append(
                "torn journal: the tear corrupted prior terminal events"
            )
        daemon = _Daemon(journal, cache, tmp, tag="c")
        view = daemon.client.job(job_id)
        served = json.dumps(view.get("result"), sort_keys=True)
        if view["state"] != "done" or served != baseline:
            failures.append(
                "torn journal: restarted daemon no longer serves the "
                "job byte-identically"
            )
        code = daemon.terminate()
        if code != 0:
            failures.append(
                f"torn journal: post-tear drain exited {code} (want 0)"
            )
        _step(
            verbose,
            "torn journal",
            f"warned={torn_warned}, replay intact, drain exit {code}",
        )

    # -- 3. lease expiry (in-process, injected executor) --------------
    with tempfile.TemporaryDirectory(prefix="repro-chaos-lease-") as tmp:
        attempts_seen: List[int] = []
        first_attempt_blocked = threading.Event()

        def wedging_run_job(job: Job) -> Any:
            attempts_seen.append(1)
            if len(attempts_seen) == 1:
                # Attempt 1 wedges well past the TTL; its eventual
                # result must be fenced off by the lease table.
                first_attempt_blocked.wait(timeout=10.0)
                return {"from": "wedged-attempt"}
            return {"from": "healthy-retry"}

        app = ServeApp(
            ServeConfig(
                journal=os.path.join(tmp, "journal.jsonl"),
                lease_ttl_s=0.15,
                tick_s=0.01,
                max_attempts=3,
                slots=2,
            ),
            run_job=wedging_run_job,
        )
        app.start()
        status, body = app.submit(
            {"kind": "figure", "params": {"name": "fig02"}}
        )
        lease_job = body["id"]
        deadline = time.monotonic() + 30.0
        while True:
            view = app.job_view(lease_job)
            if view["state"] in ("done", "failed"):
                break
            if time.monotonic() > deadline:
                failures.append("lease expiry: job never reached terminal")
                break
            time.sleep(0.01)
        first_attempt_blocked.set()  # unwedge; late result must be dropped
        time.sleep(0.1)
        final_view = app.job_view(lease_job)
        expirations = app.leases.expired_total
        if final_view["state"] != "done":
            failures.append(
                f"lease expiry: retry ended {final_view['state']!r} "
                f"(error: {final_view.get('error')})"
            )
        elif final_view["result"] != {"from": "healthy-retry"}:
            failures.append(
                "lease expiry: the wedged attempt's result leaked "
                "through the fence"
            )
        if final_view["attempts"] < 2:
            failures.append(
                "lease expiry: the lease never expired (attempt 1 "
                "was allowed to finish)"
            )
        counts = JobJournal.terminal_counts(app.config.journal)
        if counts.get(lease_job) != 1:
            failures.append(
                f"lease expiry: job terminal {counts.get(lease_job, 0)} "
                "times (want exactly 1)"
            )
        app.drain(grace_s=1.0)
        _step(
            verbose,
            "lease expiry",
            f"attempts={final_view['attempts']}, "
            f"expirations={expirations}, result from "
            f"{(final_view.get('result') or {}).get('from')!r}",
        )

    # -- 4. admission flood + drain 503 -------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-chaos-flood-") as tmp:
        gate = threading.Event()

        def gated_run_job(job: Job) -> Any:
            gate.wait(timeout=30.0)
            return {"ok": True}

        high_water = 3
        app = ServeApp(
            ServeConfig(
                journal=os.path.join(tmp, "journal.jsonl"),
                high_water=high_water,
                slots=1,
                tick_s=0.01,
            ),
            run_job=gated_run_job,
        )
        app.start()
        httpd = make_server(app)
        thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        client = ServeClient(
            f"http://127.0.0.1:{httpd.server_address[1]}"
        )
        statuses: List[int] = []
        flood = 2 * high_water
        for index in range(flood):
            try:
                client.submit(
                    "simulate",
                    {
                        "config": {
                            "preset": "naive",
                            "overrides": {"num_cores": 1 + index},
                        },
                        "workload": "bfs",
                    },
                )
                statuses.append(201)
            except ServeHTTPError as exc:
                statuses.append(exc.status)
                if exc.status == 429 and exc.retry_after_s is None:
                    failures.append(
                        "admission flood: 429 carried no Retry-After hint"
                    )
        admitted = statuses.count(201)
        shed = statuses.count(429)
        if admitted != high_water:
            failures.append(
                f"admission flood: {admitted} admitted (want exactly "
                f"{high_water} = high-water)"
            )
        if shed != flood - high_water:
            failures.append(
                f"admission flood: {shed} shed with 429 (want "
                f"{flood - high_water})"
            )
        if any(code not in (201, 429) for code in statuses):
            failures.append(
                f"admission flood: unexpected statuses {sorted(set(statuses))}"
            )
        # Open the gate and let every admitted job finish (draining
        # stops the dispatcher, so still-queued jobs would otherwise
        # wait for the next incarnation — tested in scenario 1).
        gate.set()
        deadline = time.monotonic() + 30.0
        while True:
            views = app.jobs_view()
            if views and all(v["state"] == "done" for v in views):
                break
            if time.monotonic() > deadline:
                failures.append(
                    "admission flood: admitted jobs never all finished"
                )
                break
            time.sleep(0.02)
        # Drain: new submissions (even duplicates of known jobs) must
        # get 503, and the daemon must exit clean.
        app.begin_drain()
        try:
            client.submit(
                "simulate",
                {
                    "config": {"preset": "naive", "overrides": {"num_cores": 1}},
                    "workload": "bfs",
                },
            )
            failures.append("drain: submission during drain was not 503")
        except ServeHTTPError as exc:
            if exc.status != 503:
                failures.append(
                    f"drain: submission during drain got {exc.status} "
                    "(want 503)"
                )
        requeued = app.drain(grace_s=10.0)
        httpd.shutdown()
        httpd.server_close()
        if requeued != 0:
            failures.append(
                f"drain: {requeued} job(s) re-queued despite the open "
                "gate (grace period too tight?)"
            )
        counts = JobJournal.terminal_counts(app.config.journal)
        terminal_once = all(count == 1 for count in counts.values())
        if len(counts) != admitted or not terminal_once:
            failures.append(
                f"drain: terminal counts {dict(counts)} do not show "
                f"every admitted job exactly once"
            )
        _step(
            verbose,
            "admission flood",
            f"{admitted} admitted, {shed} x 429, drain requeued "
            f"{requeued}, terminal-once={terminal_once}",
        )

    if failures:
        print()
        for failure in failures:
            print(f"chaos[server] FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"chaos[server]: all checks passed (seed {seed}, "
        f"workloads {chosen})"
    )
    return 0
