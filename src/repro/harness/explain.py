"""The ``python -m repro.harness explain`` subcommand.

Runs one (configuration, workload) pair with the :mod:`repro.obs.spans`
recorder installed and reports *where translation latency went*: the
additive critical-path decomposition of every TLB miss (probe, walker
queue, per-level walk, fault handling, memory fills, wakeup slack),
per-component histograms, and the top-N slowest translations with
their full span trees.

Outputs:

- a text report on stdout (``--json`` prints the report dict instead);
- with ``--out DIR`` (created if missing):
  ``explain.json`` — the full report,
  ``spans.chrome.json`` — the slowest trees as Chrome trace-event JSON
  with parent→child flow events (load in https://ui.perfetto.dev),
  ``spans.jsonl`` — the same trees as JSON Lines;
- the aggregate breakdown mirrored into the process-wide
  :class:`repro.prof.registry.MetricsRegistry` (``span_*`` families).

Targets follow ``harness trace``: a figure id (``fig02`` explains that
figure's characteristic configuration) or a workload name (``bfs``
explains the augmented design).  Unknown names exit 2.  The exit code
is 1 if any request's components failed to sum to its end-to-end
latency (never observed in a correct build; CI smoke-checks it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.core.simulator import Simulator
from repro.engines import EngineFeatureError, available_engines
from repro.harness.trace import _tiny_workload, resolve_target
from repro.obs.critpath import CriticalPathReport
from repro.obs.spans import SpanRecorder, record_spans
from repro.prof.registry import REGISTRY
from repro.workloads.base import TIMING_MISS_SCALE


def run_explain(
    target: str,
    workload: Optional[str] = None,
    top: int = 10,
    quick: bool = False,
    engine: Optional[str] = None,
) -> dict:
    """Run one span-recorded simulation; return report and context."""
    config, wl, label = resolve_target(target, workload)
    if engine is not None:
        config = config.with_(engine=engine)
    kwargs = {}
    if quick:
        config = config.with_(
            num_cores=1, warps_per_core=8, warp_width=8, warmup_instructions=0
        )
        wl = _tiny_workload()
        label += " (quick)"
        kwargs["miss_scale"] = TIMING_MISS_SCALE
    work = wl.build(config, **kwargs)
    recorder = SpanRecorder(keep_slowest=top)
    with record_spans(recorder):
        result = Simulator._build(config, work, wl.name).run()
    report = CriticalPathReport(recorder, label=label)
    report.to_registry(REGISTRY, target=target, workload=wl.name)
    return {
        "label": label,
        "config": config,
        "workload": wl,
        "result": result,
        "recorder": recorder,
        "report": report,
    }


def _report_dict(run: dict) -> dict:
    """The ``explain.json`` payload: report plus run-level context."""
    result = run["result"]
    out = run["report"].to_dict()
    out["run"] = {
        "config": run["config"].describe(),
        "workload": run["workload"].name,
        "cycles": result.cycles,
        "tlb_misses": result.stats.tlb_misses,
        "instructions": result.stats.instructions,
    }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness explain",
        description="Attribute per-request translation latency to "
        "critical-path components.",
    )
    parser.add_argument(
        "target", help="figure id (e.g. fig02) or workload name (e.g. bfs)"
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="workload to explain when the target is a figure (default: bfs)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write explain.json, spans.chrome.json and spans.jsonl "
        "here (directory is created if missing)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="slowest translations to retain with full span trees "
        "(default 10)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of the text table",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: 8-warp core and a tiny workload (CI uses this)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(available_engines()),
        help="simulator core (default: the config's own, normally "
        "'event'; both engines record identical request spans — the "
        "event engine instruments its own scheduler natively)",
    )
    args = parser.parse_args(argv)
    workload = args.workloads.split(",")[0] if args.workloads else None
    try:
        run = run_explain(
            args.target,
            workload=workload,
            top=args.top,
            quick=args.quick,
            engine=args.engine,
        )
    except (KeyError, ValueError, EngineFeatureError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2
    report: CriticalPathReport = run["report"]
    payload = _report_dict(run)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        json_path = os.path.join(args.out, "explain.json")
        with open(json_path, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        chrome_path = os.path.join(args.out, "spans.chrome.json")
        report.write_chrome_trace(chrome_path)
        jsonl_path = os.path.join(args.out, "spans.jsonl")
        report.write_jsonl(jsonl_path)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render_text(top=args.top))
        if args.out:
            print()
            print(f"wrote {os.path.join(args.out, 'explain.json')}")
            print(
                f"wrote {os.path.join(args.out, 'spans.chrome.json')} "
                "(open in https://ui.perfetto.dev)"
            )
            print(f"wrote {os.path.join(args.out, 'spans.jsonl')}")
    if report.mismatches:
        print(
            f"error: {report.mismatches} request(s) failed the additive "
            "decomposition check",
            file=sys.stderr,
        )
        return 1
    return 0
