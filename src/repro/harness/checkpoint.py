"""Resumable sweeps: an append-only JSONL checkpoint of finished cells.

Long sweeps (``python -m repro.harness all``, fault-injection campaigns)
can lose hours to one crashed or hung cell.  A :class:`SweepCheckpoint`
records every completed (config, workload) cell as one JSON line the
moment it finishes; re-running the same sweep with the same checkpoint
file skips completed cells and recomputes only the missing ones, so a
killed sweep resumes where it stopped.

The file is append-only and line-oriented on purpose: a crash mid-write
corrupts at most the final line (which is detected and dropped on load),
never previously recorded results.  Failed cells are recorded too —
with the structured diagnostics of their :class:`SimulationError` — but
are *not* treated as completed, so a resume retries them.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, List, Optional

from repro.core.config import GPUConfig, config_hash
from repro.core.results import SimulationResult


def cell_key(
    label: str,
    workload: str,
    config: GPUConfig,
    form: Optional[str] = None,
    miss_scale: Optional[float] = None,
) -> str:
    """Identity of one sweep cell.

    The config contributes through its *canonical hash*
    (:func:`repro.core.config.config_hash`), which is invariant under
    dataclass field reordering and captures every field — two configs
    that differ anywhere (fault seed included) get distinct keys, and
    reordering fields in a future refactor cannot silently orphan an
    existing checkpoint (``tests/parallel/test_config_hash.py`` pins
    this).  The label still participates so two series deliberately
    running the same machine stay distinguishable in failure reports.
    """
    return "|".join(
        [
            label,
            workload,
            "cfg:" + config_hash(config)[:24],
            form if form is not None else "-",
            repr(miss_scale) if miss_scale is not None else "-",
        ]
    )


def legacy_cell_key(
    label: str,
    workload: str,
    config_description: str,
    form: Optional[str] = None,
    miss_scale: Optional[float] = None,
) -> str:
    """The pre-hash key format (config ``describe()`` string).

    Kept so checkpoint files written by older harnesses remain
    readable: lookups fall back to this key when the hash-based one
    misses (see :class:`repro.parallel.pool.SweepExecutor`).
    """
    return "|".join(
        [
            label,
            workload,
            config_description,
            form if form is not None else "-",
            repr(miss_scale) if miss_scale is not None else "-",
        ]
    )


class SweepCheckpoint:
    """Append-only JSONL store of completed (and failed) sweep cells."""

    def __init__(self, path: str):
        self.path = path
        self._results: Dict[str, SimulationResult] = {}
        self._failures: Dict[str, Dict[str, Any]] = {}
        self._load()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._file = open(path, "a", encoding="utf-8")

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one torn final
                    # line; that cell simply reruns — but say so, a
                    # torn line anywhere *else* means the file was
                    # corrupted some other way and silently losing the
                    # cell would look like a nondeterministic resume.
                    warnings.warn(
                        f"checkpoint {self.path}: dropping truncated "
                        f"line {lineno} (crash mid-append?); the cell "
                        f"it recorded will re-run",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    continue
                key = entry.get("key")
                if key is None:
                    continue
                if entry.get("status") == "ok":
                    self._results[key] = SimulationResult.from_dict(
                        entry["result"]
                    )
                    self._failures.pop(key, None)
                else:
                    self._failures[key] = entry

    # -- queries -------------------------------------------------------

    def get(self, key: str) -> Optional[SimulationResult]:
        """The recorded result for a completed cell, else None."""
        return self._results.get(key)

    @property
    def completed(self) -> int:
        """Number of distinct cells recorded as completed."""
        return len(self._results)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """Recorded failure entries (cells a resume will retry)."""
        return list(self._failures.values())

    # -- recording -----------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        self._file.write(json.dumps(entry, sort_keys=True) + "\n")
        self._file.flush()
        # The checkpoint commits by append, not rename, so a flush that
        # only reaches the page cache can still be lost to a power cut;
        # fsync bounds the loss to the line being written.
        os.fsync(self._file.fileno())

    def record(self, key: str, result: SimulationResult) -> None:
        """Persist a completed cell (idempotent on resume)."""
        self._results[key] = result
        self._failures.pop(key, None)
        self._append({"key": key, "status": "ok", "result": result.to_dict()})

    def record_failure(
        self, key: str, error: BaseException, attempts: int
    ) -> None:
        """Persist a cell that exhausted its retries."""
        entry: Dict[str, Any] = {
            "key": key,
            "status": "error",
            "error_type": type(error).__name__,
            "error": str(error),
            "attempts": attempts,
        }
        diagnostics = getattr(error, "diagnostics", None)
        if diagnostics:
            try:
                entry["diagnostics"] = json.loads(
                    json.dumps(diagnostics, default=repr)
                )
            except (TypeError, ValueError):
                pass
        self._failures[key] = entry
        self._append(entry)

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._file.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
